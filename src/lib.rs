//! # Map-and-Conquer
//!
//! A Rust reproduction of *"Map-and-Conquer: Energy-Efficient Mapping of
//! Dynamic Neural Nets onto Heterogeneous MPSoCs"* (DAC 2023).
//!
//! This facade crate re-exports the workspace members under stable module
//! names so applications can depend on a single crate:
//!
//! * [`nn`] — network IR, Visformer / VGG-19 builders, cost model and
//!   channel importance,
//! * [`mpsoc`] — the heterogeneous MPSoC hardware model (compute units,
//!   DVFS, power, memory, interconnect) with the AGX-Xavier preset,
//! * [`predictor`] — gradient-boosted surrogate predictors for layer
//!   latency/energy,
//! * [`dynamic`] — static-to-dynamic transformation (partitioning,
//!   feature-map reuse, multi-exit stages, accuracy model),
//! * [`core`] — mapping configurations, the concurrent performance model,
//!   the execution simulator, the objective and the evaluator,
//! * [`optim`] — the evolutionary mapping search and Pareto utilities,
//! * [`runtime`] — the concurrent mapping service: model/platform
//!   registries, a sharded evaluation cache and parallel Pareto search
//!   behind a staged request pipeline,
//! * [`telemetry`] — observability primitives: the metrics registry with
//!   log-scale latency histograms, request span traces with bounded
//!   recent/slow trace rings, per-generation search telemetry sinks and
//!   the Prometheus-style text exposition,
//! * [`wire`] — the versioned JSON wire protocol of the service, and
//! * [`server`] — the blocking TCP front-end (`mnc-server` binary) plus
//!   the [`server::WireClient`] used by the demos and CI.
//!
//! # Quickstart
//!
//! ```
//! use map_and_conquer::core::{EvaluatorBuilder, MappingConfig};
//! use map_and_conquer::mpsoc::Platform;
//! use map_and_conquer::nn::models::{visformer_tiny, ModelPreset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let network = visformer_tiny(ModelPreset::cifar100());
//! let platform = Platform::dual_test();
//! let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
//!     .validation_samples(1000)
//!     .build()?;
//! let config = MappingConfig::uniform(&network, &platform)?;
//! let result = evaluator.evaluate(&config)?;
//! println!(
//!     "dynamic mapping: {:.2} ms, {:.2} mJ, top-1 {:.1}%",
//!     result.average_latency_ms,
//!     result.average_energy_mj,
//!     result.accuracy * 100.0
//! );
//! # Ok(())
//! # }
//! ```
//!
//! The runnable examples in `examples/` and the experiment harness in
//! `crates/bench` show the full workflow, including the evolutionary search
//! that reproduces the paper's tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mnc_core as core;
pub use mnc_dynamic as dynamic;
pub use mnc_mpsoc as mpsoc;
pub use mnc_nn as nn;
pub use mnc_optim as optim;
pub use mnc_predictor as predictor;
pub use mnc_runtime as runtime;
pub use mnc_server as server;
pub use mnc_telemetry as telemetry;
pub use mnc_wire as wire;
