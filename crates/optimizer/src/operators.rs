//! Mutation and crossover operators.
//!
//! All operators preserve genome validity: partition rows keep summing to
//! [`crate::genome::PARTITION_SLOTS`], the mapping stays a permutation and
//! DVFS genes stay inside their range, so every offspring decodes into a
//! well-formed configuration.

use crate::genome::{Genome, DVFS_RESOLUTION};
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Per-gene-group mutation probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MutationConfig {
    /// Probability of moving one width slot between stages, per layer.
    pub partition_rate: f64,
    /// Probability of flipping each forwarding bit.
    pub indicator_rate: f64,
    /// Probability of swapping two stages' compute units.
    pub mapping_swap_rate: f64,
    /// Probability of nudging each stage's DVFS gene by ±1 step.
    pub dvfs_rate: f64,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig {
            partition_rate: 0.3,
            indicator_rate: 0.05,
            mapping_swap_rate: 0.2,
            dvfs_rate: 0.25,
        }
    }
}

impl MutationConfig {
    /// A gentler operator for exploitation-heavy late generations.
    pub fn fine_tuning() -> Self {
        MutationConfig {
            partition_rate: 0.15,
            indicator_rate: 0.02,
            mapping_swap_rate: 0.1,
            dvfs_rate: 0.15,
        }
    }
}

/// Mutates a genome in place.
pub fn mutate(genome: &mut Genome, config: &MutationConfig, rng: &mut StdRng) {
    let num_stages = genome.num_stages();
    let (partition, indicator, mapping, dvfs) = genome.parts_mut();

    // Partition: move one slot from a non-empty stage to another stage.
    for row in partition.iter_mut() {
        if num_stages < 2 || rng.random::<f64>() >= config.partition_rate {
            continue;
        }
        let donors: Vec<usize> = (0..num_stages).filter(|&s| row[s] > 0).collect();
        if donors.is_empty() {
            continue;
        }
        let from = donors[rng.random_range(0..donors.len())];
        let mut to = rng.random_range(0..num_stages);
        if to == from {
            to = (to + 1) % num_stages;
        }
        row[from] -= 1;
        row[to] += 1;
    }

    // Indicator: independent bit flips.
    for row in indicator.iter_mut() {
        for bit in row.iter_mut() {
            if rng.random::<f64>() < config.indicator_rate {
                *bit = !*bit;
            }
        }
    }

    // Mapping: swap two stages' compute units.
    if num_stages >= 2 && rng.random::<f64>() < config.mapping_swap_rate {
        let a = rng.random_range(0..num_stages);
        let mut b = rng.random_range(0..num_stages);
        if a == b {
            b = (b + 1) % num_stages;
        }
        mapping.swap(a, b);
    }

    // DVFS: random walk of ±1 quantised step.
    for gene in dvfs.iter_mut() {
        if rng.random::<f64>() < config.dvfs_rate {
            if rng.random::<bool>() {
                *gene = (*gene + 1).min(DVFS_RESOLUTION - 1);
            } else {
                *gene = gene.saturating_sub(1);
            }
        }
    }
}

/// Uniform crossover: every gene group row is inherited from one of the two
/// parents with equal probability. The mapping permutation is inherited
/// whole from one parent to stay valid.
pub fn crossover(a: &Genome, b: &Genome, rng: &mut StdRng) -> Genome {
    let mut child = a.clone();
    {
        let (a_partition, a_indicator, _, a_dvfs) = a.parts();
        let (b_partition, b_indicator, b_mapping, b_dvfs) = b.parts();
        let (c_partition, c_indicator, c_mapping, c_dvfs) = child.parts_mut();

        for (index, row) in c_partition.iter_mut().enumerate() {
            if rng.random::<bool>() {
                row.clone_from(&b_partition[index]);
            } else {
                row.clone_from(&a_partition[index]);
            }
        }
        for (index, row) in c_indicator.iter_mut().enumerate() {
            if rng.random::<bool>() {
                row.clone_from(&b_indicator[index]);
            } else {
                row.clone_from(&a_indicator[index]);
            }
        }
        if rng.random::<bool>() {
            c_mapping.clone_from_slice(b_mapping);
        }
        for (index, gene) in c_dvfs.iter_mut().enumerate() {
            if rng.random::<bool>() {
                *gene = b_dvfs[index];
            } else {
                *gene = a_dvfs[index];
            }
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_mpsoc::Platform;
    use mnc_nn::models::{visformer_tiny, ModelPreset};
    use rand::SeedableRng;

    fn genomes() -> (Genome, Genome, mnc_nn::Network, Platform, StdRng) {
        let net = visformer_tiny(ModelPreset::cifar100());
        let platform = Platform::dual_test();
        let mut rng = StdRng::seed_from_u64(3);
        let a = Genome::random(&net, &platform, &mut rng);
        let b = Genome::random(&net, &platform, &mut rng);
        (a, b, net, platform, rng)
    }

    #[test]
    fn mutation_preserves_validity() {
        let (mut a, _, net, platform, mut rng) = genomes();
        let aggressive = MutationConfig {
            partition_rate: 1.0,
            indicator_rate: 0.5,
            mapping_swap_rate: 1.0,
            dvfs_rate: 1.0,
        };
        for _ in 0..50 {
            mutate(&mut a, &aggressive, &mut rng);
            assert!(a.is_valid());
            assert!(a.decode(&net, &platform).is_ok());
        }
    }

    #[test]
    fn mutation_changes_something_eventually() {
        let (mut a, _, _, _, mut rng) = genomes();
        let original = a.clone();
        for _ in 0..10 {
            mutate(&mut a, &MutationConfig::default(), &mut rng);
        }
        assert_ne!(a, original);
    }

    #[test]
    fn zero_rate_mutation_is_identity() {
        let (mut a, _, _, _, mut rng) = genomes();
        let original = a.clone();
        let frozen = MutationConfig {
            partition_rate: 0.0,
            indicator_rate: 0.0,
            mapping_swap_rate: 0.0,
            dvfs_rate: 0.0,
        };
        mutate(&mut a, &frozen, &mut rng);
        assert_eq!(a, original);
    }

    #[test]
    fn crossover_produces_valid_children_mixing_parents() {
        let (a, b, net, platform, mut rng) = genomes();
        let mut saw_a_gene = false;
        let mut saw_b_gene = false;
        for _ in 0..20 {
            let child = crossover(&a, &b, &mut rng);
            assert!(child.is_valid());
            assert!(child.decode(&net, &platform).is_ok());
            if child.partition_slots()[0] == a.partition_slots()[0] {
                saw_a_gene = true;
            }
            if child.partition_slots()[0] == b.partition_slots()[0] {
                saw_b_gene = true;
            }
        }
        assert!(saw_a_gene && saw_b_gene);
    }

    #[test]
    fn fine_tuning_rates_are_gentler_than_default() {
        let default = MutationConfig::default();
        let fine = MutationConfig::fine_tuning();
        assert!(fine.partition_rate < default.partition_rate);
        assert!(fine.indicator_rate < default.indicator_rate);
        assert!(fine.mapping_swap_rate < default.mapping_swap_rate);
        assert!(fine.dvfs_rate < default.dvfs_rate);
    }
}
