//! Error type for the optimizer crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the evolutionary search.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimError {
    /// A search hyper-parameter is invalid.
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// The search could not produce a single feasible configuration.
    NoFeasibleConfiguration,
    /// An error bubbled up from the evaluator.
    Core(mnc_core::CoreError),
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::InvalidConfig { reason } => {
                write!(f, "invalid search configuration: {reason}")
            }
            OptimError::NoFeasibleConfiguration => {
                write!(f, "search produced no feasible configuration")
            }
            OptimError::Core(e) => write!(f, "evaluation error: {e}"),
        }
    }
}

impl Error for OptimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptimError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mnc_core::CoreError> for OptimError {
    fn from(e: mnc_core::CoreError) -> Self {
        OptimError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = OptimError::InvalidConfig {
            reason: "zero population".to_string(),
        };
        assert!(e.to_string().contains("zero population"));
        assert!(e.source().is_none());
        let wrapped: OptimError = mnc_core::CoreError::InvalidMapping {
            reason: "x".to_string(),
        }
        .into();
        assert!(wrapped.source().is_some());
        assert!(OptimError::NoFeasibleConfiguration
            .to_string()
            .contains("feasible"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<OptimError>();
    }
}
