//! Pareto-dominance utilities.
//!
//! After the search budget expires, the paper extracts a Pareto set over
//! (average energy, average latency) — optionally filtered by an accuracy
//! constraint — from all evaluated configurations. These helpers implement
//! dominance checks, Pareto-front extraction and the NSGA-II crowding
//! distance used for tie-breaking among equally-ranked candidates.

/// Returns `true` when point `a` dominates point `b` (all objectives are
/// minimised): `a` is no worse in every objective and strictly better in at
/// least one.
///
/// # Panics
///
/// Panics if the two points have different dimensionality.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated points (the Pareto front) among `points`,
/// all objectives minimised. Duplicate points are all kept.
pub fn pareto_front_indices(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other, &points[i]))
        })
        .collect()
}

/// Partitions `points` into successive non-dominated fronts (NSGA-II fast
/// non-dominated sorting): front 0 is the Pareto front, front 1 the Pareto
/// front of the remainder, and so on. Every index appears in exactly one
/// front.
pub fn non_dominated_fronts(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut assigned = vec![false; n];
    let mut remaining = n;
    while remaining > 0 {
        let mut front = Vec::new();
        for i in 0..n {
            if assigned[i] {
                continue;
            }
            let dominated =
                (0..n).any(|j| j != i && !assigned[j] && dominates(&points[j], &points[i]));
            if !dominated {
                front.push(i);
            }
        }
        // Guard against pathological floating-point cases: if nothing was
        // selected (impossible for finite inputs), flush the remainder.
        if front.is_empty() {
            front = (0..n).filter(|&i| !assigned[i]).collect();
        }
        for &i in &front {
            assigned[i] = true;
        }
        remaining -= front.len();
        fronts.push(front);
    }
    fronts
}

/// NSGA-II crowding distance of every point (larger = more isolated =
/// preferred for diversity). Boundary points get `f64::INFINITY`.
pub fn crowding_distance(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let dims = points[0].len();
    let mut distance = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    // `points` is indexed `[point][dimension]`, so iterating the dimension
    // axis by index is the natural shape here.
    #[allow(clippy::needless_range_loop)]
    for d in 0..dims {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            points[a][d]
                .partial_cmp(&points[b][d])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let min = points[order[0]][d];
        let max = points[order[n - 1]][d];
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        let range = max - min;
        if range <= 0.0 {
            continue;
        }
        for window in 1..n - 1 {
            let prev = points[order[window - 1]][d];
            let next = points[order[window + 1]][d];
            distance[order[window]] += (next - prev) / range;
        }
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_dimensions_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pareto_front_of_a_simple_set() {
        let points = vec![
            vec![1.0, 5.0], // front
            vec![2.0, 4.0], // front
            vec![3.0, 3.0], // front
            vec![3.0, 5.0], // dominated by (3,3) and (2,4)
            vec![5.0, 5.0], // dominated
        ];
        let front = pareto_front_indices(&points);
        assert_eq!(front, vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(pareto_front_indices(&[]).is_empty());
        assert_eq!(pareto_front_indices(&[vec![1.0, 2.0]]), vec![0]);
        assert!(crowding_distance(&[]).is_empty());
        assert_eq!(crowding_distance(&[vec![1.0, 2.0]]), vec![f64::INFINITY]);
    }

    #[test]
    fn crowding_distance_prefers_isolated_points() {
        let points = vec![
            vec![0.0, 10.0],
            vec![1.0, 9.0],
            vec![1.1, 8.9], // crowded next to the previous point
            vec![5.0, 5.0], // isolated
            vec![10.0, 0.0],
        ];
        let d = crowding_distance(&points);
        assert!(d[0].is_infinite());
        assert!(d[4].is_infinite());
        assert!(d[3] > d[2]);
    }

    #[test]
    fn identical_points_get_zero_finite_distance() {
        let points = vec![vec![1.0, 1.0]; 4];
        let d = crowding_distance(&points);
        // Boundaries are infinite, the interior ones are 0 (range is 0).
        assert!(d.iter().filter(|v| v.is_infinite()).count() >= 2);
        assert!(d.iter().filter(|v| **v == 0.0).count() >= 2);
    }

    #[test]
    fn non_dominated_fronts_partition_the_set() {
        let points = vec![
            vec![1.0, 5.0],
            vec![2.0, 4.0],
            vec![3.0, 5.0],
            vec![5.0, 5.0],
            vec![2.0, 6.0],
        ];
        let fronts = non_dominated_fronts(&points);
        assert_eq!(fronts[0], pareto_front_indices(&points));
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, points.len());
        // Later fronts are dominated by someone in an earlier front.
        for (rank, front) in fronts.iter().enumerate().skip(1) {
            for &i in front {
                assert!(fronts[rank - 1]
                    .iter()
                    .any(|&j| dominates(&points[j], &points[i])));
            }
        }
    }

    #[test]
    fn non_dominated_fronts_of_empty_set_is_empty() {
        assert!(non_dominated_fronts(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_fronts_cover_all_points(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..100.0, 2), 1..30)
        ) {
            let fronts = non_dominated_fronts(&points);
            let mut seen = vec![false; points.len()];
            for front in &fronts {
                for &i in front {
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }

        #[test]
        fn prop_front_members_are_mutually_nondominated(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..100.0, 2), 1..40)
        ) {
            let front = pareto_front_indices(&points);
            prop_assert!(!front.is_empty());
            for &i in &front {
                for &j in &front {
                    if i != j {
                        prop_assert!(!dominates(&points[i], &points[j]) || points[i] == points[j]);
                    }
                }
            }
            // Every non-front point is dominated by someone on the front.
            for i in 0..points.len() {
                if !front.contains(&i) {
                    prop_assert!(points.iter().any(|p| dominates(p, &points[i])));
                }
            }
        }
    }
}
