//! Pareto-dominance utilities.
//!
//! After the search budget expires, the paper extracts a Pareto set over
//! (average energy, average latency) — optionally filtered by an accuracy
//! constraint — from all evaluated configurations. These helpers implement
//! dominance checks, Pareto-front extraction and the NSGA-II crowding
//! distance used for tie-breaking among equally-ranked candidates.
//!
//! Two implementations exist for the expensive operations:
//!
//! * the **fast paths** ([`pareto_front_indices`], [`non_dominated_fronts`])
//!   — a 2-D skyline sweep (O(n log n)) for single-front extraction and
//!   NSGA-II dominance-count fast sorting (one O(n²) pairwise pass instead
//!   of an O(n²) rescan *per front*) for the full partition. Both are
//!   generic over `AsRef<[f64]>`, so callers can pass flat `[f64; N]`
//!   storage instead of allocating a `Vec<Vec<f64>>` per generation.
//! * the **reference paths** ([`pareto_front_indices_reference`],
//!   [`non_dominated_fronts_reference`]) — the original direct
//!   implementations, retained as property-test oracles (the fast paths
//!   are asserted to produce identical partitions on random point sets,
//!   including duplicates and ties).

use std::cmp::Ordering;

/// Returns `true` when point `a` dominates point `b` (all objectives are
/// minimised): `a` is no worse in every objective and strictly better in at
/// least one.
///
/// # Panics
///
/// Panics if the two points have different dimensionality.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must have equal length");
    let mut strictly_better = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Pairwise dominance in one pass: `Ordering::Less` when `a` dominates `b`,
/// `Ordering::Greater` when `b` dominates `a`, `Ordering::Equal` when
/// neither dominates (equal or mutually non-dominated points).
fn dominance(a: &[f64], b: &[f64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    let mut a_better = false;
    let mut b_better = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            a_better = true;
        } else if x > y {
            b_better = true;
        }
        if a_better && b_better {
            return Ordering::Equal;
        }
    }
    match (a_better, b_better) {
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        _ => Ordering::Equal,
    }
}

/// Indices of the non-dominated points (the Pareto front) among `points`,
/// all objectives minimised. Duplicate points are all kept. Indices come
/// back in ascending order.
///
/// Two-dimensional inputs with finite-or-infinite (non-NaN) coordinates
/// take an O(n log n) skyline sweep — the shape of
/// [`crate::SearchOutcome::pareto_front`]'s (energy, latency) extraction,
/// which previously rescanned a 12 000-point archive quadratically. Other
/// shapes fall back to the reference scan.
pub fn pareto_front_indices<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let two_d_finite = points
        .iter()
        .all(|p| p.as_ref().len() == 2 && !p.as_ref().iter().any(|v| v.is_nan()));
    if two_d_finite {
        return skyline_2d(points);
    }
    pareto_front_indices_reference(points)
}

/// The pre-fast-path Pareto-front extraction: for every point, scan every
/// other point for a dominator (O(n²)). Retained as the oracle the skyline
/// sweep is property-tested against, and as the fallback for dimensions
/// other than 2 (where no sweep order exists) and NaN inputs (where the
/// dominance relation degenerates and only the direct definition is
/// trustworthy).
pub fn pareto_front_indices_reference<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && dominates(other.as_ref(), points[i].as_ref()))
        })
        .collect()
}

/// O(n log n) skyline sweep over 2-D minimisation points: sort by
/// (x, y), walk x-groups in ascending order and keep each group's
/// y-minimal points when they strictly improve on the best y seen in
/// strictly-smaller-x groups. Duplicates of a surviving point all survive
/// (they do not dominate each other). Caller guarantees no NaNs.
fn skyline_2d<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort keys are normalised with `+ 0.0` so the signed zeros compare
    // equal, exactly as the dominance relation's numeric comparisons see
    // them — `total_cmp` alone would order `-0.0` before `0.0` and break
    // the group-sorted-by-y invariant the sweep relies on (the groups
    // below are formed with numeric `==`).
    order.sort_unstable_by(|&a, &b| {
        let (pa, pb) = (points[a].as_ref(), points[b].as_ref());
        (pa[0] + 0.0)
            .total_cmp(&(pb[0] + 0.0))
            .then_with(|| (pa[1] + 0.0).total_cmp(&(pb[1] + 0.0)))
    });

    let mut front = Vec::new();
    // Best y among all points with x strictly smaller than the current
    // group's x — `None` for the minimal-x group, which is always on the
    // front (a `f64::INFINITY` sentinel would wrongly exclude a first
    // group whose own minimum y is infinite). A later point is
    // non-dominated iff it has its group's minimal y and that y beats
    // `best_y` strictly (a point with equal y and smaller x dominates via
    // the x coordinate).
    let mut best_y: Option<f64> = None;
    let mut group_start = 0;
    while group_start < order.len() {
        let x = points[order[group_start]].as_ref()[0];
        let mut group_end = group_start + 1;
        while group_end < order.len() && points[order[group_end]].as_ref()[0] == x {
            group_end += 1;
        }
        // The group is sorted by y, so its minimum is at the start.
        let group_min_y = points[order[group_start]].as_ref()[1];
        if best_y.is_none_or(|best| group_min_y < best) {
            front.extend(
                order[group_start..group_end]
                    .iter()
                    .copied()
                    .take_while(|&i| points[i].as_ref()[1] == group_min_y),
            );
            best_y = Some(group_min_y);
        }
        group_start = group_end;
    }
    front.sort_unstable();
    front
}

/// Partitions `points` into successive non-dominated fronts: front 0 is
/// the Pareto front, front 1 the Pareto front of the remainder, and so on.
/// Every index appears in exactly one front; each front's indices come
/// back ascending.
///
/// This is NSGA-II *fast* non-dominated sorting: one O(n²) pairwise pass
/// computes, for every point, its domination count and the list of points
/// it dominates; the fronts then peel off in O(n + edges) instead of the
/// reference implementation's O(n²) rescan per front.
///
/// **Invariant:** for inputs without NaN coordinates, dominance is a
/// strict partial order, so every peeling step empties at least one
/// domination count and the peel terminates with every point assigned —
/// the reference implementation's "flush the remainder" guard was dead
/// code for such inputs and survives here only as a `debug_assert!` plus a
/// release-mode fallback for NaN-degenerate inputs.
pub fn non_dominated_fronts<P: AsRef<[f64]>>(points: &[P]) -> Vec<Vec<usize>> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }

    // One triangular pass: both directions of every pair in one dominance
    // comparison.
    let mut dominated_count = vec![0usize; n];
    let mut dominates_list: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        let a = points[i].as_ref();
        for j in (i + 1)..n {
            match dominance(a, points[j].as_ref()) {
                Ordering::Less => {
                    dominates_list[i].push(j);
                    dominated_count[j] += 1;
                }
                Ordering::Greater => {
                    dominates_list[j].push(i);
                    dominated_count[i] += 1;
                }
                Ordering::Equal => {}
            }
        }
    }

    let mut fronts: Vec<Vec<usize>> = Vec::new();
    // `(0..n).filter(..)` yields ascending indices, so front 0 needs no
    // sort; later fronts are sorted as they are collected.
    let mut current: Vec<usize> = (0..n).filter(|&i| dominated_count[i] == 0).collect();
    let mut assigned = current.len();
    while !current.is_empty() {
        let mut next: Vec<usize> = Vec::new();
        for &i in &current {
            for &j in &dominates_list[i] {
                dominated_count[j] -= 1;
                if dominated_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        next.sort_unstable();
        assigned += next.len();
        fronts.push(std::mem::replace(&mut current, next));
    }
    if assigned < n {
        // Only reachable when NaN coordinates make the dominance relation
        // cyclic (a ≺ b ≺ c ≺ a through NaN-masked coordinates), which no
        // finite input can produce — evaluation results are always finite.
        debug_assert!(
            points.iter().any(|p| p.as_ref().iter().any(|v| v.is_nan())),
            "non-dominated peel stalled on NaN-free input"
        );
        let mut remainder: Vec<usize> = (0..n).filter(|&i| dominated_count[i] > 0).collect();
        remainder.sort_unstable();
        fronts.push(remainder);
    }
    fronts
}

/// The pre-fast-path front partition: recompute the Pareto front of the
/// unassigned remainder once per front (O(n² · fronts)). Retained as the
/// oracle [`non_dominated_fronts`] is property-tested against.
pub fn non_dominated_fronts_reference<P: AsRef<[f64]>>(points: &[P]) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut assigned = vec![false; n];
    let mut remaining = n;
    while remaining > 0 {
        let mut front = Vec::new();
        for i in 0..n {
            if assigned[i] {
                continue;
            }
            let dominated = (0..n).any(|j| {
                j != i && !assigned[j] && dominates(points[j].as_ref(), points[i].as_ref())
            });
            if !dominated {
                front.push(i);
            }
        }
        // Dead for finite inputs (see the invariant on
        // `non_dominated_fronts`); kept so NaN-degenerate inputs cannot
        // wedge the oracle either.
        if front.is_empty() {
            front = (0..n).filter(|&i| !assigned[i]).collect();
        }
        for &i in &front {
            assigned[i] = true;
        }
        remaining -= front.len();
        fronts.push(front);
    }
    fronts
}

/// NSGA-II crowding distance of every point (larger = more isolated =
/// preferred for diversity). Boundary points get `f64::INFINITY`.
pub fn crowding_distance<P: AsRef<[f64]>>(points: &[P]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let dims = points[0].as_ref().len();
    let mut distance = vec![0.0f64; n];
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    for d in 0..dims {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| points[a].as_ref()[d].total_cmp(&points[b].as_ref()[d]));
        let min = points[order[0]].as_ref()[d];
        let max = points[order[n - 1]].as_ref()[d];
        distance[order[0]] = f64::INFINITY;
        distance[order[n - 1]] = f64::INFINITY;
        let range = max - min;
        if range <= 0.0 {
            continue;
        }
        for window in 1..n - 1 {
            let prev = points[order[window - 1]].as_ref()[d];
            let next = points[order[window + 1]].as_ref()[d];
            distance[order[window]] += (next - prev) / range;
        }
    }
    distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(!dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    fn pairwise_dominance_matches_both_directions() {
        let cases = [
            ([1.0, 1.0], [2.0, 2.0]),
            ([2.0, 2.0], [1.0, 1.0]),
            ([1.0, 3.0], [2.0, 2.0]),
            ([1.0, 1.0], [1.0, 1.0]),
        ];
        for (a, b) in cases {
            let expected = match (dominates(&a, &b), dominates(&b, &a)) {
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                _ => Ordering::Equal,
            };
            assert_eq!(dominance(&a, &b), expected, "{a:?} vs {b:?}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_dimensions_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn pareto_front_of_a_simple_set() {
        let points = vec![
            vec![1.0, 5.0], // front
            vec![2.0, 4.0], // front
            vec![3.0, 3.0], // front
            vec![3.0, 5.0], // dominated by (3,3) and (2,4)
            vec![5.0, 5.0], // dominated
        ];
        let front = pareto_front_indices(&points);
        assert_eq!(front, vec![0, 1, 2]);
        assert_eq!(front, pareto_front_indices_reference(&points));
    }

    #[test]
    fn skyline_keeps_duplicates_and_breaks_equal_coordinate_ties() {
        // Exact duplicates of a front point all survive; a point with the
        // same energy but strictly worse latency (or vice versa) does not.
        let points = vec![
            [1.0, 5.0],
            [1.0, 5.0], // duplicate of the front point: kept
            [1.0, 6.0], // same x, worse y: dominated
            [2.0, 5.0], // same y as (1,5), worse x: dominated
            [2.0, 4.0],
        ];
        let front = pareto_front_indices(&points);
        assert_eq!(front, vec![0, 1, 4]);
        assert_eq!(front, pareto_front_indices_reference(&points));
    }

    #[test]
    fn infinite_coordinates_match_the_reference() {
        // Regression: a `f64::INFINITY` best-y sentinel excluded a
        // minimal-x point whose own y is infinite, though nothing
        // dominates it.
        let points = vec![[0.0, f64::INFINITY], [1.0, 2.0]];
        assert_eq!(
            pareto_front_indices(&points),
            pareto_front_indices_reference(&points)
        );
        assert_eq!(pareto_front_indices(&points), vec![0, 1]);

        let points = vec![
            [0.0, f64::INFINITY],
            [0.0, 1.0],
            [f64::INFINITY, 0.0],
            [f64::INFINITY, f64::INFINITY],
        ];
        assert_eq!(
            pareto_front_indices(&points),
            pareto_front_indices_reference(&points)
        );
    }

    #[test]
    fn signed_zero_coordinates_match_the_reference() {
        // Regression: `total_cmp` orders -0.0 before 0.0 while the
        // dominance relation treats them as equal; without sort-key
        // normalisation the sweep grouped them together but read the
        // wrong group minimum, returning a dominated point.
        let points = vec![[-0.0, 5.0], [0.0, 1.0]];
        assert_eq!(
            pareto_front_indices(&points),
            pareto_front_indices_reference(&points)
        );
        assert_eq!(pareto_front_indices(&points), vec![1]);

        let points = vec![[0.0, -0.0], [-0.0, 0.0], [1.0, -0.0]];
        assert_eq!(
            pareto_front_indices(&points),
            pareto_front_indices_reference(&points)
        );
    }

    #[test]
    fn nan_points_fall_back_to_the_reference_scan() {
        // A NaN coordinate makes a point incomparable: the reference
        // definition keeps it (nothing dominates it), and the fast path
        // must agree rather than sweep past it.
        let points = vec![[1.0, 5.0], [f64::NAN, 0.0], [2.0, 6.0]];
        let front = pareto_front_indices(&points);
        assert_eq!(front, pareto_front_indices_reference(&points));
        assert!(front.contains(&1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(pareto_front_indices::<Vec<f64>>(&[]).is_empty());
        assert_eq!(pareto_front_indices(&[vec![1.0, 2.0]]), vec![0]);
        assert!(crowding_distance::<Vec<f64>>(&[]).is_empty());
        assert_eq!(crowding_distance(&[vec![1.0, 2.0]]), vec![f64::INFINITY]);
    }

    #[test]
    fn crowding_distance_prefers_isolated_points() {
        let points = vec![
            vec![0.0, 10.0],
            vec![1.0, 9.0],
            vec![1.1, 8.9], // crowded next to the previous point
            vec![5.0, 5.0], // isolated
            vec![10.0, 0.0],
        ];
        let d = crowding_distance(&points);
        assert!(d[0].is_infinite());
        assert!(d[4].is_infinite());
        assert!(d[3] > d[2]);
    }

    #[test]
    fn identical_points_get_zero_finite_distance() {
        let points = vec![vec![1.0, 1.0]; 4];
        let d = crowding_distance(&points);
        // Boundaries are infinite, the interior ones are 0 (range is 0).
        assert!(d.iter().filter(|v| v.is_infinite()).count() >= 2);
        assert!(d.iter().filter(|v| **v == 0.0).count() >= 2);
    }

    #[test]
    fn non_dominated_fronts_partition_the_set() {
        let points = vec![
            vec![1.0, 5.0],
            vec![2.0, 4.0],
            vec![3.0, 5.0],
            vec![5.0, 5.0],
            vec![2.0, 6.0],
        ];
        let fronts = non_dominated_fronts(&points);
        assert_eq!(fronts[0], pareto_front_indices(&points));
        let total: usize = fronts.iter().map(Vec::len).sum();
        assert_eq!(total, points.len());
        // Later fronts are dominated by someone in an earlier front.
        for (rank, front) in fronts.iter().enumerate().skip(1) {
            for &i in front {
                assert!(fronts[rank - 1]
                    .iter()
                    .any(|&j| dominates(&points[j], &points[i])));
            }
        }
        assert_eq!(fronts, non_dominated_fronts_reference(&points));
    }

    #[test]
    fn fast_fronts_accept_flat_array_storage() {
        let flat: Vec<[f64; 3]> = vec![[1.0, 2.0, 3.0], [2.0, 1.0, 3.0], [3.0, 3.0, 3.0]];
        let fronts = non_dominated_fronts(&flat);
        assert_eq!(fronts, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn non_dominated_fronts_of_empty_set_is_empty() {
        assert!(non_dominated_fronts::<Vec<f64>>(&[]).is_empty());
        assert!(non_dominated_fronts_reference::<Vec<f64>>(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_fronts_cover_all_points(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..100.0, 2), 1..30)
        ) {
            let fronts = non_dominated_fronts(&points);
            let mut seen = vec![false; points.len()];
            for front in &fronts {
                for &i in front {
                    prop_assert!(!seen[i]);
                    seen[i] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }

        #[test]
        fn prop_front_members_are_mutually_nondominated(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..100.0, 2), 1..40)
        ) {
            let front = pareto_front_indices(&points);
            prop_assert!(!front.is_empty());
            for &i in &front {
                for &j in &front {
                    if i != j {
                        prop_assert!(!dominates(&points[i], &points[j]) || points[i] == points[j]);
                    }
                }
            }
            // Every non-front point is dominated by someone on the front.
            for i in 0..points.len() {
                if !front.contains(&i) {
                    prop_assert!(points.iter().any(|p| dominates(p, &points[i])));
                }
            }
        }

        // The fast-path-equality properties draw coordinates from a small
        // integer grid so duplicates and per-coordinate ties are common —
        // the regime where a sweep or a dominance-count peel is easiest to
        // get subtly wrong.
        #[test]
        fn prop_skyline_front_equals_reference_with_ties(
            grid in proptest::collection::vec(
                proptest::collection::vec(0u8..6, 2), 1..40)
        ) {
            let points: Vec<[f64; 2]> = grid
                .iter()
                .map(|p| [f64::from(p[0]), f64::from(p[1])])
                .collect();
            prop_assert_eq!(
                pareto_front_indices(&points),
                pareto_front_indices_reference(&points)
            );
        }

        #[test]
        fn prop_fast_fronts_equal_reference_with_ties_2d(
            grid in proptest::collection::vec(
                proptest::collection::vec(0u8..5, 2), 1..40)
        ) {
            let points: Vec<[f64; 2]> = grid
                .iter()
                .map(|p| [f64::from(p[0]), f64::from(p[1])])
                .collect();
            prop_assert_eq!(
                non_dominated_fronts(&points),
                non_dominated_fronts_reference(&points)
            );
        }

        #[test]
        fn prop_fast_fronts_equal_reference_3d(
            grid in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 3), 1..30)
        ) {
            let points: Vec<[f64; 3]> = grid
                .iter()
                .map(|p| [f64::from(p[0]), f64::from(p[1]), f64::from(p[2])])
                .collect();
            prop_assert_eq!(
                non_dominated_fronts(&points),
                non_dominated_fronts_reference(&points)
            );
        }

        #[test]
        fn prop_fast_fronts_equal_reference_continuous(
            points in proptest::collection::vec(
                proptest::collection::vec(0.0f64..100.0, 3), 1..30)
        ) {
            prop_assert_eq!(
                non_dominated_fronts(&points),
                non_dominated_fronts_reference(&points)
            );
        }
    }
}
