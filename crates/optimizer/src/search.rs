//! The evolutionary search loop (paper §V-C, Fig. 5).

use crate::error::OptimError;
use crate::evaluate::ConfigEvaluator;
use crate::genome::Genome;
use crate::operators::{crossover, mutate, MutationConfig};
use crate::pareto::{crowding_distance, non_dominated_fronts, pareto_front_indices};
use mnc_core::{EvaluationResult, Evaluator, MappingConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// How elites are chosen from an evaluated generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Rank by the scalar objective of eq. 16 (feasible candidates first).
    /// This is the paper's elite-selection step.
    ObjectiveElitism,
    /// NSGA-II-style selection: non-dominated sorting over (average energy,
    /// average latency, accuracy drop) with crowding-distance tie-breaking.
    /// Useful when the practitioner wants the whole Pareto surface rather
    /// than one scalarised optimum.
    ParetoCrowding,
}

/// Hyper-parameters of the evolutionary search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Number of generations.
    pub generations: usize,
    /// Population size per generation.
    pub population_size: usize,
    /// Fraction of the population kept as elites each generation.
    pub elite_fraction: f64,
    /// Probability that a child is produced by crossover (otherwise it is a
    /// mutated copy of a single elite).
    pub crossover_rate: f64,
    /// Mutation operator configuration.
    pub mutation: MutationConfig,
    /// Elite-selection strategy.
    pub selection: SelectionStrategy,
    /// RNG seed.
    pub seed: u64,
    /// Evaluate each generation's population on multiple threads.
    pub parallel: bool,
    /// Worker threads for parallel evaluation (`None` = machine
    /// parallelism). The outcome is identical for any thread count.
    pub threads: Option<usize>,
    /// Hard budget on the number of evaluations; the search stops once it
    /// is reached, evaluating a final partial generation if needed.
    pub max_evaluations: Option<usize>,
    /// Stop early when the best feasible objective has not improved for
    /// this many consecutive generations.
    pub stall_generations: Option<usize>,
}

impl SearchConfig {
    /// The paper's search budget: 200 generations of 60 candidates
    /// (12 000 evaluations).
    pub fn paper() -> Self {
        SearchConfig {
            generations: 200,
            population_size: 60,
            elite_fraction: 0.25,
            crossover_rate: 0.7,
            mutation: MutationConfig::default(),
            selection: SelectionStrategy::ObjectiveElitism,
            seed: 2023,
            parallel: true,
            threads: None,
            max_evaluations: None,
            stall_generations: None,
        }
    }

    /// A small budget for tests, examples and CI.
    pub fn fast() -> Self {
        SearchConfig {
            generations: 6,
            population_size: 16,
            elite_fraction: 0.25,
            crossover_rate: 0.7,
            mutation: MutationConfig::default(),
            selection: SelectionStrategy::ObjectiveElitism,
            seed: 7,
            parallel: false,
            threads: None,
            max_evaluations: None,
            stall_generations: None,
        }
    }

    /// Validates the hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidConfig`] for empty budgets or
    /// out-of-range rates.
    pub fn validate(&self) -> Result<(), OptimError> {
        if self.generations == 0 {
            return Err(OptimError::InvalidConfig {
                reason: "at least one generation is required".to_string(),
            });
        }
        if self.population_size < 2 {
            return Err(OptimError::InvalidConfig {
                reason: "population size must be at least 2".to_string(),
            });
        }
        if !(0.0 < self.elite_fraction && self.elite_fraction <= 1.0) {
            return Err(OptimError::InvalidConfig {
                reason: format!("elite fraction {} out of (0, 1]", self.elite_fraction),
            });
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err(OptimError::InvalidConfig {
                reason: format!("crossover rate {} out of [0, 1]", self.crossover_rate),
            });
        }
        if self.threads == Some(0) {
            return Err(OptimError::InvalidConfig {
                reason: "thread count must be at least 1 (use None for the default)".to_string(),
            });
        }
        if self.max_evaluations == Some(0) {
            return Err(OptimError::InvalidConfig {
                reason: "evaluation budget must be at least 1".to_string(),
            });
        }
        if self.stall_generations == Some(0) {
            return Err(OptimError::InvalidConfig {
                reason: "stall window must be at least one generation".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::paper()
    }
}

/// One evaluated candidate: its genome, decoded configuration and metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedConfig {
    /// The genome that produced the configuration.
    pub genome: Genome,
    /// The decoded configuration.
    pub config: MappingConfig,
    /// The evaluator's metrics for it.
    pub result: EvaluationResult,
    /// Generation in which it was evaluated.
    pub generation: usize,
}

/// Everything the search produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    archive: Vec<EvaluatedConfig>,
    generations_run: usize,
    early_stopped: bool,
}

impl SearchOutcome {
    /// Whether the search terminated before its configured generation
    /// count, either because the evaluation budget ran out or because the
    /// best objective stalled (see [`SearchConfig::max_evaluations`] and
    /// [`SearchConfig::stall_generations`]).
    pub fn early_stopped(&self) -> bool {
        self.early_stopped
    }

    /// Every configuration evaluated during the search, in evaluation
    /// order. This is the point cloud of the paper's Fig. 6.
    pub fn archive(&self) -> &[EvaluatedConfig] {
        &self.archive
    }

    /// Number of evaluations performed.
    pub fn evaluations(&self) -> usize {
        self.archive.len()
    }

    /// Number of generations completed.
    pub fn generations_run(&self) -> usize {
        self.generations_run
    }

    /// Feasible configurations only.
    pub fn feasible(&self) -> Vec<&EvaluatedConfig> {
        self.archive.iter().filter(|c| c.result.feasible).collect()
    }

    /// Pareto front over (average energy, average latency) among feasible
    /// configurations.
    pub fn pareto_front(&self) -> Vec<&EvaluatedConfig> {
        let feasible = self.feasible();
        let points: Vec<Vec<f64>> = feasible
            .iter()
            .map(|c| vec![c.result.average_energy_mj, c.result.average_latency_ms])
            .collect();
        pareto_front_indices(&points)
            .into_iter()
            .map(|i| feasible[i])
            .collect()
    }

    /// The feasible configuration with the lowest scalar objective
    /// (eq. 16).
    pub fn best_by_objective(&self) -> Option<&EvaluatedConfig> {
        self.feasible().into_iter().min_by(|a, b| {
            a.result
                .objective
                .partial_cmp(&b.result.objective)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The paper's "Ours-E" pick: the lowest-energy Pareto configuration
    /// whose accuracy drop does not exceed `max_accuracy_drop`.
    pub fn energy_oriented(&self, max_accuracy_drop: f64) -> Option<&EvaluatedConfig> {
        self.pareto_front()
            .into_iter()
            .filter(|c| c.result.accuracy_drop <= max_accuracy_drop + 1e-9)
            .min_by(|a, b| {
                a.result
                    .average_energy_mj
                    .partial_cmp(&b.result.average_energy_mj)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// The paper's "Ours-L" pick: the lowest-latency Pareto configuration
    /// whose accuracy drop does not exceed `max_accuracy_drop`.
    pub fn latency_oriented(&self, max_accuracy_drop: f64) -> Option<&EvaluatedConfig> {
        self.pareto_front()
            .into_iter()
            .filter(|c| c.result.accuracy_drop <= max_accuracy_drop + 1e-9)
            .min_by(|a, b| {
                a.result
                    .average_latency_ms
                    .partial_cmp(&b.result.average_latency_ms)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

/// The evolutionary mapping search.
///
/// Generic over the [`ConfigEvaluator`] hook: pass a plain
/// [`mnc_core::Evaluator`] for the paper's offline workflow, or a
/// cache-aware wrapper (such as `mnc_runtime::CachedEvaluator`) so repeated
/// genomes skip re-simulation.
#[derive(Debug)]
pub struct MappingSearch<'a, E: ConfigEvaluator = Evaluator> {
    evaluator: &'a E,
    config: SearchConfig,
}

impl<'a, E: ConfigEvaluator> MappingSearch<'a, E> {
    /// Creates a search over the given evaluator.
    pub fn new(evaluator: &'a E, config: SearchConfig) -> Self {
        MappingSearch { evaluator, config }
    }

    /// The search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the search to completion.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid hyper-parameters or when a candidate
    /// cannot be evaluated (which indicates an internal inconsistency, not
    /// a constraint violation).
    pub fn run(&self) -> Result<SearchOutcome, OptimError> {
        self.config.validate()?;
        let network = self.evaluator.network();
        let platform = self.evaluator.platform();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Initial population: the balanced default plus random genomes.
        let mut population = vec![Genome::balanced(network, platform)];
        while population.len() < self.config.population_size {
            population.push(Genome::random(network, platform, &mut rng));
        }

        let mut archive: Vec<EvaluatedConfig> = Vec::new();
        let elite_count = ((self.config.population_size as f64 * self.config.elite_fraction).ceil()
            as usize)
            .clamp(1, self.config.population_size);
        // One pool for the whole run — per-generation construction would
        // churn worker threads on every generation under real rayon.
        let pool = if self.config.parallel {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(self.config.threads.unwrap_or(0))
                    .build()
                    .map_err(|e| OptimError::InvalidConfig {
                        reason: format!("cannot build evaluation thread pool: {e}"),
                    })?,
            )
        } else {
            None
        };
        let mut early_stopped = false;
        let mut generations_run = 0;
        let mut best_objective = f64::INFINITY;
        let mut stalled_generations = 0usize;

        for generation in 0..self.config.generations {
            // Respect the evaluation budget: trim the final generation so
            // the search performs exactly `max_evaluations` evaluations.
            // (The post-evaluation break below guarantees at least one
            // evaluation remains when an iteration starts.)
            let mut candidates: &[Genome] = &population;
            if let Some(budget) = self.config.max_evaluations {
                let remaining = budget.saturating_sub(archive.len());
                if remaining < candidates.len() {
                    candidates = &population[..remaining];
                }
            }

            let evaluated = self.evaluate_population(candidates, generation, pool.as_ref())?;
            generations_run = generation + 1;
            archive.extend(evaluated.iter().cloned());

            if self
                .config
                .max_evaluations
                .is_some_and(|budget| archive.len() >= budget)
            {
                early_stopped = generations_run < self.config.generations;
                break;
            }

            // Early stop when the best feasible objective stops improving.
            if let Some(window) = self.config.stall_generations {
                let generation_best = evaluated
                    .iter()
                    .filter(|c| c.result.feasible)
                    .map(|c| c.result.objective)
                    .fold(f64::INFINITY, f64::min);
                if generation_best < best_objective - 1e-12 {
                    best_objective = generation_best;
                    stalled_generations = 0;
                } else if best_objective.is_finite() {
                    // Only count stall once a feasible candidate exists:
                    // a constrained search that has not reached the
                    // feasible region yet is exploring, not converged.
                    stalled_generations += 1;
                    if stalled_generations >= window {
                        early_stopped = generations_run < self.config.generations;
                        break;
                    }
                }
            }

            let elites: Vec<Genome> = match self.config.selection {
                SelectionStrategy::ObjectiveElitism => {
                    // Feasible candidates first, then by the scalar objective.
                    let mut ranked: Vec<&EvaluatedConfig> = evaluated.iter().collect();
                    ranked.sort_by(|a, b| {
                        let key_a = (!a.result.feasible, a.result.objective);
                        let key_b = (!b.result.feasible, b.result.objective);
                        key_a
                            .partial_cmp(&key_b)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    ranked
                        .iter()
                        .take(elite_count)
                        .map(|c| c.genome.clone())
                        .collect()
                }
                SelectionStrategy::ParetoCrowding => {
                    select_by_pareto_crowding(&evaluated, elite_count)
                }
            };

            // Next generation: elites survive, the rest are children.
            let mut next = elites.clone();
            while next.len() < self.config.population_size {
                let parent_a = &elites[rng.random_range(0..elites.len())];
                let mut child =
                    if rng.random::<f64>() < self.config.crossover_rate && elites.len() > 1 {
                        let parent_b = &elites[rng.random_range(0..elites.len())];
                        crossover(parent_a, parent_b, &mut rng)
                    } else {
                        parent_a.clone()
                    };
                mutate(&mut child, &self.config.mutation, &mut rng);
                next.push(child);
            }
            population = next;
        }

        Ok(SearchOutcome {
            archive,
            generations_run,
            early_stopped,
        })
    }

    /// Evaluates a population, optionally across threads.
    ///
    /// The parallel path maps the population through a rayon-style ordered
    /// parallel iterator: results come back in population order and the
    /// evaluation hook is pure, so the outcome is bit-identical to the
    /// sequential path for any thread count.
    fn evaluate_population(
        &self,
        population: &[Genome],
        generation: usize,
        pool: Option<&rayon::ThreadPool>,
    ) -> Result<Vec<EvaluatedConfig>, OptimError> {
        let (Some(pool), true) = (pool, population.len() >= 4) else {
            return population
                .iter()
                .map(|genome| self.evaluate_genome(genome, generation))
                .collect();
        };
        pool.install(|| {
            population
                .par_iter()
                .map(|genome| self.evaluate_genome(genome, generation))
                .collect::<Result<Vec<_>, OptimError>>()
        })
    }

    fn evaluate_genome(
        &self,
        genome: &Genome,
        generation: usize,
    ) -> Result<EvaluatedConfig, OptimError> {
        let (config, result) = self.evaluator.evaluate_genome(genome)?;
        Ok(EvaluatedConfig {
            genome: genome.clone(),
            config,
            result,
            generation,
        })
    }
}

/// NSGA-II-style elite selection over (average energy, average latency,
/// accuracy drop): walk the non-dominated fronts of the feasible candidates,
/// breaking ties inside the last partially-taken front by crowding distance.
/// Infeasible candidates are only used to pad out the elite set when there
/// are not enough feasible ones.
fn select_by_pareto_crowding(evaluated: &[EvaluatedConfig], elite_count: usize) -> Vec<Genome> {
    let feasible: Vec<&EvaluatedConfig> = evaluated.iter().filter(|c| c.result.feasible).collect();
    let points: Vec<Vec<f64>> = feasible
        .iter()
        .map(|c| {
            vec![
                c.result.average_energy_mj,
                c.result.average_latency_ms,
                c.result.accuracy_drop,
            ]
        })
        .collect();
    let mut elites: Vec<Genome> = Vec::with_capacity(elite_count);
    for front in non_dominated_fronts(&points) {
        if elites.len() >= elite_count {
            break;
        }
        let remaining = elite_count - elites.len();
        if front.len() <= remaining {
            elites.extend(front.iter().map(|&i| feasible[i].genome.clone()));
        } else {
            // Partial front: prefer the most isolated candidates.
            let front_points: Vec<Vec<f64>> = front.iter().map(|&i| points[i].clone()).collect();
            let distances = crowding_distance(&front_points);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| {
                distances[b]
                    .partial_cmp(&distances[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            elites.extend(
                order
                    .into_iter()
                    .take(remaining)
                    .map(|k| feasible[front[k]].genome.clone()),
            );
        }
    }
    // Pad with the least-violating infeasible candidates if necessary.
    if elites.len() < elite_count {
        let mut infeasible: Vec<&EvaluatedConfig> =
            evaluated.iter().filter(|c| !c.result.feasible).collect();
        infeasible.sort_by_key(|c| c.result.violations.len());
        elites.extend(
            infeasible
                .into_iter()
                .take(elite_count - elites.len())
                .map(|c| c.genome.clone()),
        );
    }
    if elites.is_empty() {
        // Degenerate case: keep whatever was evaluated first.
        elites.extend(evaluated.iter().take(elite_count).map(|c| c.genome.clone()));
    }
    elites
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_core::{Constraints, EvaluatorBuilder};
    use mnc_mpsoc::{CuId, Platform};
    use mnc_nn::models::{visformer_tiny, ModelPreset};

    fn evaluator(constraints: Constraints) -> Evaluator {
        EvaluatorBuilder::new(
            visformer_tiny(ModelPreset::cifar100()),
            Platform::dual_test(),
        )
        .validation_samples(1000)
        .constraints(constraints)
        .build()
        .unwrap()
    }

    #[test]
    fn config_validation_catches_bad_parameters() {
        assert!(SearchConfig::paper().validate().is_ok());
        assert!(SearchConfig::fast().validate().is_ok());
        assert!(SearchConfig {
            generations: 0,
            ..SearchConfig::fast()
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            population_size: 1,
            ..SearchConfig::fast()
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            elite_fraction: 0.0,
            ..SearchConfig::fast()
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            crossover_rate: 1.5,
            ..SearchConfig::fast()
        }
        .validate()
        .is_err());
        assert_eq!(SearchConfig::default(), SearchConfig::paper());
    }

    #[test]
    fn search_produces_an_archive_and_a_pareto_front() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 4,
            population_size: 10,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        assert_eq!(outcome.evaluations(), 40);
        assert_eq!(outcome.generations_run(), 4);
        assert!(!outcome.feasible().is_empty());
        let front = outcome.pareto_front();
        assert!(!front.is_empty());
        assert!(outcome.best_by_objective().is_some());
        assert!(outcome.energy_oriented(0.05).is_some());
        assert!(outcome.latency_oriented(0.05).is_some());
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 3,
            population_size: 8,
            ..SearchConfig::fast()
        };
        let a = MappingSearch::new(&evaluator, config).run().unwrap();
        let b = MappingSearch::new(&evaluator, config).run().unwrap();
        assert_eq!(a.archive().len(), b.archive().len());
        for (x, y) in a.archive().iter().zip(b.archive()) {
            assert_eq!(x.genome, y.genome);
        }
    }

    #[test]
    fn parallel_and_serial_evaluation_agree() {
        let evaluator = evaluator(Constraints::default());
        let serial = SearchConfig {
            generations: 2,
            population_size: 8,
            parallel: false,
            ..SearchConfig::fast()
        };
        let parallel = SearchConfig {
            parallel: true,
            ..serial
        };
        let a = MappingSearch::new(&evaluator, serial).run().unwrap();
        let b = MappingSearch::new(&evaluator, parallel).run().unwrap();
        for (x, y) in a.archive().iter().zip(b.archive()) {
            assert_eq!(x.genome, y.genome);
            assert_eq!(x.result, y.result);
        }
    }

    #[test]
    fn search_improves_over_the_initial_generation() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 8,
            population_size: 16,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        let first_gen_best = outcome
            .archive()
            .iter()
            .filter(|c| c.generation == 0 && c.result.feasible)
            .map(|c| c.result.objective)
            .fold(f64::INFINITY, f64::min);
        let overall_best = outcome.best_by_objective().unwrap().result.objective;
        assert!(overall_best <= first_gen_best);
    }

    #[test]
    fn stall_window_does_not_trigger_before_a_feasible_candidate_exists() {
        // Every candidate is infeasible (no feature-map reuse allowed but
        // genomes always forward something), so the best objective never
        // becomes finite. The stall window must not fire while the search
        // is still hunting for the feasible region.
        let evaluator = evaluator(Constraints::with_fmap_reuse_limit(0.0));
        let config = SearchConfig {
            generations: 4,
            population_size: 8,
            stall_generations: Some(1),
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        assert_eq!(outcome.generations_run(), 4);
        assert!(!outcome.early_stopped());
        assert!(outcome.feasible().is_empty());
    }

    #[test]
    fn fmap_constraint_limits_the_selected_configurations() {
        let evaluator = evaluator(Constraints::with_fmap_reuse_limit(0.5));
        let config = SearchConfig {
            generations: 6,
            population_size: 16,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        for candidate in outcome.feasible() {
            assert!(candidate.result.fmap_reuse <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn pareto_crowding_selection_runs_and_yields_a_broader_front() {
        let evaluator = evaluator(Constraints::default());
        let scalar = SearchConfig {
            generations: 6,
            population_size: 16,
            selection: SelectionStrategy::ObjectiveElitism,
            ..SearchConfig::fast()
        };
        let nsga = SearchConfig {
            selection: SelectionStrategy::ParetoCrowding,
            ..scalar
        };
        let scalar_outcome = MappingSearch::new(&evaluator, scalar).run().unwrap();
        let nsga_outcome = MappingSearch::new(&evaluator, nsga).run().unwrap();
        assert_eq!(nsga_outcome.evaluations(), scalar_outcome.evaluations());
        assert!(!nsga_outcome.pareto_front().is_empty());
        // The multi-objective selection keeps at least as diverse a front
        // (it never collapses onto a single scalar optimum).
        assert!(!nsga_outcome.pareto_front().is_empty());
        assert!(nsga_outcome.best_by_objective().is_some());
    }

    #[test]
    fn search_finds_configurations_dominating_single_cu_baselines() {
        // The headline claim of the paper, in miniature: there exists a
        // found configuration that is simultaneously more energy-efficient
        // than the GPU-only mapping and faster than the DLA-only mapping.
        let evaluator = evaluator(Constraints::default());
        let gpu = evaluator.baseline_single_cu(CuId(0)).unwrap();
        let dla = evaluator.baseline_single_cu(CuId(1)).unwrap();
        let config = SearchConfig {
            generations: 10,
            population_size: 20,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        let dominating = outcome.feasible().into_iter().any(|c| {
            c.result.average_energy_mj < gpu.energy_mj
                && c.result.average_latency_ms < dla.latency_ms
        });
        assert!(dominating, "no configuration beats both baselines");
    }
}
