//! The evolutionary search loop (paper §V-C, Fig. 5).
//!
//! # The search fast path
//!
//! [`MappingSearch::run`] drives the paper's GA-with-elitism loop through
//! three loop-level optimisations, all result-preserving:
//!
//! * **within-run memoization** — elites are cloned into the next
//!   generation and duplicate children recur as the population converges,
//!   so the loop keys a per-run memo on the full genome fingerprint and
//!   evaluates each distinct genome exactly once per run. A memo hit is
//!   bit-identical by construction (evaluation is a pure function of the
//!   genome) and collision-safe (the memoised genome is compared for
//!   equality before a fingerprint match is honoured).
//! * **fused fresh evaluations** — first occurrences go through
//!   [`ConfigEvaluator::evaluate_genome_fast`], which for a plain
//!   [`mnc_core::Evaluator`] runs the allocation-light fused pipeline
//!   (`SliceGrid` instead of a materialised `DynamicNetwork` per
//!   candidate).
//! * **`Arc`-backed results** — [`EvaluatedConfig`] holds its genome,
//!   configuration and metrics behind `Arc`s, so archiving, elite
//!   selection and cache layers stop deep-cloning decoded configurations.
//!
//! [`MappingSearch::run_reference`] retains the pre-fast-path loop —
//! every candidate evaluated afresh through
//! [`ConfigEvaluator::evaluate_genome`] and archived as an independent
//! deep copy — as the oracle the memoized loop is property-tested
//! against (`run` and `run_reference` produce bit-identical archives for
//! any seed and thread count) and as the baseline of the
//! `search_fastpath` benchmark.

use crate::error::OptimError;
use crate::evaluate::ConfigEvaluator;
use crate::genome::Genome;
use crate::operators::{crossover, mutate, MutationConfig};
use crate::pareto::{crowding_distance, dominates, non_dominated_fronts, pareto_front_indices};
use mnc_core::{EvaluationResult, Evaluator, MappingConfig};
use mnc_telemetry::{GenerationEvent, TelemetrySink};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shareable cooperative cancellation flag for an in-flight search.
///
/// Clone the token, hand one copy to [`MappingSearch::with_cancel_token`]
/// and keep the other: calling [`CancelToken::cancel`] from any thread
/// makes the search stop at its next generation boundary and return the
/// best-front-so-far as a partial outcome ([`SearchOutcome::partial`]).
/// A token that is never cancelled has no effect on the search — the
/// outcome stays bit-identical to a run without one.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Flags cancellation. Idempotent; the search observes it at its next
    /// generation boundary.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether [`CancelToken::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// A shareable cooperative pause flag for an in-flight resumable search.
///
/// The preemption counterpart of [`CancelToken`]: clone the token, hand
/// one copy to [`MappingSearch::with_pause_token`] and keep the other.
/// Calling [`PauseToken::pause`] from any thread makes a search driven by
/// [`MappingSearch::run_resumable`] stop at its next generation boundary
/// and return a [`SearchCheckpoint`] instead of finishing; resuming the
/// checkpoint continues bit-identically to an uninterrupted run. A token
/// that is never paused has no effect on the search, and
/// [`MappingSearch::run`] ignores pause requests entirely (it cannot
/// return a checkpoint).
#[derive(Debug, Clone, Default)]
pub struct PauseToken {
    paused: Arc<AtomicBool>,
}

impl PauseToken {
    /// A fresh, unpaused token.
    pub fn new() -> Self {
        PauseToken::default()
    }

    /// Requests a pause. Idempotent; a resumable search observes it at
    /// its next generation boundary.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::SeqCst);
    }

    /// Clears a pause request so a resumed search keeps running instead
    /// of immediately pausing again. (A resumed search always completes
    /// at least one generation before re-checking the token, so even an
    /// uncleared token cannot starve it — it just pauses once per
    /// resume.)
    pub fn clear(&self) {
        self.paused.store(false, Ordering::SeqCst);
    }

    /// Whether [`PauseToken::pause`] was called (and not yet cleared).
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }
}

/// How elites are chosen from an evaluated generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Rank by the scalar objective of eq. 16 (feasible candidates first).
    /// This is the paper's elite-selection step.
    ObjectiveElitism,
    /// NSGA-II-style selection: non-dominated sorting over (average energy,
    /// average latency, accuracy drop) with crowding-distance tie-breaking.
    /// Useful when the practitioner wants the whole Pareto surface rather
    /// than one scalarised optimum.
    ParetoCrowding,
}

/// Hyper-parameters of the evolutionary search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Number of generations.
    pub generations: usize,
    /// Population size per generation.
    pub population_size: usize,
    /// Fraction of the population kept as elites each generation.
    pub elite_fraction: f64,
    /// Probability that a child is produced by crossover (otherwise it is a
    /// mutated copy of a single elite).
    pub crossover_rate: f64,
    /// Mutation operator configuration.
    pub mutation: MutationConfig,
    /// Elite-selection strategy.
    pub selection: SelectionStrategy,
    /// RNG seed.
    pub seed: u64,
    /// Evaluate each generation's population on multiple threads.
    pub parallel: bool,
    /// Worker threads for parallel evaluation (`None` = machine
    /// parallelism). The outcome is identical for any thread count.
    pub threads: Option<usize>,
    /// Hard budget on the number of evaluations; the search stops once it
    /// is reached, evaluating a final partial generation if needed.
    pub max_evaluations: Option<usize>,
    /// Stop early when the best feasible objective has not improved for
    /// this many consecutive generations.
    pub stall_generations: Option<usize>,
    /// Seed the initial population from [`MappingSearch::with_seeds`]
    /// genomes (surrogate-ranked elites of similar past searches). Off by
    /// default: a cold search's outcome depends only on its
    /// [`SearchConfig`], never on ambient state.
    pub warm_start: bool,
}

impl SearchConfig {
    /// The paper's search budget: 200 generations of 60 candidates
    /// (12 000 evaluations).
    pub fn paper() -> Self {
        SearchConfig {
            generations: 200,
            population_size: 60,
            elite_fraction: 0.25,
            crossover_rate: 0.7,
            mutation: MutationConfig::default(),
            selection: SelectionStrategy::ObjectiveElitism,
            seed: 2023,
            parallel: true,
            threads: None,
            max_evaluations: None,
            stall_generations: None,
            warm_start: false,
        }
    }

    /// A small budget for tests, examples and CI.
    pub fn fast() -> Self {
        SearchConfig {
            generations: 6,
            population_size: 16,
            elite_fraction: 0.25,
            crossover_rate: 0.7,
            mutation: MutationConfig::default(),
            selection: SelectionStrategy::ObjectiveElitism,
            seed: 7,
            parallel: false,
            threads: None,
            max_evaluations: None,
            stall_generations: None,
            warm_start: false,
        }
    }

    /// Validates the hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidConfig`] for empty budgets or
    /// out-of-range rates.
    pub fn validate(&self) -> Result<(), OptimError> {
        if self.generations == 0 {
            return Err(OptimError::InvalidConfig {
                reason: "at least one generation is required".to_string(),
            });
        }
        if self.population_size < 2 {
            return Err(OptimError::InvalidConfig {
                reason: "population size must be at least 2".to_string(),
            });
        }
        if !(0.0 < self.elite_fraction && self.elite_fraction <= 1.0) {
            return Err(OptimError::InvalidConfig {
                reason: format!("elite fraction {} out of (0, 1]", self.elite_fraction),
            });
        }
        if !(0.0..=1.0).contains(&self.crossover_rate) {
            return Err(OptimError::InvalidConfig {
                reason: format!("crossover rate {} out of [0, 1]", self.crossover_rate),
            });
        }
        if self.threads == Some(0) {
            return Err(OptimError::InvalidConfig {
                reason: "thread count must be at least 1 (use None for the default)".to_string(),
            });
        }
        if self.max_evaluations == Some(0) {
            return Err(OptimError::InvalidConfig {
                reason: "evaluation budget must be at least 1".to_string(),
            });
        }
        if self.stall_generations == Some(0) {
            return Err(OptimError::InvalidConfig {
                reason: "stall window must be at least one generation".to_string(),
            });
        }
        Ok(())
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig::paper()
    }
}

/// One evaluated candidate: its genome, decoded configuration and metrics.
///
/// All three are `Arc`-backed: the archive, the elite set, the evaluation
/// cache and every response front share one allocation per evaluation
/// instead of deep-cloning configurations at each hand-off. Equality and
/// serialization see through the `Arc`s, so two configs compare (and
/// serialize) exactly as their contents do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedConfig {
    /// The genome that produced the configuration.
    pub genome: Arc<Genome>,
    /// The decoded configuration.
    pub config: Arc<MappingConfig>,
    /// The evaluator's metrics for it.
    pub result: Arc<EvaluationResult>,
    /// Generation in which the search scheduled it (a memoized replay of
    /// an elite keeps appearing in every generation that re-selected it,
    /// exactly like the pre-memoization loop's re-evaluations did).
    pub generation: usize,
}

/// Everything the search produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    archive: Vec<EvaluatedConfig>,
    generations_run: usize,
    early_stopped: bool,
    partial: bool,
    evaluations_performed: usize,
    memo_hits: usize,
    warm_start_seeds: usize,
}

/// The counters of a finished search as one compact, copyable value — what
/// a serving layer reports per request (`mnc_runtime`'s pipeline folds one
/// of these into its `RequestStats`, and the JSON wire front-end carries it
/// verbatim) without holding the archive alive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSummary {
    /// Configurations the search scheduled (the archive length).
    pub evaluations: usize,
    /// Evaluations that reached the evaluator (the rest were memo hits).
    pub evaluations_performed: usize,
    /// Scheduled evaluations answered by the within-run memo.
    pub memo_hits: usize,
    /// Warm-start seed genomes injected into the initial population.
    pub warm_start_seeds: usize,
    /// Generations actually run.
    pub generations_run: usize,
    /// Whether the search stopped before its generation count.
    pub early_stopped: bool,
    /// Whether the search was interrupted by a deadline or a cancel
    /// token and the outcome is an anytime (best-front-so-far) answer.
    pub partial: bool,
}

impl SearchOutcome {
    /// Whether the search terminated before its configured generation
    /// count, either because the evaluation budget ran out or because the
    /// best objective stalled (see [`SearchConfig::max_evaluations`] and
    /// [`SearchConfig::stall_generations`]).
    pub fn early_stopped(&self) -> bool {
        self.early_stopped
    }

    /// Whether the search was interrupted (deadline passed or
    /// [`CancelToken::cancel`] called) and this outcome is an anytime
    /// answer: the archive holds every generation completed before the
    /// interruption — a bit-identical prefix of the uninterrupted run —
    /// and [`SearchOutcome::generations_run`] marks how many completed.
    pub fn partial(&self) -> bool {
        self.partial
    }

    /// Every configuration evaluated during the search, in evaluation
    /// order. This is the point cloud of the paper's Fig. 6.
    pub fn archive(&self) -> &[EvaluatedConfig] {
        &self.archive
    }

    /// Number of evaluations the search *scheduled* (the archive length —
    /// the pre-memoization loop performed all of them).
    pub fn evaluations(&self) -> usize {
        self.archive.len()
    }

    /// Number of evaluations actually performed by the evaluator; the rest
    /// ([`SearchOutcome::memo_hits`]) were served from the within-run
    /// memo.
    pub fn evaluations_performed(&self) -> usize {
        self.evaluations_performed
    }

    /// Scheduled evaluations answered by the within-run memo (elites
    /// re-selected into later generations, duplicate children): always
    /// `evaluations() - evaluations_performed()`.
    pub fn memo_hits(&self) -> usize {
        self.memo_hits
    }

    /// Number of warm-start seed genomes injected into the initial
    /// population (0 unless [`SearchConfig::warm_start`] was set and
    /// [`MappingSearch::with_seeds`] supplied compatible genomes).
    pub fn warm_start_seeds(&self) -> usize {
        self.warm_start_seeds
    }

    /// Number of generations completed.
    pub fn generations_run(&self) -> usize {
        self.generations_run
    }

    /// The outcome's counters as one copyable [`SearchSummary`].
    pub fn summary(&self) -> SearchSummary {
        SearchSummary {
            evaluations: self.evaluations(),
            evaluations_performed: self.evaluations_performed,
            memo_hits: self.memo_hits,
            warm_start_seeds: self.warm_start_seeds,
            generations_run: self.generations_run,
            early_stopped: self.early_stopped,
            partial: self.partial,
        }
    }

    /// Number of scheduled evaluations until a feasible candidate with an
    /// objective no worse than `target` first appeared in the archive
    /// (`None` when the search never reached it). The benchmark's
    /// "evaluations-to-front" metric: a warm-started search reaching the
    /// cold search's final best objective after fewer evaluations
    /// converged faster in a budget-independent sense.
    pub fn evaluations_to_objective(&self, target: f64) -> Option<usize> {
        self.archive
            .iter()
            .position(|c| c.result.feasible && c.result.objective <= target)
            .map(|index| index + 1)
    }

    /// Feasible configurations only.
    pub fn feasible(&self) -> Vec<&EvaluatedConfig> {
        self.archive.iter().filter(|c| c.result.feasible).collect()
    }

    /// Pareto front over (average energy, average latency) among feasible
    /// configurations (an O(n log n) skyline sweep — see
    /// [`pareto_front_indices`]).
    pub fn pareto_front(&self) -> Vec<&EvaluatedConfig> {
        let feasible = self.feasible();
        let points: Vec<[f64; 2]> = feasible
            .iter()
            .map(|c| [c.result.average_energy_mj, c.result.average_latency_ms])
            .collect();
        pareto_front_indices(&points)
            .into_iter()
            .map(|i| feasible[i])
            .collect()
    }

    /// The feasible configuration with the lowest scalar objective
    /// (eq. 16).
    pub fn best_by_objective(&self) -> Option<&EvaluatedConfig> {
        self.feasible()
            .into_iter()
            .min_by(|a, b| a.result.objective.total_cmp(&b.result.objective))
    }

    /// The paper's "Ours-E" pick: the lowest-energy Pareto configuration
    /// whose accuracy drop does not exceed `max_accuracy_drop`.
    pub fn energy_oriented(&self, max_accuracy_drop: f64) -> Option<&EvaluatedConfig> {
        self.pareto_front()
            .into_iter()
            .filter(|c| c.result.accuracy_drop <= max_accuracy_drop + 1e-9)
            .min_by(|a, b| {
                a.result
                    .average_energy_mj
                    .total_cmp(&b.result.average_energy_mj)
            })
    }

    /// The paper's "Ours-L" pick: the lowest-latency Pareto configuration
    /// whose accuracy drop does not exceed `max_accuracy_drop`.
    pub fn latency_oriented(&self, max_accuracy_drop: f64) -> Option<&EvaluatedConfig> {
        self.pareto_front()
            .into_iter()
            .filter(|c| c.result.accuracy_drop <= max_accuracy_drop + 1e-9)
            .min_by(|a, b| {
                a.result
                    .average_latency_ms
                    .total_cmp(&b.result.average_latency_ms)
            })
    }
}

/// One `Arc`-backed evaluation: the decoded configuration plus metrics.
type EvaluatedPair = (Arc<MappingConfig>, Arc<EvaluationResult>);

/// One memoised evaluation. The genome is retained so a fingerprint match
/// is honoured only for a genuinely equal genome (a 64-bit collision falls
/// through to a fresh evaluation instead of replaying the wrong result).
#[derive(Debug)]
struct MemoEntry {
    genome: Arc<Genome>,
    config: Arc<MappingConfig>,
    result: Arc<EvaluationResult>,
}

/// The result of one resumable drive of the search: either it ran to its
/// natural end (completion, budget, stall, deadline or cancellation) or a
/// [`PauseToken`] stopped it at a generation boundary mid-run.
#[derive(Debug)]
pub enum SearchRun {
    /// The search finished; deadline/cancel interruptions still land
    /// here (as partial outcomes), exactly as [`MappingSearch::run`]
    /// reports them.
    Complete(SearchOutcome),
    /// A pause request stopped the search at a generation boundary. Feed
    /// the checkpoint to [`MappingSearch::resume`] to continue; the
    /// eventual outcome is bit-identical to a run that was never paused.
    Paused(Box<SearchCheckpoint>),
}

/// The complete mid-run state of a paused search, captured at a
/// generation boundary: the bred-but-unevaluated next population, the
/// archive so far, the within-run memo (with its pointer-identity
/// fingerprint cache), the RNG position and every loop counter.
///
/// A checkpoint is only meaningful for the `(evaluator, config)` pair
/// that produced it; [`MappingSearch::resume`] rejects a config mismatch
/// but cannot detect a different evaluator — resuming one against the
/// wrong evaluator silently computes the wrong (yet well-formed) answer.
#[derive(Debug)]
pub struct SearchCheckpoint {
    config: SearchConfig,
    population: Vec<Arc<Genome>>,
    archive: Vec<EvaluatedConfig>,
    memo: HashMap<u64, MemoEntry>,
    known: HashMap<usize, (Arc<Genome>, u64)>,
    rng: StdRng,
    next_generation: usize,
    evaluations_performed: usize,
    memo_hits: usize,
    warm_start_seeds: usize,
    best_objective: f64,
    stalled_generations: usize,
}

impl SearchCheckpoint {
    /// Generations fully completed (and archived) before the pause; the
    /// resumed search continues with this generation index.
    pub fn generations_completed(&self) -> usize {
        self.next_generation
    }

    /// Evaluations that reached the evaluator before the pause — what a
    /// budget accountant should debit for the paused span.
    pub fn evaluations_performed(&self) -> usize {
        self.evaluations_performed
    }

    /// The configuration the paused search was running under.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }
}

/// The evolutionary mapping search.
///
/// Generic over the [`ConfigEvaluator`] hook: pass a plain
/// [`mnc_core::Evaluator`] for the paper's offline workflow, or a
/// cache-aware wrapper (such as `mnc_runtime::CachedEvaluator`) so repeated
/// genomes skip re-simulation.
pub struct MappingSearch<'a, E: ConfigEvaluator = Evaluator> {
    evaluator: &'a E,
    config: SearchConfig,
    seeds: Vec<Arc<Genome>>,
    sink: Option<&'a dyn TelemetrySink>,
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    pause: Option<PauseToken>,
}

impl<E: ConfigEvaluator> std::fmt::Debug for MappingSearch<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingSearch")
            .field("config", &self.config)
            .field("seeds", &self.seeds.len())
            .field("telemetry", &self.sink.is_some())
            .field("deadline", &self.deadline.is_some())
            .field("cancellable", &self.cancel.is_some())
            .field("pausable", &self.pause.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a, E: ConfigEvaluator> MappingSearch<'a, E> {
    /// Creates a search over the given evaluator.
    pub fn new(evaluator: &'a E, config: SearchConfig) -> Self {
        MappingSearch {
            evaluator,
            config,
            seeds: Vec::new(),
            sink: None,
            deadline: None,
            cancel: None,
            pause: None,
        }
    }

    /// Bounds the search by an absolute wall-clock deadline, checked once
    /// per generation *before* any of that generation's work: a search
    /// past its deadline stops at the boundary and returns the
    /// best-front-so-far as a partial outcome. The check never touches
    /// the RNG stream, so a deadline that the full search beats leaves
    /// the outcome bit-identical to an undeadlined run (property-tested).
    /// At least one generation always runs — an already-expired deadline
    /// yields the smallest possible anytime answer, not an error.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation token, checked at the same
    /// per-generation boundary as [`MappingSearch::with_deadline`]. An
    /// uncancelled token never perturbs the search.
    #[must_use]
    pub fn with_cancel_token(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches a per-generation telemetry sink. The sink only observes:
    /// it is consulted after each generation's evaluations are archived
    /// and never feeds back into the RNG stream, the evaluation order or
    /// the archive, so [`MappingSearch::run`] stays bit-identical with
    /// and without telemetry (property-tested).
    #[must_use]
    pub fn with_telemetry(mut self, sink: &'a dyn TelemetrySink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a cooperative pause token, checked at the same
    /// per-generation boundary as cancellation (cancel wins when both
    /// fire). Only [`MappingSearch::run_resumable`] and
    /// [`MappingSearch::resume`] honour it — [`MappingSearch::run`]
    /// cannot return a checkpoint, so it ignores pause requests. An
    /// unpaused token never perturbs the search.
    #[must_use]
    pub fn with_pause_token(mut self, pause: PauseToken) -> Self {
        self.pause = Some(pause);
        self
    }

    /// Supplies warm-start seed genomes (typically Pareto elites of a
    /// similar past search, surrogate-ranked best-first). They join the
    /// initial population — after the balanced default, before the random
    /// fill — only when [`SearchConfig::warm_start`] is set; incompatible
    /// or duplicate seeds are skipped silently.
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<Arc<Genome>>) -> Self {
        self.seeds = seeds;
        self
    }

    /// The search configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Runs the search to completion through the memoized fast path: each
    /// distinct genome is evaluated exactly once per run, fresh
    /// evaluations share dynamic transformations per structure, and the
    /// archive shares allocations with the elite set. The outcome is
    /// bit-identical to [`MappingSearch::run_reference`] for any seed and
    /// thread count (property-tested).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid hyper-parameters or when a candidate
    /// cannot be evaluated (which indicates an internal inconsistency, not
    /// a constraint violation).
    pub fn run(&self) -> Result<SearchOutcome, OptimError> {
        match self.drive(true, false, None)? {
            SearchRun::Complete(outcome) => Ok(outcome),
            SearchRun::Paused(_) => unreachable!("non-resumable drives never pause"),
        }
    }

    /// Runs the search through the pre-fast-path loop: every scheduled
    /// candidate is evaluated afresh through
    /// [`ConfigEvaluator::evaluate_genome`] (no within-run memo, no
    /// transform sharing) and archived as an independent deep copy, the
    /// way the loop behaved before the search fast path. Retained as the
    /// property-test oracle and the `search_fastpath` benchmark baseline.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MappingSearch::run`].
    pub fn run_reference(&self) -> Result<SearchOutcome, OptimError> {
        match self.drive(false, false, None)? {
            SearchRun::Complete(outcome) => Ok(outcome),
            SearchRun::Paused(_) => unreachable!("non-resumable drives never pause"),
        }
    }

    /// Runs the memoized search with pause support: a [`PauseToken`]
    /// attached through [`MappingSearch::with_pause_token`] makes the
    /// loop stop at its next generation boundary and return
    /// [`SearchRun::Paused`] with the full mid-run state. Resuming the
    /// checkpoint (any number of times, on any thread count) finishes
    /// with an outcome bit-identical to [`MappingSearch::run`]
    /// (property-tested). Without a pause request this is exactly
    /// [`MappingSearch::run`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`MappingSearch::run`].
    pub fn run_resumable(&self) -> Result<SearchRun, OptimError> {
        self.drive(true, true, None)
    }

    /// Continues a search paused by [`MappingSearch::run_resumable`]. At
    /// least one generation runs before the pause token is consulted
    /// again, so resuming with a still-set token makes progress rather
    /// than spinning. The thread pool is rebuilt from the current
    /// config's thread count — the outcome is thread-count independent,
    /// so pausing on one pool size and resuming on another is safe.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::InvalidConfig`] when the checkpoint was
    /// taken under a different [`SearchConfig`], plus the failure modes
    /// of [`MappingSearch::run`].
    pub fn resume(&self, checkpoint: Box<SearchCheckpoint>) -> Result<SearchRun, OptimError> {
        // The execution knobs (`parallel`, `threads`) are excluded from
        // the guard: they never affect results, so a checkpoint may be
        // resumed on any pool size.
        let comparable = |config: &SearchConfig| SearchConfig {
            parallel: false,
            threads: None,
            ..*config
        };
        if comparable(&checkpoint.config) != comparable(&self.config) {
            return Err(OptimError::InvalidConfig {
                reason: "checkpoint was taken under a different search configuration".to_string(),
            });
        }
        self.drive(true, true, Some(checkpoint))
    }

    /// The shared generation loop. `memoize` selects the evaluation path:
    /// the memoized fast path or the evaluate-everything reference.
    /// `resumable` arms the pause boundary (only the memoized path is
    /// ever driven resumably), and `from` continues a paused run instead
    /// of building the initial population. Everything else — RNG stream,
    /// budget trimming, stall handling, elite selection, breeding — is
    /// common, so the paths cannot drift apart in loop semantics.
    fn drive(
        &self,
        memoize: bool,
        resumable: bool,
        from: Option<Box<SearchCheckpoint>>,
    ) -> Result<SearchRun, OptimError> {
        self.config.validate()?;
        let network = self.evaluator.network();
        let platform = self.evaluator.platform();

        // Loop state: fresh, or exactly where the checkpoint left off.
        // The checkpoint was taken at a generation boundary — population
        // bred, RNG advanced past the breeding draws — so restoring it
        // and continuing the loop replays the uninterrupted run's
        // remaining generations bit-identically.
        let start_generation;
        let mut rng;
        let mut population: Vec<Arc<Genome>>;
        let mut warm_start_seeds;
        let mut archive: Vec<EvaluatedConfig>;
        let mut memo: HashMap<u64, MemoEntry>;
        let mut known: HashMap<usize, (Arc<Genome>, u64)>;
        let mut evaluations_performed;
        let mut memo_hits;
        let mut best_objective;
        let mut stalled_generations;
        if let Some(checkpoint) = from {
            let checkpoint = *checkpoint;
            start_generation = checkpoint.next_generation;
            rng = checkpoint.rng;
            population = checkpoint.population;
            warm_start_seeds = checkpoint.warm_start_seeds;
            archive = checkpoint.archive;
            memo = checkpoint.memo;
            known = checkpoint.known;
            evaluations_performed = checkpoint.evaluations_performed;
            memo_hits = checkpoint.memo_hits;
            best_objective = checkpoint.best_objective;
            stalled_generations = checkpoint.stalled_generations;
        } else {
            start_generation = 0;
            rng = StdRng::seed_from_u64(self.config.seed);
            // Initial population: the balanced default, then (warm start
            // only) the compatible seed genomes, then random genomes.
            population = vec![Arc::new(Genome::balanced(network, platform))];
            warm_start_seeds = 0usize;
            if self.config.warm_start {
                let mut seen: Vec<u64> = population.iter().map(|g| g.fingerprint()).collect();
                for seed in &self.seeds {
                    if population.len() >= self.config.population_size {
                        break;
                    }
                    if !seed.is_valid()
                        || seed.num_stages() != platform.num_compute_units()
                        || seed.num_layers() != network.num_layers()
                        || seed.partitionable_layers() != network.partitionable_layers()
                    {
                        continue;
                    }
                    let fingerprint = seed.fingerprint();
                    if seen.contains(&fingerprint) {
                        continue;
                    }
                    seen.push(fingerprint);
                    population.push(Arc::clone(seed));
                    warm_start_seeds += 1;
                }
            }
            while population.len() < self.config.population_size {
                population.push(Arc::new(Genome::random(network, platform, &mut rng)));
            }
            archive = Vec::new();
            memo = HashMap::new();
            known = HashMap::new();
            evaluations_performed = 0usize;
            memo_hits = 0usize;
            best_objective = f64::INFINITY;
            stalled_generations = 0usize;
        }

        let elite_count = ((self.config.population_size as f64 * self.config.elite_fraction).ceil()
            as usize)
            .clamp(1, self.config.population_size);
        // One pool for the whole run — per-generation construction would
        // churn worker threads on every generation under real rayon.
        let pool = if self.config.parallel {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(self.config.threads.unwrap_or(0))
                    .build()
                    .map_err(|e| OptimError::InvalidConfig {
                        reason: format!("cannot build evaluation thread pool: {e}"),
                    })?,
            )
        } else {
            None
        };
        let mut early_stopped = false;
        let mut partial = false;
        let mut generations_run = start_generation;

        for generation in start_generation..self.config.generations {
            // The anytime boundary: one deadline/cancel probe per
            // generation, before any of its work and without touching the
            // RNG stream. The first generation always runs so an
            // already-expired deadline still yields a non-empty front.
            if generation > 0 && self.interrupted() {
                partial = true;
                early_stopped = true;
                break;
            }
            // The preemption boundary, directly after (cancel wins over
            // pause): checkpoint everything and hand the loop state back.
            // At least one generation runs per drive — `generation >
            // start_generation` — so a pause token that is never cleared
            // still makes progress on every resume.
            if resumable && generation > start_generation && self.pause_requested() {
                return Ok(SearchRun::Paused(Box::new(SearchCheckpoint {
                    config: self.config,
                    population,
                    archive,
                    memo,
                    known,
                    rng,
                    next_generation: generation,
                    evaluations_performed,
                    memo_hits,
                    warm_start_seeds,
                    best_objective,
                    stalled_generations,
                })));
            }
            // Respect the evaluation budget: trim the final generation so
            // the search performs exactly `max_evaluations` evaluations.
            // (The post-evaluation break below guarantees at least one
            // evaluation remains when an iteration starts.)
            let mut candidates: &[Arc<Genome>] = &population;
            if let Some(budget) = self.config.max_evaluations {
                let remaining = budget.saturating_sub(archive.len());
                if remaining < candidates.len() {
                    candidates = &population[..remaining];
                }
            }
            let fresh_before = evaluations_performed;
            let memo_before = memo_hits;

            let evaluated = if memoize {
                self.evaluate_generation_memoized(
                    candidates,
                    generation,
                    pool.as_ref(),
                    &mut memo,
                    &mut known,
                    &mut evaluations_performed,
                    &mut memo_hits,
                )?
            } else {
                let fresh =
                    self.evaluate_generation_reference(candidates, generation, pool.as_ref())?;
                evaluations_performed += fresh.len();
                fresh
            };
            generations_run = generation + 1;
            let generation_start = archive.len();
            if memoize {
                // The generation's records move into the archive — the
                // stall check and elite selection below read the archive
                // tail, so nothing is cloned on the way in.
                archive.extend(evaluated);
            } else {
                // The pre-fast-path loop archived independent copies;
                // reproduce its per-candidate allocation behaviour so the
                // benchmark baseline stays honest.
                archive.extend(evaluated.into_iter().map(|c| EvaluatedConfig {
                    genome: Arc::new((*c.genome).clone()),
                    config: Arc::new((*c.config).clone()),
                    result: Arc::new((*c.result).clone()),
                    generation: c.generation,
                }));
            }
            let evaluated = &archive[generation_start..];

            let budget_exhausted = self
                .config
                .max_evaluations
                .is_some_and(|budget| archive.len() >= budget);

            // Early stop when the best feasible objective stops improving.
            // A budget-exhausted final generation breaks before the stall
            // bookkeeping, so none of it runs in that case.
            let mut stall_stop = false;
            if !budget_exhausted {
                let generation_best = || {
                    evaluated
                        .iter()
                        .filter(|c| c.result.feasible)
                        .map(|c| c.result.objective)
                        .fold(f64::INFINITY, f64::min)
                };
                if let Some(window) = self.config.stall_generations {
                    let generation_best = generation_best();
                    if generation_best < best_objective - 1e-12 {
                        best_objective = generation_best;
                        stalled_generations = 0;
                    } else if best_objective.is_finite() {
                        // Only count stall once a feasible candidate exists:
                        // a constrained search that has not reached the
                        // feasible region yet is exploring, not converged.
                        stalled_generations += 1;
                        if stalled_generations >= window {
                            stall_stop = true;
                        }
                    }
                } else if self.sink.is_some() {
                    // No stall stopping configured: track the running best
                    // for the telemetry stream only (pure observation, no
                    // effect on the search).
                    best_objective = best_objective.min(generation_best());
                }
            }

            let stopping = budget_exhausted || stall_stop;
            // Selection runs before the telemetry event so the event can
            // reuse the dominance partition Pareto-crowding selection
            // ranks anyway — the per-generation event then costs a few
            // counter bumps and a ring push, not a second front sort. A
            // stopping generation selects nothing, and rank-based
            // selection never partitions, so those fall back to a direct
            // scan.
            let (elites, front_stats) = if stopping {
                (Vec::new(), None)
            } else {
                select_elites(evaluated, self.config.selection, elite_count)
            };

            if let Some(sink) = self.sink {
                let (feasible, front_size) =
                    front_stats.unwrap_or_else(|| generation_front_stats(evaluated));
                sink.on_generation(GenerationEvent {
                    generation,
                    scheduled: evaluated.len(),
                    fresh_evaluations: evaluations_performed - fresh_before,
                    memo_hits: memo_hits - memo_before,
                    evaluations_total: archive.len(),
                    feasible,
                    front_size,
                    best_objective: best_objective.is_finite().then_some(best_objective),
                    stalled_generations,
                });
            }

            if stopping {
                early_stopped = generations_run < self.config.generations;
                break;
            }

            // The pre-fast-path loop cloned each elite genome out of the
            // evaluated generation at selection time; reproduce that copy
            // so the baseline's allocation behaviour stays honest. (The
            // fast path shares the archive's `Arc`s instead.)
            let elites: Vec<Arc<Genome>> = if memoize {
                elites
            } else {
                elites
                    .iter()
                    .map(|genome| Arc::new((**genome).clone()))
                    .collect()
            };

            // Next generation: elites survive, the rest are children. The
            // pre-fast-path loop deep-cloned the elites into the next
            // population; the fast path clones `Arc`s.
            let mut next: Vec<Arc<Genome>> = if memoize {
                elites.clone()
            } else {
                elites
                    .iter()
                    .map(|genome| Arc::new((**genome).clone()))
                    .collect()
            };
            while next.len() < self.config.population_size {
                let parent_a = &elites[rng.random_range(0..elites.len())];
                let mut child =
                    if rng.random::<f64>() < self.config.crossover_rate && elites.len() > 1 {
                        let parent_b = &elites[rng.random_range(0..elites.len())];
                        crossover(parent_a, parent_b, &mut rng)
                    } else {
                        (**parent_a).clone()
                    };
                mutate(&mut child, &self.config.mutation, &mut rng);
                next.push(Arc::new(child));
            }
            population = next;
        }

        Ok(SearchRun::Complete(SearchOutcome {
            memo_hits: archive.len() - evaluations_performed,
            archive,
            generations_run,
            early_stopped,
            partial,
            evaluations_performed,
            warm_start_seeds,
        }))
    }

    /// Whether the anytime boundary should stop the loop: the cancel
    /// token fired or the wall-clock deadline passed. Free of side
    /// effects — with neither configured this is two `None` checks.
    fn interrupted(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || self
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// Whether a preemption pause was requested (free of side effects;
    /// a single `None` check when no token is attached).
    fn pause_requested(&self) -> bool {
        self.pause.as_ref().is_some_and(PauseToken::is_paused)
    }

    /// Evaluates one generation through the within-run memo: previously
    /// seen genomes (and within-generation duplicates) replay their
    /// memoised evaluation, only first occurrences reach the evaluator —
    /// in population order, through an ordered parallel map, so the
    /// outcome is independent of the thread count.
    #[allow(clippy::too_many_arguments)]
    fn evaluate_generation_memoized(
        &self,
        candidates: &[Arc<Genome>],
        generation: usize,
        pool: Option<&rayon::ThreadPool>,
        memo: &mut HashMap<u64, MemoEntry>,
        known: &mut HashMap<usize, (Arc<Genome>, u64)>,
        evaluations_performed: &mut usize,
        memo_hits: &mut usize,
    ) -> Result<Vec<EvaluatedConfig>, OptimError> {
        let fingerprints: Vec<u64> = candidates
            .iter()
            .map(|genome| {
                let pointer = Arc::as_ptr(genome) as usize;
                match known.get(&pointer) {
                    Some((_, fingerprint)) => *fingerprint,
                    None => {
                        let fingerprint = genome.fingerprint();
                        known.insert(pointer, (Arc::clone(genome), fingerprint));
                        fingerprint
                    }
                }
            })
            .collect();

        // Candidate indices that need a fresh evaluation: not memoised,
        // and not a duplicate of an earlier candidate in this generation.
        // (A fingerprint match is only a hit when the genomes are equal —
        // collisions are always evaluated and never overwrite the memo.
        // The pointer check short-circuits the comparison for elites,
        // which re-enter as clones of the very allocation the memo holds.)
        let mut fresh: Vec<usize> = Vec::new();
        let mut first_occurrence: HashMap<u64, usize> = HashMap::new();
        for (index, (genome, fingerprint)) in candidates.iter().zip(&fingerprints).enumerate() {
            if let Some(entry) = memo.get(fingerprint) {
                if !Arc::ptr_eq(&entry.genome, genome) && *entry.genome != **genome {
                    fresh.push(index);
                }
                continue;
            }
            match first_occurrence.get(fingerprint) {
                Some(&first) if *candidates[first] == **genome => {}
                Some(_) => fresh.push(index),
                None => {
                    first_occurrence.insert(*fingerprint, index);
                    fresh.push(index);
                }
            }
        }

        let results = self.evaluate_indices(candidates, &fresh, pool)?;

        let mut fresh_results: Vec<Option<EvaluatedPair>> =
            (0..candidates.len()).map(|_| None).collect();
        for (&index, (config, result)) in fresh.iter().zip(results) {
            memo.entry(fingerprints[index])
                .or_insert_with(|| MemoEntry {
                    genome: Arc::clone(&candidates[index]),
                    config: Arc::clone(&config),
                    result: Arc::clone(&result),
                });
            fresh_results[index] = Some((config, result));
        }

        let mut evaluated = Vec::with_capacity(candidates.len());
        for (index, (genome, fingerprint)) in candidates.iter().zip(&fingerprints).enumerate() {
            let (config, result) = match fresh_results[index].take() {
                Some(pair) => {
                    *evaluations_performed += 1;
                    pair
                }
                None => {
                    let entry = memo
                        .get(fingerprint)
                        .expect("memo holds every non-fresh candidate");
                    debug_assert_eq!(*entry.genome, **genome, "memo hit on unequal genome");
                    *memo_hits += 1;
                    (Arc::clone(&entry.config), Arc::clone(&entry.result))
                }
            };
            evaluated.push(EvaluatedConfig {
                genome: Arc::clone(genome),
                config,
                result,
                generation,
            });
        }
        Ok(evaluated)
    }

    /// Evaluates one generation the pre-fast-path way: every candidate
    /// through [`ConfigEvaluator::evaluate_genome`] (decode + full
    /// transform), no memo, and an independent genome copy per evaluated
    /// record — the allocation behaviour of the pre-fast-path loop.
    fn evaluate_generation_reference(
        &self,
        candidates: &[Arc<Genome>],
        generation: usize,
        pool: Option<&rayon::ThreadPool>,
    ) -> Result<Vec<EvaluatedConfig>, OptimError> {
        let evaluate = |genome: &Arc<Genome>| -> Result<EvaluatedConfig, OptimError> {
            let (config, result) = self.evaluator.evaluate_genome_reference(genome)?;
            Ok(EvaluatedConfig {
                genome: Arc::new((**genome).clone()),
                config,
                result,
                generation,
            })
        };
        let (Some(pool), true) = (pool, candidates.len() >= 4) else {
            return candidates.iter().map(evaluate).collect();
        };
        pool.install(|| {
            candidates
                .par_iter()
                .map(evaluate)
                .collect::<Result<Vec<_>, OptimError>>()
        })
    }

    /// Evaluates `indices` into `candidates` through the fast evaluation
    /// hook, optionally across threads. The parallel path maps through a
    /// rayon-style ordered parallel iterator: results come back in index
    /// order and the evaluation hook is pure, so the outcome is
    /// bit-identical to the sequential path for any thread count.
    fn evaluate_indices(
        &self,
        candidates: &[Arc<Genome>],
        indices: &[usize],
        pool: Option<&rayon::ThreadPool>,
    ) -> Result<Vec<EvaluatedPair>, OptimError> {
        let (Some(pool), true) = (pool, indices.len() >= 4) else {
            return indices
                .iter()
                .map(|&i| self.evaluator.evaluate_genome_fast(&candidates[i]))
                .collect();
        };
        pool.install(|| {
            indices
                .par_iter()
                .map(|&i| self.evaluator.evaluate_genome_fast(&candidates[i]))
                .collect::<Result<Vec<_>, OptimError>>()
        })
    }
}

/// The objective vector the search selects on: average energy, average
/// latency, accuracy drop.
fn objective_point(candidate: &EvaluatedConfig) -> [f64; 3] {
    [
        candidate.result.average_energy_mj,
        candidate.result.average_latency_ms,
        candidate.result.accuracy_drop,
    ]
}

/// Feasibility count and non-dominated-front size of one generation, in
/// the same objective space selection ranks on. Only consulted when elite
/// selection did not already produce the partition (a stopping
/// generation, or rank-based selection); the scan is quadratic but
/// allocation-free, and a generation holds at most `population_size`
/// points.
fn generation_front_stats(evaluated: &[EvaluatedConfig]) -> (usize, usize) {
    let mut feasible = 0usize;
    let mut front_size = 0usize;
    for (index, candidate) in evaluated.iter().enumerate() {
        if !candidate.result.feasible {
            continue;
        }
        feasible += 1;
        let point = objective_point(candidate);
        let dominated = evaluated.iter().enumerate().any(|(other, c)| {
            other != index && c.result.feasible && dominates(&objective_point(c), &point)
        });
        if !dominated {
            front_size += 1;
        }
    }
    (feasible, front_size)
}

/// Elite selection over one evaluated generation. Shared by the memoized
/// and reference loops; all comparators are `total_cmp`-based, so the
/// ordering is deterministic even if a NaN objective ever slips in.
///
/// Alongside the elites, returns the generation's `(feasible, front_size)`
/// pair when the strategy computed the dominance partition anyway
/// (Pareto crowding), so the telemetry stream can report it without a
/// second pass; rank-based selection returns `None`.
fn select_elites(
    evaluated: &[EvaluatedConfig],
    strategy: SelectionStrategy,
    elite_count: usize,
) -> (Vec<Arc<Genome>>, Option<(usize, usize)>) {
    match strategy {
        SelectionStrategy::ObjectiveElitism => {
            // Feasible candidates first, then by the scalar objective.
            let mut ranked: Vec<&EvaluatedConfig> = evaluated.iter().collect();
            ranked.sort_by(|a, b| {
                (!a.result.feasible)
                    .cmp(&!b.result.feasible)
                    .then_with(|| a.result.objective.total_cmp(&b.result.objective))
            });
            let elites = ranked
                .iter()
                .take(elite_count)
                .map(|c| Arc::clone(&c.genome))
                .collect();
            (elites, None)
        }
        SelectionStrategy::ParetoCrowding => select_by_pareto_crowding(evaluated, elite_count),
    }
}

/// NSGA-II-style elite selection over (average energy, average latency,
/// accuracy drop): walk the non-dominated fronts of the feasible candidates,
/// breaking ties inside the last partially-taken front by crowding distance.
/// Infeasible candidates are only used to pad out the elite set when there
/// are not enough feasible ones. Objectives live in flat `[f64; 3]` rows —
/// no per-generation `Vec<Vec<f64>>` — and the fronts come from the
/// dominance-count fast sort.
fn select_by_pareto_crowding(
    evaluated: &[EvaluatedConfig],
    elite_count: usize,
) -> (Vec<Arc<Genome>>, Option<(usize, usize)>) {
    let feasible: Vec<&EvaluatedConfig> = evaluated.iter().filter(|c| c.result.feasible).collect();
    let points: Vec<[f64; 3]> = feasible.iter().map(|c| objective_point(c)).collect();
    let fronts = non_dominated_fronts(&points);
    let front_stats = Some((feasible.len(), fronts.first().map_or(0, Vec::len)));
    let mut elites: Vec<Arc<Genome>> = Vec::with_capacity(elite_count);
    for front in fronts {
        if elites.len() >= elite_count {
            break;
        }
        let remaining = elite_count - elites.len();
        if front.len() <= remaining {
            elites.extend(front.iter().map(|&i| Arc::clone(&feasible[i].genome)));
        } else {
            // Partial front: prefer the most isolated candidates.
            let front_points: Vec<[f64; 3]> = front.iter().map(|&i| points[i]).collect();
            let distances = crowding_distance(&front_points);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| distances[b].total_cmp(&distances[a]));
            elites.extend(
                order
                    .into_iter()
                    .take(remaining)
                    .map(|k| Arc::clone(&feasible[front[k]].genome)),
            );
        }
    }
    // Pad with the least-violating infeasible candidates if necessary.
    if elites.len() < elite_count {
        let mut infeasible: Vec<&EvaluatedConfig> =
            evaluated.iter().filter(|c| !c.result.feasible).collect();
        infeasible.sort_by_key(|c| c.result.violations.len());
        elites.extend(
            infeasible
                .into_iter()
                .take(elite_count - elites.len())
                .map(|c| Arc::clone(&c.genome)),
        );
    }
    if elites.is_empty() {
        // Degenerate case: keep whatever was evaluated first.
        elites.extend(
            evaluated
                .iter()
                .take(elite_count)
                .map(|c| Arc::clone(&c.genome)),
        );
    }
    (elites, front_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_core::{Constraints, EvaluatorBuilder};
    use mnc_mpsoc::{CuId, Platform};
    use mnc_nn::models::{visformer_tiny, ModelPreset};
    use mnc_telemetry::GenerationBuffer;
    use proptest::prelude::*;

    fn evaluator(constraints: Constraints) -> Evaluator {
        EvaluatorBuilder::new(
            visformer_tiny(ModelPreset::cifar100()),
            Platform::dual_test(),
        )
        .validation_samples(1000)
        .constraints(constraints)
        .build()
        .unwrap()
    }

    #[test]
    fn config_validation_catches_bad_parameters() {
        assert!(SearchConfig::paper().validate().is_ok());
        assert!(SearchConfig::fast().validate().is_ok());
        assert!(SearchConfig {
            generations: 0,
            ..SearchConfig::fast()
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            population_size: 1,
            ..SearchConfig::fast()
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            elite_fraction: 0.0,
            ..SearchConfig::fast()
        }
        .validate()
        .is_err());
        assert!(SearchConfig {
            crossover_rate: 1.5,
            ..SearchConfig::fast()
        }
        .validate()
        .is_err());
        assert_eq!(SearchConfig::default(), SearchConfig::paper());
        assert!(!SearchConfig::default().warm_start);
    }

    #[test]
    fn search_produces_an_archive_and_a_pareto_front() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 4,
            population_size: 10,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        assert_eq!(outcome.evaluations(), 40);
        assert_eq!(outcome.generations_run(), 4);
        assert!(!outcome.feasible().is_empty());
        let front = outcome.pareto_front();
        assert!(!front.is_empty());
        assert!(outcome.best_by_objective().is_some());
        assert!(outcome.energy_oriented(0.05).is_some());
        assert!(outcome.latency_oriented(0.05).is_some());
        // The elites of generations 1..3 replay from the memo.
        assert!(outcome.memo_hits() > 0);
        assert_eq!(
            outcome.evaluations_performed() + outcome.memo_hits(),
            outcome.evaluations()
        );
        assert_eq!(outcome.warm_start_seeds(), 0);
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 3,
            population_size: 8,
            ..SearchConfig::fast()
        };
        let a = MappingSearch::new(&evaluator, config).run().unwrap();
        let b = MappingSearch::new(&evaluator, config).run().unwrap();
        assert_eq!(a.archive().len(), b.archive().len());
        for (x, y) in a.archive().iter().zip(b.archive()) {
            assert_eq!(x.genome, y.genome);
        }
    }

    #[test]
    fn parallel_and_serial_evaluation_agree() {
        let evaluator = evaluator(Constraints::default());
        let serial = SearchConfig {
            generations: 2,
            population_size: 8,
            parallel: false,
            ..SearchConfig::fast()
        };
        let parallel = SearchConfig {
            parallel: true,
            ..serial
        };
        let a = MappingSearch::new(&evaluator, serial).run().unwrap();
        let b = MappingSearch::new(&evaluator, parallel).run().unwrap();
        for (x, y) in a.archive().iter().zip(b.archive()) {
            assert_eq!(x.genome, y.genome);
            assert_eq!(x.result, y.result);
        }
    }

    #[test]
    fn search_improves_over_the_initial_generation() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 8,
            population_size: 16,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        let first_gen_best = outcome
            .archive()
            .iter()
            .filter(|c| c.generation == 0 && c.result.feasible)
            .map(|c| c.result.objective)
            .fold(f64::INFINITY, f64::min);
        let overall_best = outcome.best_by_objective().unwrap().result.objective;
        assert!(overall_best <= first_gen_best);
    }

    #[test]
    fn stall_window_does_not_trigger_before_a_feasible_candidate_exists() {
        // Every candidate is infeasible (no feature-map reuse allowed but
        // genomes always forward something), so the best objective never
        // becomes finite. The stall window must not fire while the search
        // is still hunting for the feasible region.
        let evaluator = evaluator(Constraints::with_fmap_reuse_limit(0.0));
        let config = SearchConfig {
            generations: 4,
            population_size: 8,
            stall_generations: Some(1),
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        assert_eq!(outcome.generations_run(), 4);
        assert!(!outcome.early_stopped());
        assert!(outcome.feasible().is_empty());
    }

    #[test]
    fn fmap_constraint_limits_the_selected_configurations() {
        let evaluator = evaluator(Constraints::with_fmap_reuse_limit(0.5));
        let config = SearchConfig {
            generations: 6,
            population_size: 16,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        for candidate in outcome.feasible() {
            assert!(candidate.result.fmap_reuse <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn pareto_crowding_selection_runs_and_yields_a_broader_front() {
        let evaluator = evaluator(Constraints::default());
        let scalar = SearchConfig {
            generations: 6,
            population_size: 16,
            selection: SelectionStrategy::ObjectiveElitism,
            ..SearchConfig::fast()
        };
        let nsga = SearchConfig {
            selection: SelectionStrategy::ParetoCrowding,
            ..scalar
        };
        let scalar_outcome = MappingSearch::new(&evaluator, scalar).run().unwrap();
        let nsga_outcome = MappingSearch::new(&evaluator, nsga).run().unwrap();
        assert_eq!(nsga_outcome.evaluations(), scalar_outcome.evaluations());
        assert!(!nsga_outcome.pareto_front().is_empty());
        // The multi-objective selection keeps at least as diverse a front
        // (it never collapses onto a single scalar optimum).
        assert!(!nsga_outcome.pareto_front().is_empty());
        assert!(nsga_outcome.best_by_objective().is_some());
    }

    #[test]
    fn search_finds_configurations_dominating_single_cu_baselines() {
        // The headline claim of the paper, in miniature: there exists a
        // found configuration that is simultaneously more energy-efficient
        // than the GPU-only mapping and faster than the DLA-only mapping.
        let evaluator = evaluator(Constraints::default());
        let gpu = evaluator.baseline_single_cu(CuId(0)).unwrap();
        let dla = evaluator.baseline_single_cu(CuId(1)).unwrap();
        let config = SearchConfig {
            generations: 10,
            population_size: 20,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config).run().unwrap();
        let dominating = outcome.feasible().into_iter().any(|c| {
            c.result.average_energy_mj < gpu.energy_mj
                && c.result.average_latency_ms < dla.latency_ms
        });
        assert!(dominating, "no configuration beats both baselines");
    }

    /// Exhaustive bit-identity check of two outcomes.
    fn assert_outcomes_bit_identical(fast: &SearchOutcome, reference: &SearchOutcome) {
        assert_eq!(fast.archive().len(), reference.archive().len());
        for (a, b) in fast.archive().iter().zip(reference.archive()) {
            assert_eq!(a.genome, b.genome);
            assert_eq!(a.config, b.config);
            assert_eq!(a.generation, b.generation);
            assert_eq!(a.result, b.result);
            assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
            assert_eq!(
                a.result.average_energy_mj.to_bits(),
                b.result.average_energy_mj.to_bits()
            );
            assert_eq!(
                a.result.average_latency_ms.to_bits(),
                b.result.average_latency_ms.to_bits()
            );
        }
        assert_eq!(fast.generations_run(), reference.generations_run());
        assert_eq!(fast.early_stopped(), reference.early_stopped());
        assert_eq!(fast.partial(), reference.partial());
        assert_eq!(fast.pareto_front(), reference.pareto_front());
        assert_eq!(fast.best_by_objective(), reference.best_by_objective());
    }

    #[test]
    fn memoized_run_never_reevaluates_a_genome() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        /// Counts evaluator calls and remembers every genome fingerprint
        /// it ever evaluated — a repeat proves the memo leaked.
        struct CountingEvaluator {
            inner: Evaluator,
            calls: AtomicUsize,
            seen: std::sync::Mutex<std::collections::HashSet<u64>>,
            repeats: AtomicUsize,
        }
        impl ConfigEvaluator for CountingEvaluator {
            fn network(&self) -> &mnc_nn::Network {
                ConfigEvaluator::network(&self.inner)
            }
            fn platform(&self) -> &Platform {
                ConfigEvaluator::platform(&self.inner)
            }
            fn evaluate_genome(
                &self,
                genome: &Genome,
            ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                if !self.seen.lock().unwrap().insert(genome.fingerprint()) {
                    self.repeats.fetch_add(1, Ordering::Relaxed);
                }
                self.inner.evaluate_genome(genome)
            }
        }

        let counting = CountingEvaluator {
            inner: evaluator(Constraints::default()),
            calls: AtomicUsize::new(0),
            seen: std::sync::Mutex::new(std::collections::HashSet::new()),
            repeats: AtomicUsize::new(0),
        };
        let config = SearchConfig {
            generations: 6,
            population_size: 12,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&counting, config).run().unwrap();
        assert_eq!(
            counting.calls.load(Ordering::Relaxed),
            outcome.evaluations_performed()
        );
        assert_eq!(counting.repeats.load(Ordering::Relaxed), 0);
        assert!(outcome.memo_hits() > 0, "elite replays should hit the memo");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The tentpole property: the memoized fast path is bit-identical
        /// to the pre-fast-path reference loop for random seeds × budgets
        /// × thread counts, with and without parallel evaluation.
        #[test]
        fn prop_memoized_run_matches_reference(
            seed in 0u64..1_000_000,
            generations in 2usize..5,
            population in 6usize..14,
            threads in 1usize..5,
        ) {
            let evaluator = evaluator(Constraints::default());
            let base = SearchConfig {
                generations,
                population_size: population,
                seed,
                ..SearchConfig::fast()
            };
            let parallel = SearchConfig {
                parallel: true,
                threads: Some(threads),
                ..base
            };
            let reference = MappingSearch::new(&evaluator, base).run_reference().unwrap();
            let fast_serial = MappingSearch::new(&evaluator, base).run().unwrap();
            let fast_parallel = MappingSearch::new(&evaluator, parallel).run().unwrap();
            assert_outcomes_bit_identical(&fast_serial, &reference);
            assert_outcomes_bit_identical(&fast_parallel, &reference);

            // Telemetry observes without perturbing: the same run with a
            // sink attached is bit-identical, and its generation stream
            // adds up to the outcome's totals.
            let buffer = GenerationBuffer::new();
            let fast_observed = MappingSearch::new(&evaluator, base)
                .with_telemetry(&buffer)
                .run()
                .unwrap();
            assert_outcomes_bit_identical(&fast_observed, &reference);
            let events = buffer.take();
            prop_assert_eq!(events.len(), fast_observed.generations_run());
            prop_assert_eq!(
                events.iter().map(|e| e.scheduled).sum::<usize>(),
                fast_observed.evaluations()
            );
            prop_assert_eq!(
                events.iter().map(|e| e.fresh_evaluations).sum::<usize>(),
                fast_observed.evaluations_performed()
            );
            prop_assert_eq!(
                events.iter().map(|e| e.memo_hits).sum::<usize>(),
                fast_observed.memo_hits()
            );
            prop_assert_eq!(
                events.last().map(|e| e.evaluations_total),
                Some(fast_observed.evaluations())
            );
            prop_assert_eq!(
                fast_serial.evaluations_performed() + fast_serial.memo_hits(),
                fast_serial.evaluations()
            );
            prop_assert_eq!(
                fast_serial.evaluations_performed(),
                fast_parallel.evaluations_performed()
            );
            prop_assert!(fast_serial.evaluations_performed() <= reference.evaluations());
        }
    }

    #[test]
    fn memoized_run_matches_reference_with_pareto_crowding_and_budget() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 5,
            population_size: 12,
            selection: SelectionStrategy::ParetoCrowding,
            max_evaluations: Some(50),
            stall_generations: Some(2),
            ..SearchConfig::fast()
        };
        let fast = MappingSearch::new(&evaluator, config).run().unwrap();
        let reference = MappingSearch::new(&evaluator, config)
            .run_reference()
            .unwrap();
        assert_outcomes_bit_identical(&fast, &reference);
        // Whichever fires first — the trimmed budget or the stall window —
        // both paths agree on it.
        assert!(fast.evaluations() <= 50);
        assert!(fast.early_stopped());
    }

    #[test]
    fn warm_start_seeds_join_the_initial_population() {
        let evaluator = evaluator(Constraints::default());
        let cold_config = SearchConfig {
            generations: 4,
            population_size: 10,
            ..SearchConfig::fast()
        };
        let cold = MappingSearch::new(&evaluator, cold_config).run().unwrap();
        let seeds: Vec<Arc<Genome>> = cold
            .pareto_front()
            .into_iter()
            .map(|c| Arc::clone(&c.genome))
            .collect();
        assert!(!seeds.is_empty());

        let warm_config = SearchConfig {
            seed: 99,
            warm_start: true,
            ..cold_config
        };
        let warm = MappingSearch::new(&evaluator, warm_config)
            .with_seeds(seeds.clone())
            .run()
            .unwrap();
        assert!(warm.warm_start_seeds() > 0);
        assert!(warm.warm_start_seeds() <= seeds.len());
        // The (non-duplicate) seeds are scheduled in generation 0, right
        // after the balanced default. (The balanced genome is often on the
        // cold front itself, in which case it is deduplicated away rather
        // than scheduled twice.)
        let seed_fingerprints: Vec<u64> = seeds.iter().map(|g| g.fingerprint()).collect();
        for entry in warm.archive().iter().skip(1).take(warm.warm_start_seeds()) {
            assert!(seed_fingerprints.contains(&entry.genome.fingerprint()));
        }
        // Warm start can only improve on the seeds it was given: the best
        // seed objective is an upper bound on the warm best.
        let best_seed_objective = cold
            .pareto_front()
            .iter()
            .filter(|c| c.result.feasible)
            .map(|c| c.result.objective)
            .fold(f64::INFINITY, f64::min);
        let warm_best = warm.best_by_objective().unwrap().result.objective;
        assert!(warm_best <= best_seed_objective);

        // Without the flag, the same seeds are ignored and the outcome is
        // bit-identical to a seedless run.
        let off_config = SearchConfig {
            warm_start: false,
            ..warm_config
        };
        let ignored = MappingSearch::new(&evaluator, off_config)
            .with_seeds(seeds)
            .run()
            .unwrap();
        let plain = MappingSearch::new(&evaluator, off_config).run().unwrap();
        assert_outcomes_bit_identical(&ignored, &plain);
        assert_eq!(ignored.warm_start_seeds(), 0);
    }

    #[test]
    fn expired_deadline_still_runs_one_generation_and_marks_partial() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 6,
            population_size: 10,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config)
            .with_deadline(Instant::now())
            .run()
            .unwrap();
        assert!(outcome.partial());
        assert!(outcome.early_stopped());
        assert_eq!(outcome.generations_run(), 1);
        assert_eq!(outcome.evaluations(), 10);
        assert!(!outcome.pareto_front().is_empty());
        assert!(outcome.summary().partial);
    }

    #[test]
    fn pre_cancelled_token_stops_after_the_first_generation() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 5,
            population_size: 8,
            ..SearchConfig::fast()
        };
        let token = CancelToken::new();
        token.cancel();
        assert!(token.is_cancelled());
        let outcome = MappingSearch::new(&evaluator, config)
            .with_cancel_token(token)
            .run()
            .unwrap();
        assert!(outcome.partial());
        assert_eq!(outcome.generations_run(), 1);
    }

    /// Cancels the shared token once a chosen generation has been
    /// reported — a deterministic way to interrupt the search mid-run.
    struct CancelAfter {
        token: CancelToken,
        after_generation: usize,
    }
    impl TelemetrySink for CancelAfter {
        fn on_generation(&self, event: GenerationEvent) {
            if event.generation >= self.after_generation {
                self.token.cancel();
            }
        }
    }

    #[test]
    fn partial_outcome_is_a_bit_identical_prefix_with_a_consistent_front() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 6,
            population_size: 10,
            ..SearchConfig::fast()
        };
        let full = MappingSearch::new(&evaluator, config).run().unwrap();

        let token = CancelToken::new();
        let sink = CancelAfter {
            token: token.clone(),
            after_generation: 1,
        };
        let interrupted = MappingSearch::new(&evaluator, config)
            .with_cancel_token(token)
            .with_telemetry(&sink)
            .run()
            .unwrap();
        assert!(interrupted.partial());
        assert!(interrupted.early_stopped());
        assert_eq!(interrupted.generations_run(), 2);

        // The anytime answer is the exact prefix of the full run: the
        // interruption never rewrites history, it only stops extending it.
        let prefix = &full.archive()[..interrupted.archive().len()];
        for (a, b) in interrupted.archive().iter().zip(prefix) {
            assert_eq!(a.genome, b.genome);
            assert_eq!(a.result, b.result);
            assert_eq!(a.generation, b.generation);
        }

        // And its front is subset-consistent archive state: every
        // returned config feasible and mutually non-dominated.
        let front = interrupted.pareto_front();
        assert!(!front.is_empty());
        for candidate in &front {
            assert!(candidate.result.feasible);
        }
        for a in &front {
            for b in &front {
                if !std::ptr::eq(*a, *b) {
                    let pa = [a.result.average_energy_mj, a.result.average_latency_ms];
                    let pb = [b.result.average_energy_mj, b.result.average_latency_ms];
                    assert!(!dominates(&pa, &pb), "partial front holds dominated points");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Any deadline the full search beats — here one far in the
        /// future — leaves the outcome bit-identical to the undeadlined
        /// run, `partial` included; so does an uncancelled token.
        #[test]
        fn prop_generous_deadline_is_bit_identical(
            seed in 0u64..1_000_000,
            generations in 2usize..5,
            population in 6usize..12,
        ) {
            let evaluator = evaluator(Constraints::default());
            let config = SearchConfig {
                generations,
                population_size: population,
                seed,
                ..SearchConfig::fast()
            };
            let plain = MappingSearch::new(&evaluator, config).run().unwrap();
            let deadlined = MappingSearch::new(&evaluator, config)
                .with_deadline(Instant::now() + std::time::Duration::from_secs(3600))
                .with_cancel_token(CancelToken::new())
                .run()
                .unwrap();
            prop_assert!(!deadlined.partial());
            assert_outcomes_bit_identical(&deadlined, &plain);
        }
    }

    /// Pauses the shared token once a chosen generation has been
    /// reported — the deterministic mid-run preemption used by the
    /// pause/resume tests, mirroring [`CancelAfter`].
    struct PauseAfter {
        token: PauseToken,
        after_generation: usize,
    }
    impl TelemetrySink for PauseAfter {
        fn on_generation(&self, event: GenerationEvent) {
            if event.generation >= self.after_generation {
                self.token.pause();
            }
        }
    }

    /// Drives a resumable search to completion, pausing at every
    /// generation in `pause_at` (ascending), and returns the final
    /// outcome plus the number of pauses actually taken.
    fn run_with_pauses(
        evaluator: &Evaluator,
        config: SearchConfig,
        pause_at: &[usize],
    ) -> (SearchOutcome, usize) {
        let token = PauseToken::new();
        let sink = PauseAfter {
            token: token.clone(),
            after_generation: *pause_at.first().unwrap_or(&usize::MAX),
        };
        let search = MappingSearch::new(evaluator, config)
            .with_pause_token(token.clone())
            .with_telemetry(&sink);
        let mut run = search.run_resumable().unwrap();
        let mut pauses = 0;
        let mut next_pause = 1;
        loop {
            match run {
                SearchRun::Complete(outcome) => return (outcome, pauses),
                SearchRun::Paused(checkpoint) => {
                    pauses += 1;
                    token.clear();
                    let sink = PauseAfter {
                        token: token.clone(),
                        after_generation: *pause_at.get(next_pause).unwrap_or(&usize::MAX),
                    };
                    next_pause += 1;
                    run = MappingSearch::new(evaluator, config)
                        .with_pause_token(token.clone())
                        .with_telemetry(&sink)
                        .resume(checkpoint)
                        .unwrap();
                }
            }
        }
    }

    #[test]
    fn unpaused_resumable_run_is_bit_identical_to_run() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 4,
            population_size: 10,
            ..SearchConfig::fast()
        };
        let plain = MappingSearch::new(&evaluator, config).run().unwrap();
        let resumable = match MappingSearch::new(&evaluator, config)
            .with_pause_token(PauseToken::new())
            .run_resumable()
            .unwrap()
        {
            SearchRun::Complete(outcome) => outcome,
            SearchRun::Paused(_) => panic!("unpaused token must not pause"),
        };
        assert_outcomes_bit_identical(&resumable, &plain);
    }

    #[test]
    fn run_ignores_pause_requests() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 3,
            population_size: 8,
            ..SearchConfig::fast()
        };
        let token = PauseToken::new();
        token.pause();
        let paused_run = MappingSearch::new(&evaluator, config)
            .with_pause_token(token)
            .run()
            .unwrap();
        let plain = MappingSearch::new(&evaluator, config).run().unwrap();
        assert_outcomes_bit_identical(&paused_run, &plain);
    }

    #[test]
    fn checkpoint_from_a_different_config_is_rejected() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 4,
            population_size: 8,
            ..SearchConfig::fast()
        };
        let token = PauseToken::new();
        let sink = PauseAfter {
            token: token.clone(),
            after_generation: 0,
        };
        let SearchRun::Paused(checkpoint) = MappingSearch::new(&evaluator, config)
            .with_pause_token(token)
            .with_telemetry(&sink)
            .run_resumable()
            .unwrap()
        else {
            panic!("pause after generation 0 must pause");
        };
        assert_eq!(checkpoint.generations_completed(), 1);
        assert!(checkpoint.evaluations_performed() > 0);
        let other = SearchConfig {
            seed: config.seed + 1,
            ..config
        };
        assert!(matches!(
            MappingSearch::new(&evaluator, other).resume(checkpoint),
            Err(OptimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn cancel_wins_over_pause_at_the_boundary() {
        let evaluator = evaluator(Constraints::default());
        let config = SearchConfig {
            generations: 5,
            population_size: 8,
            ..SearchConfig::fast()
        };
        let cancel = CancelToken::new();
        let pause = PauseToken::new();
        cancel.cancel();
        pause.pause();
        let run = MappingSearch::new(&evaluator, config)
            .with_cancel_token(cancel)
            .with_pause_token(pause)
            .run_resumable()
            .unwrap();
        let SearchRun::Complete(outcome) = run else {
            panic!("a cancelled search answers partial, it does not pause");
        };
        assert!(outcome.partial());
        assert_eq!(outcome.generations_run(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// The preemption tentpole property: a search paused at random
        /// generation boundaries (once or twice) and resumed — across
        /// thread counts, with a second pause on a different pool size —
        /// finishes bit-identically to the uninterrupted run.
        #[test]
        fn prop_paused_and_resumed_search_is_bit_identical(
            seed in 0u64..1_000_000,
            generations in 3usize..6,
            population in 6usize..12,
            first_pause in 0usize..3,
            second_pause_gap in 0usize..2,
            threads in 1usize..5,
        ) {
            let evaluator = evaluator(Constraints::default());
            let config = SearchConfig {
                generations,
                population_size: population,
                seed,
                ..SearchConfig::fast()
            };
            let plain = MappingSearch::new(&evaluator, config).run().unwrap();

            let (once, _) = run_with_pauses(&evaluator, config, &[first_pause]);
            assert_outcomes_bit_identical(&once, &plain);

            let (twice, _) = run_with_pauses(
                &evaluator,
                config,
                &[first_pause, first_pause + 1 + second_pause_gap],
            );
            assert_outcomes_bit_identical(&twice, &plain);

            // Pause on one thread count, resume on another: checkpoints
            // are pool-independent like everything else in the loop, so
            // a parallel pause resumed serially still matches the plain
            // serial run bit for bit.
            let parallel = SearchConfig {
                parallel: true,
                threads: Some(threads),
                ..config
            };
            let token = PauseToken::new();
            let sink = PauseAfter { token: token.clone(), after_generation: first_pause };
            let run = MappingSearch::new(&evaluator, parallel)
                .with_pause_token(token.clone())
                .with_telemetry(&sink)
                .run_resumable()
                .unwrap();
            let crossed = match run {
                SearchRun::Complete(outcome) => outcome,
                SearchRun::Paused(checkpoint) => {
                    token.clear();
                    match MappingSearch::new(&evaluator, config)
                        .resume(checkpoint)
                        .unwrap()
                    {
                        SearchRun::Complete(outcome) => outcome,
                        SearchRun::Paused(_) => panic!("cleared token must not re-pause"),
                    }
                }
            };
            assert_outcomes_bit_identical(&crossed, &plain);
        }
    }

    #[test]
    fn incompatible_or_duplicate_seeds_are_skipped() {
        let evaluator = evaluator(Constraints::default());
        let network = ConfigEvaluator::network(&evaluator);
        let platform = ConfigEvaluator::platform(&evaluator);
        let mut rng = StdRng::seed_from_u64(3);
        let good = Arc::new(Genome::random(network, platform, &mut rng));
        // A genome built for a 4-CU platform cannot seed a 2-CU search.
        let wrong_platform = Arc::new(Genome::balanced(
            &mnc_nn::models::vgg11(ModelPreset::cifar100()),
            &Platform::agx_xavier(),
        ));
        // The balanced genome is already in the population: duplicate.
        let balanced = Arc::new(Genome::balanced(network, platform));
        let config = SearchConfig {
            generations: 2,
            population_size: 8,
            warm_start: true,
            ..SearchConfig::fast()
        };
        let outcome = MappingSearch::new(&evaluator, config)
            .with_seeds(vec![
                wrong_platform,
                balanced,
                Arc::clone(&good),
                good, // exact duplicate of the previous seed
            ])
            .run()
            .unwrap();
        assert_eq!(outcome.warm_start_seeds(), 1);
    }
}
