//! Evolutionary mapping search for Map-and-Conquer (paper §V).
//!
//! The search explores the joint space of partitioning ratios `P`,
//! feature-reuse indicators `I`, stage→compute-unit mappings `M` and DVFS
//! levels `ϑ` with an elitist evolutionary algorithm: every generation, the
//! population is evaluated through the [`mnc_core::Evaluator`],
//! configurations violating the constraints are filtered, the survivors are
//! ranked by the objective of eq. 16 and the elites seed the next
//! generation through crossover and mutation. All evaluated configurations
//! are archived so the energy/latency scatter of Fig. 6 and the Pareto
//! fronts of Table II / Fig. 7 can be extracted afterwards.
//!
//! * [`genome`] — the genome encoding and its decoding into a
//!   [`mnc_core::MappingConfig`],
//! * [`operators`] — mutation and crossover,
//! * [`pareto`] — non-dominated sorting and Pareto-front extraction,
//! * [`search`] — the search loop, its configuration and its outcome.
//!
//! # Example
//!
//! ```
//! use mnc_core::EvaluatorBuilder;
//! use mnc_mpsoc::Platform;
//! use mnc_nn::models::{visformer_tiny, ModelPreset};
//! use mnc_optim::{MappingSearch, SearchConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let evaluator = EvaluatorBuilder::new(
//!     visformer_tiny(ModelPreset::cifar100()),
//!     Platform::dual_test(),
//! )
//! .validation_samples(500)
//! .build()?;
//! let config = SearchConfig { generations: 3, population_size: 8, ..SearchConfig::fast() };
//! let outcome = MappingSearch::new(&evaluator, config).run()?;
//! assert!(!outcome.pareto_front().is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod evaluate;
pub mod genome;
pub mod operators;
pub mod pareto;
pub mod search;

pub use error::OptimError;
pub use evaluate::ConfigEvaluator;
pub use genome::Genome;
pub use operators::MutationConfig;
pub use pareto::{
    crowding_distance, non_dominated_fronts, non_dominated_fronts_reference, pareto_front_indices,
    pareto_front_indices_reference,
};
pub use search::{
    CancelToken, EvaluatedConfig, MappingSearch, PauseToken, SearchCheckpoint, SearchConfig,
    SearchOutcome, SearchRun, SearchSummary, SelectionStrategy,
};
// Re-exported so search callers can attach sinks without naming the
// telemetry crate themselves.
pub use mnc_telemetry::{GenerationBuffer, GenerationEvent, TelemetrySink};
