//! Genome encoding of a mapping configuration.
//!
//! The evolutionary search works on a compact integer genome rather than on
//! [`mnc_core::MappingConfig`] directly:
//!
//! * **partition genes** — for every partitionable layer, `M` slot counts
//!   summing to 8 (the paper's eight split ratios per layer),
//! * **indicator genes** — one forwarding bit per layer per non-final stage,
//! * **mapping gene** — a permutation of the platform's compute units,
//! * **DVFS genes** — one quantised frequency index per stage, rescaled to
//!   the stage's compute-unit DVFS table when decoding.
//!
//! Every genome constructed by [`Genome::random`] or produced by the
//! mutation/crossover operators decodes into a *valid* configuration, so
//! the search never wastes evaluations on malformed candidates.

use crate::error::OptimError;
use mnc_core::{CoreError, DvfsAssignment, Mapping, MappingConfig};
use mnc_dynamic::{IndicatorMatrix, PartitionMatrix};
use mnc_mpsoc::{CuId, Platform};
use mnc_nn::{LayerId, Network};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Number of width slots per layer (split ratios are multiples of 1/8).
pub const PARTITION_SLOTS: u8 = 8;

/// Resolution of the quantised DVFS gene.
pub const DVFS_RESOLUTION: u8 = 16;

/// Borrowed views of the four gene groups (partition slots, indicator
/// bits, mapping permutation, DVFS levels), used by the operators.
pub(crate) type GenomeParts<'a> = (&'a [Vec<u8>], &'a [Vec<bool>], &'a [usize], &'a [u8]);

/// Mutable counterpart of [`GenomeParts`].
pub(crate) type GenomePartsMut<'a> = (
    &'a mut Vec<Vec<u8>>,
    &'a mut Vec<Vec<bool>>,
    &'a mut Vec<usize>,
    &'a mut Vec<u8>,
);

/// A candidate solution in genome form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Genome {
    num_stages: usize,
    /// Identifiers of the partitionable layers (decoding needs the order).
    partitionable: Vec<usize>,
    /// Slot allocation per partitionable layer; each row sums to
    /// [`PARTITION_SLOTS`].
    partition_slots: Vec<Vec<u8>>,
    /// Forwarding bit per layer (all layers) and per non-final stage.
    indicator: Vec<Vec<bool>>,
    /// Permutation of compute-unit indices, one per stage.
    mapping: Vec<usize>,
    /// Quantised DVFS level per stage, in `0..DVFS_RESOLUTION`.
    dvfs: Vec<u8>,
}

impl Genome {
    /// Samples a random, valid genome.
    pub fn random(network: &Network, platform: &Platform, rng: &mut StdRng) -> Self {
        let num_stages = platform.num_compute_units();
        let partitionable: Vec<usize> = network
            .partitionable_layers()
            .into_iter()
            .map(|id| id.0)
            .collect();
        let partition_slots = partitionable
            .iter()
            .map(|_| random_slots(num_stages, rng))
            .collect();
        // Sample a per-genome forwarding density so the initial population
        // already spans the whole feature-map-reuse range; this matters for
        // the constrained search strategies (reuse ≤ 75% / 50%).
        let density = 0.3 + 0.7 * rng.random::<f64>();
        let indicator = (0..network.num_layers())
            .map(|_| {
                (0..num_stages.saturating_sub(1))
                    .map(|_| rng.random::<f64>() < density)
                    .collect()
            })
            .collect();
        let mut mapping: Vec<usize> = (0..num_stages).collect();
        mapping.shuffle(rng);
        let dvfs = (0..num_stages)
            .map(|_| rng.random_range(0..DVFS_RESOLUTION))
            .collect();
        Genome {
            num_stages,
            partitionable,
            partition_slots,
            indicator,
            mapping,
            dvfs,
        }
    }

    /// The genome of the paper's default starting point: even split, full
    /// forwarding, identity mapping, maximum frequency.
    pub fn balanced(network: &Network, platform: &Platform) -> Self {
        let num_stages = platform.num_compute_units();
        let partitionable: Vec<usize> = network
            .partitionable_layers()
            .into_iter()
            .map(|id| id.0)
            .collect();
        let mut even = vec![PARTITION_SLOTS / num_stages as u8; num_stages];
        let mut remainder =
            PARTITION_SLOTS as usize - even.iter().map(|s| *s as usize).sum::<usize>();
        let mut i = 0;
        while remainder > 0 {
            even[i % num_stages] += 1;
            remainder -= 1;
            i += 1;
        }
        Genome {
            num_stages,
            partition_slots: partitionable.iter().map(|_| even.clone()).collect(),
            partitionable,
            indicator: vec![vec![true; num_stages.saturating_sub(1)]; network.num_layers()],
            mapping: (0..num_stages).collect(),
            dvfs: vec![DVFS_RESOLUTION - 1; num_stages],
        }
    }

    /// Number of stages encoded.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Number of network layers the genome encodes indicator rows for —
    /// the layer count of the network it was built against (used to
    /// screen warm-start seeds before decoding).
    pub fn num_layers(&self) -> usize {
        self.indicator.len()
    }

    /// Slot allocations per partitionable layer.
    pub fn partition_slots(&self) -> &[Vec<u8>] {
        &self.partition_slots
    }

    /// The mapping gene: compute-unit index per stage.
    pub fn mapping_genes(&self) -> &[usize] {
        &self.mapping
    }

    /// The quantised DVFS gene per stage, in `0..DVFS_RESOLUTION`.
    pub fn dvfs_genes(&self) -> &[u8] {
        &self.dvfs
    }

    /// A copy of this genome with replacement mapping/DVFS genes and
    /// untouched structure (partition + indicator) genes — the shape of
    /// candidate a mapping/DVFS local search explores around a fixed
    /// partitioning. The copy shares the original's
    /// [`Genome::structure_fingerprint`], so the runtime's transform cache
    /// serves every such variant from one dynamic transformation.
    ///
    /// # Errors
    ///
    /// Returns an error when `mapping` is not a permutation of the stage
    /// indices or a DVFS gene is out of range.
    pub fn remapped(&self, mapping: Vec<usize>, dvfs: Vec<u8>) -> Result<Genome, OptimError> {
        let candidate = Genome {
            mapping,
            dvfs,
            ..self.clone()
        };
        if !candidate.is_valid() {
            return Err(OptimError::InvalidConfig {
                reason: "remapped genome violates the mapping/DVFS invariants".to_string(),
            });
        }
        Ok(candidate)
    }

    /// Mutable access for the mutation operators (crate-internal).
    pub(crate) fn parts_mut(&mut self) -> GenomePartsMut<'_> {
        (
            &mut self.partition_slots,
            &mut self.indicator,
            &mut self.mapping,
            &mut self.dvfs,
        )
    }

    /// Read access to the gene groups (crate-internal, used by crossover).
    pub(crate) fn parts(&self) -> GenomeParts<'_> {
        (
            &self.partition_slots,
            &self.indicator,
            &self.mapping,
            &self.dvfs,
        )
    }

    /// Checks the genome invariants (slot sums, permutation, gene ranges).
    pub fn is_valid(&self) -> bool {
        let slots_ok = self.partition_slots.iter().all(|row| {
            row.len() == self.num_stages
                && row.iter().map(|s| *s as u32).sum::<u32>() == PARTITION_SLOTS as u32
        });
        let mut seen = vec![false; self.num_stages];
        let mut permutation_ok = self.mapping.len() == self.num_stages;
        for &cu in &self.mapping {
            if cu >= self.num_stages || seen[cu] {
                permutation_ok = false;
                break;
            }
            seen[cu] = true;
        }
        let dvfs_ok =
            self.dvfs.len() == self.num_stages && self.dvfs.iter().all(|d| *d < DVFS_RESOLUTION);
        let indicator_ok = self
            .indicator
            .iter()
            .all(|row| row.len() == self.num_stages.saturating_sub(1));
        slots_ok && permutation_ok && dvfs_ok && indicator_ok
    }

    /// Decodes the genome into a full [`MappingConfig`] for the given
    /// network and platform.
    ///
    /// # Errors
    ///
    /// Returns an error when the genome was built for a different network
    /// or platform (mismatched layer counts or compute-unit counts).
    pub fn decode(
        &self,
        network: &Network,
        platform: &Platform,
    ) -> Result<MappingConfig, OptimError> {
        if self.num_stages != platform.num_compute_units() {
            return Err(OptimError::InvalidConfig {
                reason: format!(
                    "genome encodes {} stages but platform has {} compute units",
                    self.num_stages,
                    platform.num_compute_units()
                ),
            });
        }
        if self.indicator.len() != network.num_layers() {
            return Err(OptimError::InvalidConfig {
                reason: format!(
                    "genome encodes {} layers but network has {}",
                    self.indicator.len(),
                    network.num_layers()
                ),
            });
        }

        // Flat buffers cannot detect a mis-sized row after the fact the
        // way the nested constructors can, so reject malformed rows (only
        // reachable through hand-deserialized genomes) up front with the
        // same error shape `from_rows` raises in `decode_reference` —
        // without this, a short and a long row could compensate each
        // other and silently misalign the flat matrix.
        for (slot_row, layer_index) in self.partition_slots.iter().zip(&self.partitionable) {
            if slot_row.len() != self.num_stages {
                return Err(
                    CoreError::Dynamic(mnc_dynamic::DynamicError::ShapeMismatch {
                        expected: format!("{} stages", self.num_stages),
                        actual: format!("{} entries in row {layer_index}", slot_row.len()),
                    })
                    .into(),
                );
            }
        }
        for (layer, row) in self.indicator.iter().enumerate() {
            if row.len() + 1 != self.num_stages {
                return Err(
                    CoreError::Dynamic(mnc_dynamic::DynamicError::ShapeMismatch {
                        expected: format!("{} stages", self.num_stages),
                        actual: format!("{} entries in row {layer}", row.len() + 1),
                    })
                    .into(),
                );
            }
        }

        // Partition matrix: explicit rows for partitionable layers, an even
        // placeholder for the rest (they follow their producers anyway).
        // Built as one flat row-major buffer — decoding runs once per
        // fresh evaluation on the search's hot path, so it costs two
        // matrix allocations, not two per layer. The layer list every
        // constructor produces is ascending, so rows stream in place; the
        // fallback covers hand-deserialized genomes with a shuffled list.
        let uniform = 1.0 / self.num_stages as f64;
        let mut partition_data = Vec::with_capacity(network.num_layers() * self.num_stages);
        let sorted = self.partitionable.windows(2).all(|pair| pair[0] < pair[1]);
        if sorted {
            let mut next = self
                .partitionable
                .iter()
                .zip(&self.partition_slots)
                .peekable();
            for layer in 0..network.num_layers() {
                match next.peek() {
                    Some((index, slot_row)) if **index == layer => {
                        partition_data
                            .extend(slot_row.iter().map(|s| *s as f64 / PARTITION_SLOTS as f64));
                        next.next();
                    }
                    _ => partition_data.extend(std::iter::repeat_n(uniform, self.num_stages)),
                }
            }
        } else {
            partition_data.extend(std::iter::repeat_n(
                uniform,
                network.num_layers() * self.num_stages,
            ));
            for (slot_row, layer_index) in self.partition_slots.iter().zip(&self.partitionable) {
                for (stage, slot) in slot_row.iter().take(self.num_stages).enumerate() {
                    partition_data[layer_index * self.num_stages + stage] =
                        *slot as f64 / PARTITION_SLOTS as f64;
                }
            }
        }
        let partition = PartitionMatrix::from_flat(network, self.num_stages, partition_data)
            .map_err(CoreError::Dynamic)?;

        let mut indicator_data = Vec::with_capacity(network.num_layers() * self.num_stages);
        for row in &self.indicator {
            indicator_data.extend_from_slice(row);
            indicator_data.push(false); // the final stage's features are never forwarded
        }
        let indicator = IndicatorMatrix::from_flat(network, self.num_stages, indicator_data)
            .map_err(CoreError::Dynamic)?;

        let mapping = Mapping::new(self.mapping.iter().map(|&i| CuId(i)).collect(), platform)?;

        let levels: Vec<usize> = self
            .mapping
            .iter()
            .zip(&self.dvfs)
            .map(|(&cu_index, &gene)| {
                let cu = platform
                    .compute_unit(CuId(cu_index))
                    .expect("mapping validated above");
                let max_level = cu.dvfs().num_levels() - 1;
                ((gene as f64 / (DVFS_RESOLUTION - 1) as f64) * max_level as f64).round() as usize
            })
            .collect();
        let dvfs = DvfsAssignment::new(levels, &mapping, platform)?;

        Ok(MappingConfig::new(partition, indicator, mapping, dvfs)?)
    }

    /// Decodes through the pre-fast-path construction: per-layer row
    /// vectors assembled one allocation at a time and flattened by the
    /// matrix constructors, exactly as decoding worked before the search
    /// fast path. The configuration it produces is identical to
    /// [`Genome::decode`]'s (property-tested); retained as the baseline
    /// for the `search_fastpath` benchmark and as the oracle for the
    /// flat-construction rewrite.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Genome::decode`].
    pub fn decode_reference(
        &self,
        network: &Network,
        platform: &Platform,
    ) -> Result<MappingConfig, OptimError> {
        if self.num_stages != platform.num_compute_units() {
            return Err(OptimError::InvalidConfig {
                reason: format!(
                    "genome encodes {} stages but platform has {} compute units",
                    self.num_stages,
                    platform.num_compute_units()
                ),
            });
        }
        if self.indicator.len() != network.num_layers() {
            return Err(OptimError::InvalidConfig {
                reason: format!(
                    "genome encodes {} layers but network has {}",
                    self.indicator.len(),
                    network.num_layers()
                ),
            });
        }

        let uniform_row = vec![1.0 / self.num_stages as f64; self.num_stages];
        let mut rows = vec![uniform_row; network.num_layers()];
        for (slot_row, layer_index) in self.partition_slots.iter().zip(&self.partitionable) {
            rows[*layer_index] = slot_row
                .iter()
                .map(|s| *s as f64 / PARTITION_SLOTS as f64)
                .collect();
        }
        let partition = PartitionMatrix::from_rows(network, rows).map_err(CoreError::Dynamic)?;

        let indicator_rows: Vec<Vec<bool>> = self
            .indicator
            .iter()
            .map(|row| {
                let mut full = row.clone();
                full.push(false); // the final stage's features are never forwarded
                full
            })
            .collect();
        let indicator =
            IndicatorMatrix::from_rows(network, indicator_rows).map_err(CoreError::Dynamic)?;

        let mapping = Mapping::new(self.mapping.iter().map(|&i| CuId(i)).collect(), platform)?;
        let levels: Vec<usize> = self
            .mapping
            .iter()
            .zip(&self.dvfs)
            .map(|(&cu_index, &gene)| {
                let cu = platform
                    .compute_unit(CuId(cu_index))
                    .expect("mapping validated above");
                let max_level = cu.dvfs().num_levels() - 1;
                ((gene as f64 / (DVFS_RESOLUTION - 1) as f64) * max_level as f64).round() as usize
            })
            .collect();
        let dvfs = DvfsAssignment::new(levels, &mapping, platform)?;

        Ok(MappingConfig::new(partition, indicator, mapping, dvfs)?)
    }

    /// Fraction of forwarding bits that are set (a cheap proxy for the
    /// decoded configuration's feature-map reuse ratio).
    pub fn indicator_density(&self) -> f64 {
        let total: usize = self.indicator.iter().map(Vec::len).sum();
        if total == 0 {
            return 0.0;
        }
        let set: usize = self
            .indicator
            .iter()
            .map(|row| row.iter().filter(|b| **b).count())
            .sum();
        set as f64 / total as f64
    }

    /// Identifiers of the partitionable layers this genome was built for.
    pub fn partitionable_layers(&self) -> Vec<LayerId> {
        self.partitionable.iter().map(|&i| LayerId(i)).collect()
    }

    /// Per-partitionable-layer cache keys for the keyed accuracy fast
    /// path (`mnc_dynamic`'s `AccuracyModel::evaluate_parts_keyed`): one
    /// `u64` per partitionable layer, packing the layer index with the
    /// integer slot row (4 bits per slot, slot values are at most
    /// [`PARTITION_SLOTS`]). Two genomes produce equal keys for a layer
    /// iff their slot rows are equal (for at most 10 stages — beyond
    /// that, packed rows could alias, which the consumer's verify-on-hit
    /// turns into a recomputation rather than an error), so the decoded
    /// fraction rows — `slots / 8` exactly, in IEEE arithmetic — are
    /// equal too.
    pub fn partition_row_keys(&self) -> Vec<u64> {
        self.partitionable
            .iter()
            .zip(&self.partition_slots)
            .map(|(layer, slots)| {
                let mut packed = (*layer as u64) << 40;
                for (position, slot) in slots.iter().enumerate().take(10) {
                    packed |= (u64::from(*slot) & 0xF) << (position * 4);
                }
                packed
            })
            .collect()
    }

    /// A stable 64-bit fingerprint of every gene.
    ///
    /// Two genomes fingerprint equal iff they are equal, up to hash
    /// collisions (~2⁻⁶⁴ per pair), so the fingerprint serves as the
    /// per-candidate component of the runtime's evaluation-cache key. This
    /// is the hot path — a search touches it once per candidate — so it
    /// hashes the raw genes directly instead of going through the decoded
    /// configuration.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = mnc_core::StableHasher::new();
        self.structure_into(&mut hasher);
        // Mapping entries are stage indices (< num_stages, recorded in the
        // structure prefix), so a byte each suffices; indices above 255 —
        // platforms with >256 compute units — would truncate into the
        // "up to hash collisions" budget the contract already allows.
        hasher.write_usize(self.mapping.len());
        for cu in &self.mapping {
            hasher.write_bytes(&[(*cu & 0xFF) as u8]);
        }
        hasher.write_bytes(&self.dvfs);
        hasher.finish()
    }

    /// A stable 64-bit fingerprint of the *structure* genes only —
    /// partition slots and forwarding indicators, the two gene groups that
    /// determine the dynamic transformation ([`mnc_dynamic`'s
    /// `DynamicNetwork::transform`] is a pure function of them and the
    /// network).
    ///
    /// Genomes that differ only in mapping or DVFS genes share a structure
    /// fingerprint, which keys the runtime's transform-memoisation cache:
    /// one transform serves every (mapping, DVFS) variation of the same
    /// partition/indicator pair.
    pub fn structure_fingerprint(&self) -> u64 {
        let mut hasher = mnc_core::StableHasher::new();
        self.structure_into(&mut hasher);
        hasher.finish()
    }

    /// Feeds the structure genes (everything except mapping and DVFS)
    /// into `hasher`; shared prefix of [`Genome::fingerprint`] and
    /// [`Genome::structure_fingerprint`].
    ///
    /// This sits on the search's hot path (once per scheduled candidate),
    /// so the encoding is compact: indicator bits are packed into `u64`
    /// words instead of hashed per-`bool`, with layer count and total bit
    /// count as prefixes (valid genomes have uniform row lengths, so the
    /// two pin the shape; unequal *invalid* genomes aliasing under this
    /// packing fall into the contract's hash-collision budget).
    fn structure_into(&self, hasher: &mut mnc_core::StableHasher) {
        hasher.write_usize(self.num_stages);
        hasher.write_usize(self.partitionable.len());
        for layer in &self.partitionable {
            hasher.write_usize(*layer);
        }
        for row in &self.partition_slots {
            hasher.write_bytes(row);
        }
        hasher.write_usize(self.indicator.len());
        let total_bits: usize = self.indicator.iter().map(Vec::len).sum();
        hasher.write_usize(total_bits);
        let mut word = 0u64;
        let mut bit = 0u32;
        for row in &self.indicator {
            for flag in row {
                if *flag {
                    word |= 1u64 << bit;
                }
                bit += 1;
                if bit == 64 {
                    hasher.write_u64(word);
                    word = 0;
                    bit = 0;
                }
            }
        }
        if bit > 0 {
            hasher.write_u64(word);
        }
    }
}

/// Random slot allocation: distribute [`PARTITION_SLOTS`] slots over
/// `stages` stages.
fn random_slots(stages: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut slots = vec![0u8; stages.max(1)];
    for _ in 0..PARTITION_SLOTS {
        let stage = rng.random_range(0..stages.max(1));
        slots[stage] += 1;
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{visformer_tiny, ModelPreset};
    use rand::SeedableRng;

    fn setup() -> (Network, Platform, StdRng) {
        (
            visformer_tiny(ModelPreset::cifar100()),
            Platform::dual_test(),
            StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn random_genomes_are_valid_and_decode() {
        let (net, platform, mut rng) = setup();
        for _ in 0..20 {
            let genome = Genome::random(&net, &platform, &mut rng);
            assert!(genome.is_valid());
            let config = genome.decode(&net, &platform).unwrap();
            assert_eq!(config.num_stages(), 2);
        }
    }

    #[test]
    fn balanced_genome_decodes_to_uniform_split() {
        let (net, platform, _) = setup();
        let genome = Genome::balanced(&net, &platform);
        assert!(genome.is_valid());
        assert_eq!(genome.indicator_density(), 1.0);
        let config = genome.decode(&net, &platform).unwrap();
        let first_partitionable = net.partitionable_layers()[0];
        assert!((config.partition.fraction(first_partitionable, 0) - 0.5).abs() < 1e-9);
        // Maximum-frequency DVFS genes decode to the top level.
        let cu0_levels = platform.compute_unit(CuId(0)).unwrap().dvfs().num_levels();
        assert_eq!(config.dvfs.level(0), Some(cu0_levels - 1));
    }

    #[test]
    fn flat_decode_matches_reference_decode() {
        let (net, platform, mut rng) = setup();
        for _ in 0..24 {
            let genome = Genome::random(&net, &platform, &mut rng);
            let flat = genome.decode(&net, &platform).unwrap();
            let reference = genome.decode_reference(&net, &platform).unwrap();
            assert_eq!(flat, reference);
            for layer in 0..net.num_layers() {
                for stage in 0..genome.num_stages() {
                    assert_eq!(
                        flat.partition
                            .fraction(mnc_nn::LayerId(layer), stage)
                            .to_bits(),
                        reference
                            .partition
                            .fraction(mnc_nn::LayerId(layer), stage)
                            .to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn decoding_against_the_wrong_platform_fails() {
        let (net, platform, mut rng) = setup();
        let genome = Genome::random(&net, &platform, &mut rng);
        let xavier = Platform::agx_xavier();
        assert!(genome.decode(&net, &xavier).is_err());
        let other_net = mnc_nn::models::vgg11(ModelPreset::cifar100());
        assert!(genome.decode(&other_net, &platform).is_err());
    }

    #[test]
    fn randomness_is_reproducible_per_seed() {
        let (net, platform, _) = setup();
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        assert_eq!(
            Genome::random(&net, &platform, &mut rng_a),
            Genome::random(&net, &platform, &mut rng_b)
        );
    }

    #[test]
    fn partitionable_layers_match_network() {
        let (net, platform, mut rng) = setup();
        let genome = Genome::random(&net, &platform, &mut rng);
        assert_eq!(genome.partitionable_layers(), net.partitionable_layers());
    }

    #[test]
    fn structure_fingerprint_ignores_mapping_and_dvfs() {
        let (net, platform, mut rng) = setup();
        let base = Genome::random(&net, &platform, &mut rng);
        let mut shuffled = base.clone();
        {
            let (_, _, mapping, dvfs) = shuffled.parts_mut();
            mapping.reverse();
            dvfs[0] = dvfs[0].wrapping_add(1) % DVFS_RESOLUTION;
        }
        // Different full fingerprints (different mapping/DVFS genes)...
        assert_ne!(base.fingerprint(), shuffled.fingerprint());
        // ...but the same transform-relevant structure.
        assert_eq!(
            base.structure_fingerprint(),
            shuffled.structure_fingerprint()
        );

        let mut repartitioned = base.clone();
        {
            let (slots, _, _, _) = repartitioned.parts_mut();
            if slots[0][0] > 0 {
                slots[0][0] -= 1;
                slots[0][1] += 1;
            } else {
                slots[0][1] -= 1;
                slots[0][0] += 1;
            }
        }
        assert_ne!(
            base.structure_fingerprint(),
            repartitioned.structure_fingerprint()
        );
    }

    #[test]
    fn remapped_preserves_structure_and_validates() {
        let (net, platform, mut rng) = setup();
        let base = Genome::random(&net, &platform, &mut rng);
        let mut mapping = base.mapping_genes().to_vec();
        mapping.reverse();
        let variant = base.remapped(mapping, base.dvfs_genes().to_vec()).unwrap();
        assert!(variant.is_valid());
        assert_eq!(
            base.structure_fingerprint(),
            variant.structure_fingerprint()
        );
        assert!(base
            .remapped(vec![0, 0], base.dvfs_genes().to_vec())
            .is_err());
        assert!(base
            .remapped(base.mapping_genes().to_vec(), vec![255, 255])
            .is_err());
    }

    #[test]
    fn dvfs_gene_extremes_map_to_table_extremes() {
        let (net, platform, _) = setup();
        let mut genome = Genome::balanced(&net, &platform);
        {
            let (_, _, _, dvfs) = genome.parts_mut();
            dvfs[0] = 0;
        }
        let config = genome.decode(&net, &platform).unwrap();
        assert_eq!(config.dvfs.level(0), Some(0));
    }
}
