//! The evaluation hook the search loop drives.
//!
//! [`MappingSearch`](crate::MappingSearch) does not call
//! [`mnc_core::Evaluator`] directly; it goes through [`ConfigEvaluator`],
//! which turns a genome into a decoded configuration plus its metrics.
//! This is the seam where alternative evaluation strategies plug in:
//!
//! * [`mnc_core::Evaluator`] implements it by decoding and evaluating from
//!   scratch every time (the paper's offline workflow),
//! * `mnc_runtime::CachedEvaluator` implements it with a sharded
//!   fingerprint-keyed cache in front, so repeated genomes — within one
//!   search or across service requests — skip both the decode and the
//!   simulation.
//!
//! Results come back `Arc`-backed: one evaluation is shared by the search
//! archive, the elite set and any cache layer without ever deep-cloning
//! the decoded configuration again.
//!
//! The search loop's fresh evaluations go through
//! [`ConfigEvaluator::evaluate_genome_fast`]: implementations route it to
//! their cheapest bit-identical pipeline — for [`mnc_core::Evaluator`]
//! that is [`mnc_core::Evaluator::evaluate_fused`], which runs the
//! transform recursion into flat storage instead of materialising a
//! `DynamicNetwork` per candidate (a GA population practically never
//! repeats a structure, so per-structure transform caching cannot help;
//! making the one-shot pipeline allocation-light does). The default
//! implementation falls back to [`ConfigEvaluator::evaluate_genome`].
//!
//! Implementations must be pure: the same genome must always produce the
//! same result. The search relies on this for its determinism guarantee
//! (identical outcomes regardless of thread count).

use crate::error::OptimError;
use crate::genome::Genome;
use mnc_core::{EvaluationResult, Evaluator, MappingConfig};
use mnc_mpsoc::Platform;
use mnc_nn::Network;
use std::sync::Arc;

/// Turns genomes into evaluated configurations for one (network, platform)
/// pair.
pub trait ConfigEvaluator: Sync {
    /// The network candidates are built for.
    fn network(&self) -> &Network;

    /// The platform candidates are mapped onto.
    fn platform(&self) -> &Platform;

    /// Decodes and evaluates one genome.
    ///
    /// # Errors
    ///
    /// Returns an error when the genome does not match the network/platform
    /// or the underlying hardware model rejects the configuration.
    fn evaluate_genome(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError>;

    /// Like [`ConfigEvaluator::evaluate_genome`], through the
    /// implementation's fastest bit-identical pipeline — the hook the
    /// search loop's fresh (non-memoised) evaluations use. The default
    /// forwards to the plain path.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ConfigEvaluator::evaluate_genome`].
    fn evaluate_genome_fast(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        self.evaluate_genome(genome)
    }

    /// Like [`ConfigEvaluator::evaluate_genome`], through the
    /// implementation's retained pre-fast-path pipeline — the hook
    /// [`crate::MappingSearch::run_reference`] drives so the benchmark
    /// baseline pays what the loop paid before the search fast path. The
    /// default forwards to the plain path.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ConfigEvaluator::evaluate_genome`].
    fn evaluate_genome_reference(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        self.evaluate_genome(genome)
    }
}

impl ConfigEvaluator for Evaluator {
    fn network(&self) -> &Network {
        Evaluator::network(self)
    }

    fn platform(&self) -> &Platform {
        Evaluator::platform(self)
    }

    fn evaluate_genome(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        let config = genome.decode(Evaluator::network(self), Evaluator::platform(self))?;
        let result = self.evaluate(&config)?;
        Ok((Arc::new(config), Arc::new(result)))
    }

    fn evaluate_genome_fast(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        let config = genome.decode(Evaluator::network(self), Evaluator::platform(self))?;
        // Bit-identical to `evaluate` (property-tested in `mnc_core`'s
        // fused-evaluation suite), two orders of magnitude fewer
        // allocations; the genome's integer slot rows key the accuracy
        // model's slice-mass memo.
        let result = self.evaluate_fused_keyed(&config, &genome.partition_row_keys())?;
        Ok((Arc::new(config), Arc::new(result)))
    }

    fn evaluate_genome_reference(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        // The pre-fast-path pipeline end to end: row-by-row decode plus
        // the transform-materialising `evaluate`.
        let config =
            genome.decode_reference(Evaluator::network(self), Evaluator::platform(self))?;
        let result = self.evaluate(&config)?;
        Ok((Arc::new(config), Arc::new(result)))
    }
}

impl<T: ConfigEvaluator + ?Sized> ConfigEvaluator for &T {
    fn network(&self) -> &Network {
        (**self).network()
    }

    fn platform(&self) -> &Platform {
        (**self).platform()
    }

    fn evaluate_genome(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        (**self).evaluate_genome(genome)
    }

    fn evaluate_genome_fast(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        (**self).evaluate_genome_fast(genome)
    }

    fn evaluate_genome_reference(
        &self,
        genome: &Genome,
    ) -> Result<(Arc<MappingConfig>, Arc<EvaluationResult>), OptimError> {
        (**self).evaluate_genome_reference(genome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_core::EvaluatorBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn evaluator() -> Evaluator {
        EvaluatorBuilder::new(
            mnc_nn::models::visformer_tiny(mnc_nn::models::ModelPreset::cifar100()),
            Platform::dual_test(),
        )
        .validation_samples(300)
        .build()
        .unwrap()
    }

    #[test]
    fn fast_hook_is_bit_identical_to_plain() {
        let evaluator = evaluator();
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..8 {
            let genome = Genome::random(
                ConfigEvaluator::network(&evaluator),
                ConfigEvaluator::platform(&evaluator),
                &mut rng,
            );
            let (plain_config, plain_result) = evaluator.evaluate_genome(&genome).unwrap();
            let (fast_config, fast_result) = evaluator.evaluate_genome_fast(&genome).unwrap();
            assert_eq!(*plain_config, *fast_config);
            assert_eq!(*plain_result, *fast_result);
            assert_eq!(
                plain_result.objective.to_bits(),
                fast_result.objective.to_bits()
            );
        }
    }
}
