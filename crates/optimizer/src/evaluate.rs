//! The evaluation hook the search loop drives.
//!
//! [`MappingSearch`](crate::MappingSearch) does not call
//! [`mnc_core::Evaluator`] directly; it goes through [`ConfigEvaluator`],
//! which turns a genome into a decoded configuration plus its metrics.
//! This is the seam where alternative evaluation strategies plug in:
//!
//! * [`mnc_core::Evaluator`] implements it by decoding and evaluating from
//!   scratch every time (the paper's offline workflow),
//! * `mnc_runtime::CachedEvaluator` implements it with a sharded
//!   fingerprint-keyed cache in front, so repeated genomes — within one
//!   search or across service requests — skip both the decode and the
//!   simulation.
//!
//! Implementations must be pure: the same genome must always produce the
//! same result. The search relies on this for its determinism guarantee
//! (identical outcomes regardless of thread count).

use crate::error::OptimError;
use crate::genome::Genome;
use mnc_core::{EvaluationResult, Evaluator, MappingConfig};
use mnc_mpsoc::Platform;
use mnc_nn::Network;

/// Turns genomes into evaluated configurations for one (network, platform)
/// pair.
pub trait ConfigEvaluator: Sync {
    /// The network candidates are built for.
    fn network(&self) -> &Network;

    /// The platform candidates are mapped onto.
    fn platform(&self) -> &Platform;

    /// Decodes and evaluates one genome.
    ///
    /// # Errors
    ///
    /// Returns an error when the genome does not match the network/platform
    /// or the underlying hardware model rejects the configuration.
    fn evaluate_genome(
        &self,
        genome: &Genome,
    ) -> Result<(MappingConfig, EvaluationResult), OptimError>;
}

impl ConfigEvaluator for Evaluator {
    fn network(&self) -> &Network {
        Evaluator::network(self)
    }

    fn platform(&self) -> &Platform {
        Evaluator::platform(self)
    }

    fn evaluate_genome(
        &self,
        genome: &Genome,
    ) -> Result<(MappingConfig, EvaluationResult), OptimError> {
        let config = genome.decode(Evaluator::network(self), Evaluator::platform(self))?;
        let result = self.evaluate(&config)?;
        Ok((config, result))
    }
}

impl<T: ConfigEvaluator + ?Sized> ConfigEvaluator for &T {
    fn network(&self) -> &Network {
        (**self).network()
    }

    fn platform(&self) -> &Platform {
        (**self).platform()
    }

    fn evaluate_genome(
        &self,
        genome: &Genome,
    ) -> Result<(MappingConfig, EvaluationResult), OptimError> {
        (**self).evaluate_genome(genome)
    }
}
