//! Synthetic validation set for the dynamic-inference accuracy model.
//!
//! The paper evaluates accuracy and per-stage exit statistics on the
//! CIFAR-100 validation split of trained multi-exit models. Without
//! trained weights, this module provides a seeded population of synthetic
//! samples, each carrying a *difficulty* in `[0, 1]`: a sample is
//! classified correctly by a (sub-)model whose effective accuracy exceeds
//! its difficulty, and exits early when an exit's confidence threshold
//! exceeds it. Uniform difficulties make a stage's standalone accuracy on
//! the set equal (in expectation) to its modelled accuracy.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// One synthetic validation sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSample {
    /// Processing difficulty in `[0, 1]`; 0 is trivially easy, 1 is
    /// hardest.
    pub difficulty: f64,
}

/// Sorted view of a validation set's difficulties, answering
/// "how many samples have difficulty ≤ x" in O(log n).
///
/// Counting with the index is *exactly* equivalent to looping over the
/// samples: both apply the same `d <= x` comparison to the same `f64`
/// values, and a count of matching samples is order-independent — so the
/// closed-form accuracy evaluation built on top of this index (see
/// [`crate::AccuracyModel::evaluate`]) reproduces the naive per-sample
/// loop bit for bit.
#[derive(Debug, Clone)]
pub struct DifficultyIndex {
    sorted: Vec<f64>,
}

impl DifficultyIndex {
    fn build(samples: &[SyntheticSample]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().map(|s| s.difficulty).collect();
        sorted.sort_unstable_by(f64::total_cmp);
        DifficultyIndex { sorted }
    }

    /// Number of samples with `difficulty <= threshold`.
    pub fn count_at_most(&self, threshold: f64) -> usize {
        self.sorted.partition_point(|d| *d <= threshold)
    }

    /// Number of samples indexed.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

/// A seeded collection of synthetic validation samples.
///
/// Carries a lazily-built [`DifficultyIndex`] for the evaluator's
/// closed-form accuracy fast path. The index is derived state: it is
/// excluded from equality, serialization and fingerprints (the hand-written
/// impls below mirror what `#[derive]` produced before the field existed),
/// and a deserialized or freshly generated set rebuilds it on first use.
#[derive(Debug, Clone)]
pub struct SyntheticValidationSet {
    samples: Vec<SyntheticSample>,
    index: OnceLock<DifficultyIndex>,
}

impl PartialEq for SyntheticValidationSet {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
    }
}

impl Serialize for SyntheticValidationSet {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![(
            "samples".to_string(),
            Serialize::to_value(&self.samples),
        )])
    }
}

impl Deserialize for SyntheticValidationSet {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(SyntheticValidationSet {
            samples: Deserialize::from_value(serde::value::field(value, "samples")?)?,
            index: OnceLock::new(),
        })
    }
}

impl SyntheticValidationSet {
    /// Generates `count` samples with difficulties drawn from
    /// `U(0,1)^skew`; `skew == 1.0` gives uniform difficulties, larger
    /// values bias the set towards easy samples (more early-exit
    /// opportunity), smaller values towards hard samples.
    ///
    /// # Panics
    ///
    /// Panics if `skew` is not positive and finite.
    pub fn generate(count: usize, seed: u64, skew: f64) -> Self {
        assert!(
            skew.is_finite() && skew > 0.0,
            "difficulty skew must be positive, got {skew}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..count)
            .map(|_| SyntheticSample {
                difficulty: rng.random::<f64>().powf(skew),
            })
            .collect();
        SyntheticValidationSet {
            samples,
            index: OnceLock::new(),
        }
    }

    /// A CIFAR-100-validation-sized set (10 000 samples) with uniform
    /// difficulties.
    pub fn cifar100_like(seed: u64) -> Self {
        SyntheticValidationSet::generate(10_000, seed, 1.0)
    }

    /// The samples.
    pub fn samples(&self) -> &[SyntheticSample] {
        &self.samples
    }

    /// The sorted-difficulty index, built on first use and shared by every
    /// subsequent evaluation of this set.
    pub fn difficulty_index(&self) -> &DifficultyIndex {
        self.index
            .get_or_init(|| DifficultyIndex::build(&self.samples))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean difficulty of the set.
    pub fn mean_difficulty(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.difficulty).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_in_unit_interval() {
        let set = SyntheticValidationSet::generate(500, 1, 1.0);
        assert_eq!(set.len(), 500);
        assert!(!set.is_empty());
        assert!(set
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.difficulty)));
    }

    #[test]
    fn uniform_difficulty_has_mean_near_half() {
        let set = SyntheticValidationSet::cifar100_like(7);
        assert_eq!(set.len(), 10_000);
        assert!((set.mean_difficulty() - 0.5).abs() < 0.02);
    }

    #[test]
    fn skew_makes_samples_easier() {
        let uniform = SyntheticValidationSet::generate(5000, 3, 1.0);
        let easy = SyntheticValidationSet::generate(5000, 3, 2.0);
        assert!(easy.mean_difficulty() < uniform.mean_difficulty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SyntheticValidationSet::generate(100, 9, 1.0);
        let b = SyntheticValidationSet::generate(100, 9, 1.0);
        let c = SyntheticValidationSet::generate(100, 10, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn index_counts_match_naive_loop() {
        let set = SyntheticValidationSet::generate(777, 4, 1.3);
        let index = set.difficulty_index();
        assert_eq!(index.len(), set.len());
        for threshold in [-0.5, 0.0, 0.1, 0.25, 0.5, 0.9, 1.0, 1.5] {
            let naive = set
                .samples()
                .iter()
                .filter(|s| s.difficulty <= threshold)
                .count();
            assert_eq!(index.count_at_most(threshold), naive, "at {threshold}");
        }
        // Exact sample values must count themselves (the `<=` boundary).
        let d = set.samples()[13].difficulty;
        let naive = set.samples().iter().filter(|s| s.difficulty <= d).count();
        assert_eq!(index.count_at_most(d), naive);
    }

    #[test]
    fn index_is_derived_state_only() {
        let warm = SyntheticValidationSet::generate(50, 2, 1.0);
        warm.difficulty_index();
        let cold = SyntheticValidationSet::generate(50, 2, 1.0);
        // Building the index changes neither equality nor serialization.
        assert_eq!(warm, cold);
        let warm_json = serde_json::to_string(&warm).unwrap();
        let cold_json = serde_json::to_string(&cold).unwrap();
        assert_eq!(warm_json, cold_json);
        let back: SyntheticValidationSet = serde_json::from_str(&warm_json).unwrap();
        assert_eq!(back, warm);
        assert_eq!(back.difficulty_index().len(), 50);
        assert!(!back.difficulty_index().is_empty());
    }

    #[test]
    fn empty_set_is_well_behaved() {
        let set = SyntheticValidationSet::generate(0, 1, 1.0);
        assert!(set.is_empty());
        assert_eq!(set.mean_difficulty(), 0.0);
    }

    #[test]
    #[should_panic(expected = "skew must be positive")]
    fn non_positive_skew_panics() {
        let _ = SyntheticValidationSet::generate(10, 1, 0.0);
    }
}
