//! Synthetic validation set for the dynamic-inference accuracy model.
//!
//! The paper evaluates accuracy and per-stage exit statistics on the
//! CIFAR-100 validation split of trained multi-exit models. Without
//! trained weights, this module provides a seeded population of synthetic
//! samples, each carrying a *difficulty* in `[0, 1]`: a sample is
//! classified correctly by a (sub-)model whose effective accuracy exceeds
//! its difficulty, and exits early when an exit's confidence threshold
//! exceeds it. Uniform difficulties make a stage's standalone accuracy on
//! the set equal (in expectation) to its modelled accuracy.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic validation sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSample {
    /// Processing difficulty in `[0, 1]`; 0 is trivially easy, 1 is
    /// hardest.
    pub difficulty: f64,
}

/// A seeded collection of synthetic validation samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticValidationSet {
    samples: Vec<SyntheticSample>,
}

impl SyntheticValidationSet {
    /// Generates `count` samples with difficulties drawn from
    /// `U(0,1)^skew`; `skew == 1.0` gives uniform difficulties, larger
    /// values bias the set towards easy samples (more early-exit
    /// opportunity), smaller values towards hard samples.
    ///
    /// # Panics
    ///
    /// Panics if `skew` is not positive and finite.
    pub fn generate(count: usize, seed: u64, skew: f64) -> Self {
        assert!(
            skew.is_finite() && skew > 0.0,
            "difficulty skew must be positive, got {skew}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..count)
            .map(|_| SyntheticSample {
                difficulty: rng.random::<f64>().powf(skew),
            })
            .collect();
        SyntheticValidationSet { samples }
    }

    /// A CIFAR-100-validation-sized set (10 000 samples) with uniform
    /// difficulties.
    pub fn cifar100_like(seed: u64) -> Self {
        SyntheticValidationSet::generate(10_000, seed, 1.0)
    }

    /// The samples.
    pub fn samples(&self) -> &[SyntheticSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean difficulty of the set.
    pub fn mean_difficulty(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.difficulty).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_in_unit_interval() {
        let set = SyntheticValidationSet::generate(500, 1, 1.0);
        assert_eq!(set.len(), 500);
        assert!(!set.is_empty());
        assert!(set
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.difficulty)));
    }

    #[test]
    fn uniform_difficulty_has_mean_near_half() {
        let set = SyntheticValidationSet::cifar100_like(7);
        assert_eq!(set.len(), 10_000);
        assert!((set.mean_difficulty() - 0.5).abs() < 0.02);
    }

    #[test]
    fn skew_makes_samples_easier() {
        let uniform = SyntheticValidationSet::generate(5000, 3, 1.0);
        let easy = SyntheticValidationSet::generate(5000, 3, 2.0);
        assert!(easy.mean_difficulty() < uniform.mean_difficulty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SyntheticValidationSet::generate(100, 9, 1.0);
        let b = SyntheticValidationSet::generate(100, 9, 1.0);
        let c = SyntheticValidationSet::generate(100, 10, 1.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_set_is_well_behaved() {
        let set = SyntheticValidationSet::generate(0, 1, 1.0);
        assert!(set.is_empty());
        assert_eq!(set.mean_difficulty(), 0.0);
    }

    #[test]
    #[should_panic(expected = "skew must be positive")]
    fn non_positive_skew_panics() {
        let _ = SyntheticValidationSet::generate(10, 1, 0.0);
    }
}
