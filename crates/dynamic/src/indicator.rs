//! The indicator matrix `I` (paper eq. 4, right).
//!
//! `I[j][k] = 1` means the intermediate feature maps `F^j_k` produced by
//! stage `S_k` at layer `L_j` are forwarded (through shared memory) to the
//! corresponding layer of every *later* stage. Forwarding more features
//! improves the accuracy of later stages but increases inter-CU traffic and
//! shared-memory residency; the paper constrains the fraction of reused
//! feature maps to 100% / 75% / 50% in its three search strategies.

use crate::error::DynamicError;
use mnc_nn::{LayerId, Network};
use serde::{Deserialize, Serialize};

/// Per-layer, per-stage feature-forwarding choices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndicatorMatrix {
    num_stages: usize,
    /// `rows[layer][stage]` — whether stage `stage`'s output of `layer` is
    /// forwarded to later stages.
    rows: Vec<Vec<bool>>,
}

impl IndicatorMatrix {
    /// All feature maps are forwarded (the static-mapping behaviour the
    /// paper's "No Fmap constraint" search starts from).
    pub fn full(network: &Network, num_stages: usize) -> Self {
        IndicatorMatrix {
            num_stages: num_stages.max(1),
            rows: vec![vec![true; num_stages.max(1)]; network.num_layers()],
        }
    }

    /// No feature maps are forwarded: every stage works from its own
    /// channels only.
    pub fn none(network: &Network, num_stages: usize) -> Self {
        IndicatorMatrix {
            num_stages: num_stages.max(1),
            rows: vec![vec![false; num_stages.max(1)]; network.num_layers()],
        }
    }

    /// Builds an indicator matrix from explicit rows (`rows[layer][stage]`).
    ///
    /// # Errors
    ///
    /// Returns an error when the row count does not match the network or a
    /// row length differs from the others.
    pub fn from_rows(network: &Network, rows: Vec<Vec<bool>>) -> Result<Self, DynamicError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(DynamicError::InvalidStageCount { stages: 0 });
        }
        if rows.len() != network.num_layers() {
            return Err(DynamicError::ShapeMismatch {
                expected: format!("{} layer rows", network.num_layers()),
                actual: format!("{} rows", rows.len()),
            });
        }
        let num_stages = rows[0].len();
        for (index, row) in rows.iter().enumerate() {
            if row.len() != num_stages {
                return Err(DynamicError::ShapeMismatch {
                    expected: format!("{num_stages} stages"),
                    actual: format!("{} entries in row {index}", row.len()),
                });
            }
        }
        Ok(IndicatorMatrix { num_stages, rows })
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Number of layer rows.
    pub fn num_layers(&self) -> usize {
        self.rows.len()
    }

    /// Whether stage `stage`'s features of `layer` are forwarded to later
    /// stages. Out-of-range queries return `false`.
    pub fn is_forwarded(&self, layer: LayerId, stage: usize) -> bool {
        self.rows
            .get(layer.0)
            .and_then(|row| row.get(stage))
            .copied()
            .unwrap_or(false)
    }

    /// Sets one entry.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    pub fn set(
        &mut self,
        layer: LayerId,
        stage: usize,
        forwarded: bool,
    ) -> Result<(), DynamicError> {
        let row = self
            .rows
            .get_mut(layer.0)
            .ok_or_else(|| DynamicError::ShapeMismatch {
                expected: "valid layer index".to_string(),
                actual: format!("layer {}", layer.0),
            })?;
        let entry = row
            .get_mut(stage)
            .ok_or_else(|| DynamicError::ShapeMismatch {
                expected: format!("stage < {}", self.num_stages),
                actual: format!("stage {stage}"),
            })?;
        *entry = forwarded;
        Ok(())
    }

    /// Fraction of *relevant* entries that are set: only stages `0..M-1`
    /// count, because the last stage has no later consumer. This is the
    /// "Fmap Reuse %" the paper reports and constrains.
    pub fn reuse_ratio(&self) -> f64 {
        if self.num_stages <= 1 || self.rows.is_empty() {
            return 0.0;
        }
        let relevant = self.rows.len() * (self.num_stages - 1);
        let set: usize = self
            .rows
            .iter()
            .map(|row| row.iter().take(self.num_stages - 1).filter(|b| **b).count())
            .sum();
        set as f64 / relevant as f64
    }

    /// Number of `(layer, stage)` pairs whose features are forwarded
    /// (stages `0..M-1` only).
    pub fn num_forwarded(&self) -> usize {
        if self.num_stages <= 1 {
            return 0;
        }
        self.rows
            .iter()
            .map(|row| row.iter().take(self.num_stages - 1).filter(|b| **b).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{tiny_cnn, ModelPreset};

    fn net() -> Network {
        tiny_cnn(ModelPreset::cifar10())
    }

    #[test]
    fn full_and_none_have_extreme_reuse_ratios() {
        let net = net();
        let full = IndicatorMatrix::full(&net, 3);
        let none = IndicatorMatrix::none(&net, 3);
        assert_eq!(full.reuse_ratio(), 1.0);
        assert_eq!(none.reuse_ratio(), 0.0);
        assert_eq!(full.num_stages(), 3);
        assert_eq!(full.num_layers(), net.num_layers());
    }

    #[test]
    fn reuse_ratio_counts_only_non_final_stages() {
        let net = net();
        let mut m = IndicatorMatrix::none(&net, 2);
        // Setting the last stage's entries must not change the ratio.
        for layer in 0..net.num_layers() {
            m.set(LayerId(layer), 1, true).unwrap();
        }
        assert_eq!(m.reuse_ratio(), 0.0);
        m.set(LayerId(0), 0, true).unwrap();
        assert!((m.reuse_ratio() - 1.0 / net.num_layers() as f64).abs() < 1e-9);
        assert_eq!(m.num_forwarded(), 1);
    }

    #[test]
    fn single_stage_has_zero_reuse() {
        let net = net();
        let m = IndicatorMatrix::full(&net, 1);
        assert_eq!(m.reuse_ratio(), 0.0);
        assert_eq!(m.num_forwarded(), 0);
    }

    #[test]
    fn from_rows_validates_shape() {
        let net = net();
        assert!(IndicatorMatrix::from_rows(&net, vec![]).is_err());
        let short = vec![vec![true, false]; net.num_layers() - 1];
        assert!(IndicatorMatrix::from_rows(&net, short).is_err());
        let ragged: Vec<Vec<bool>> = (0..net.num_layers())
            .map(|i| {
                if i == 1 {
                    vec![true]
                } else {
                    vec![true, false]
                }
            })
            .collect();
        assert!(IndicatorMatrix::from_rows(&net, ragged).is_err());
        let ok = vec![vec![true, false]; net.num_layers()];
        assert!(IndicatorMatrix::from_rows(&net, ok).is_ok());
    }

    #[test]
    fn set_and_get_round_trip() {
        let net = net();
        let mut m = IndicatorMatrix::none(&net, 3);
        assert!(!m.is_forwarded(LayerId(2), 1));
        m.set(LayerId(2), 1, true).unwrap();
        assert!(m.is_forwarded(LayerId(2), 1));
        assert!(m.set(LayerId(99), 0, true).is_err());
        assert!(m.set(LayerId(0), 99, true).is_err());
        assert!(!m.is_forwarded(LayerId(99), 0));
    }
}
