//! The indicator matrix `I` (paper eq. 4, right).
//!
//! `I[j][k] = 1` means the intermediate feature maps `F^j_k` produced by
//! stage `S_k` at layer `L_j` are forwarded (through shared memory) to the
//! corresponding layer of every *later* stage. Forwarding more features
//! improves the accuracy of later stages but increases inter-CU traffic and
//! shared-memory residency; the paper constrains the fraction of reused
//! feature maps to 100% / 75% / 50% in its three search strategies.

use crate::error::DynamicError;
use mnc_nn::{LayerId, Network};
use serde::{Deserialize, Serialize};

/// Per-layer, per-stage feature-forwarding choices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndicatorMatrix {
    num_stages: usize,
    /// `data[layer * num_stages + stage]` — whether stage `stage`'s output
    /// of `layer` is forwarded to later stages. Flat row-major storage:
    /// one allocation per decoded genome instead of one per layer.
    data: Vec<bool>,
}

impl IndicatorMatrix {
    /// All feature maps are forwarded (the static-mapping behaviour the
    /// paper's "No Fmap constraint" search starts from).
    pub fn full(network: &Network, num_stages: usize) -> Self {
        IndicatorMatrix {
            num_stages: num_stages.max(1),
            data: vec![true; network.num_layers() * num_stages.max(1)],
        }
    }

    /// No feature maps are forwarded: every stage works from its own
    /// channels only.
    pub fn none(network: &Network, num_stages: usize) -> Self {
        IndicatorMatrix {
            num_stages: num_stages.max(1),
            data: vec![false; network.num_layers() * num_stages.max(1)],
        }
    }

    /// Builds an indicator matrix from explicit rows (`rows[layer][stage]`).
    ///
    /// # Errors
    ///
    /// Returns an error when the row count does not match the network or a
    /// row length differs from the others.
    pub fn from_rows(network: &Network, rows: Vec<Vec<bool>>) -> Result<Self, DynamicError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(DynamicError::InvalidStageCount { stages: 0 });
        }
        let num_stages = rows[0].len();
        for (index, row) in rows.iter().enumerate() {
            if row.len() != num_stages {
                return Err(DynamicError::ShapeMismatch {
                    expected: format!("{num_stages} stages"),
                    actual: format!("{} entries in row {index}", row.len()),
                });
            }
        }
        let data = rows.into_iter().flatten().collect();
        Self::from_flat(network, num_stages, data)
    }

    /// Builds an indicator matrix from flat row-major entries
    /// (`data[layer * num_stages + stage]`) — the allocation-light
    /// constructor genome decoding uses.
    ///
    /// # Errors
    ///
    /// Returns an error when the entry count does not match
    /// `network.num_layers() * num_stages`.
    pub fn from_flat(
        network: &Network,
        num_stages: usize,
        data: Vec<bool>,
    ) -> Result<Self, DynamicError> {
        if num_stages == 0 || data.is_empty() {
            return Err(DynamicError::InvalidStageCount { stages: 0 });
        }
        if data.len() != network.num_layers() * num_stages {
            return Err(DynamicError::ShapeMismatch {
                expected: format!("{} layer rows", network.num_layers()),
                actual: format!("{} rows", data.len() / num_stages),
            });
        }
        Ok(IndicatorMatrix { num_stages, data })
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Number of layer rows.
    pub fn num_layers(&self) -> usize {
        self.data.len() / self.num_stages.max(1)
    }

    /// Whether stage `stage`'s features of `layer` are forwarded to later
    /// stages. Out-of-range queries return `false`.
    pub fn is_forwarded(&self, layer: LayerId, stage: usize) -> bool {
        if stage >= self.num_stages {
            return false;
        }
        self.data
            .get(layer.0 * self.num_stages + stage)
            .copied()
            .unwrap_or(false)
    }

    /// One layer's forwarding row (`row(l)[s] == is_forwarded(l, s)`), or
    /// `None` for an out-of-range layer. Hot loops that test forwarding
    /// for many (layer, stage) pairs hoist the row once instead of paying
    /// the per-call double lookup.
    pub fn row(&self, layer: LayerId) -> Option<&[bool]> {
        let start = layer.0.checked_mul(self.num_stages)?;
        self.data.get(start..start + self.num_stages)
    }

    /// Sets one entry.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    pub fn set(
        &mut self,
        layer: LayerId,
        stage: usize,
        forwarded: bool,
    ) -> Result<(), DynamicError> {
        if layer.0 >= self.num_layers() {
            return Err(DynamicError::ShapeMismatch {
                expected: "valid layer index".to_string(),
                actual: format!("layer {}", layer.0),
            });
        }
        if stage >= self.num_stages {
            return Err(DynamicError::ShapeMismatch {
                expected: format!("stage < {}", self.num_stages),
                actual: format!("stage {stage}"),
            });
        }
        self.data[layer.0 * self.num_stages + stage] = forwarded;
        Ok(())
    }

    /// Fraction of *relevant* entries that are set: only stages `0..M-1`
    /// count, because the last stage has no later consumer. This is the
    /// "Fmap Reuse %" the paper reports and constrains.
    pub fn reuse_ratio(&self) -> f64 {
        if self.num_stages <= 1 || self.data.is_empty() {
            return 0.0;
        }
        let relevant = self.num_layers() * (self.num_stages - 1);
        set_count(&self.data, self.num_stages) as f64 / relevant as f64
    }

    /// Number of `(layer, stage)` pairs whose features are forwarded
    /// (stages `0..M-1` only).
    pub fn num_forwarded(&self) -> usize {
        if self.num_stages <= 1 {
            return 0;
        }
        set_count(&self.data, self.num_stages)
    }
}

/// Set bits over stages `0..num_stages-1` of every row of a flat
/// indicator buffer.
fn set_count(data: &[bool], num_stages: usize) -> usize {
    data.chunks_exact(num_stages)
        .map(|row| row.iter().take(num_stages - 1).filter(|b| **b).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{tiny_cnn, ModelPreset};

    fn net() -> Network {
        tiny_cnn(ModelPreset::cifar10())
    }

    #[test]
    fn full_and_none_have_extreme_reuse_ratios() {
        let net = net();
        let full = IndicatorMatrix::full(&net, 3);
        let none = IndicatorMatrix::none(&net, 3);
        assert_eq!(full.reuse_ratio(), 1.0);
        assert_eq!(none.reuse_ratio(), 0.0);
        assert_eq!(full.num_stages(), 3);
        assert_eq!(full.num_layers(), net.num_layers());
    }

    #[test]
    fn reuse_ratio_counts_only_non_final_stages() {
        let net = net();
        let mut m = IndicatorMatrix::none(&net, 2);
        // Setting the last stage's entries must not change the ratio.
        for layer in 0..net.num_layers() {
            m.set(LayerId(layer), 1, true).unwrap();
        }
        assert_eq!(m.reuse_ratio(), 0.0);
        m.set(LayerId(0), 0, true).unwrap();
        assert!((m.reuse_ratio() - 1.0 / net.num_layers() as f64).abs() < 1e-9);
        assert_eq!(m.num_forwarded(), 1);
    }

    #[test]
    fn single_stage_has_zero_reuse() {
        let net = net();
        let m = IndicatorMatrix::full(&net, 1);
        assert_eq!(m.reuse_ratio(), 0.0);
        assert_eq!(m.num_forwarded(), 0);
    }

    #[test]
    fn from_rows_validates_shape() {
        let net = net();
        assert!(IndicatorMatrix::from_rows(&net, vec![]).is_err());
        let short = vec![vec![true, false]; net.num_layers() - 1];
        assert!(IndicatorMatrix::from_rows(&net, short).is_err());
        let ragged: Vec<Vec<bool>> = (0..net.num_layers())
            .map(|i| {
                if i == 1 {
                    vec![true]
                } else {
                    vec![true, false]
                }
            })
            .collect();
        assert!(IndicatorMatrix::from_rows(&net, ragged).is_err());
        let ok = vec![vec![true, false]; net.num_layers()];
        assert!(IndicatorMatrix::from_rows(&net, ok).is_ok());
    }

    #[test]
    fn set_and_get_round_trip() {
        let net = net();
        let mut m = IndicatorMatrix::none(&net, 3);
        assert!(!m.is_forwarded(LayerId(2), 1));
        m.set(LayerId(2), 1, true).unwrap();
        assert!(m.is_forwarded(LayerId(2), 1));
        assert!(m.set(LayerId(99), 0, true).is_err());
        assert!(m.set(LayerId(0), 99, true).is_err());
        assert!(!m.is_forwarded(LayerId(99), 0));
    }
}
