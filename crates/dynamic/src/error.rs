//! Error types for the dynamic transformation.

use std::error::Error;
use std::fmt;

/// Errors produced while building partition/indicator matrices or
/// transforming a network.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicError {
    /// The number of stages is zero or otherwise unusable.
    InvalidStageCount {
        /// Requested number of stages.
        stages: usize,
    },
    /// A partition row does not describe a valid split.
    InvalidPartition {
        /// Index of the offending layer.
        layer: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The matrix was built for a different network or stage count than the
    /// one it is being used with.
    ShapeMismatch {
        /// What was expected.
        expected: String,
        /// What was provided.
        actual: String,
    },
    /// A configuration parameter of the accuracy model is invalid.
    InvalidAccuracyConfig {
        /// Description of the problem.
        reason: String,
    },
    /// An error bubbled up from the network representation.
    Network(mnc_nn::NetworkError),
}

impl fmt::Display for DynamicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicError::InvalidStageCount { stages } => {
                write!(f, "invalid stage count {stages}")
            }
            DynamicError::InvalidPartition { layer, reason } => {
                write!(f, "invalid partition for layer {layer}: {reason}")
            }
            DynamicError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            DynamicError::InvalidAccuracyConfig { reason } => {
                write!(f, "invalid accuracy model configuration: {reason}")
            }
            DynamicError::Network(err) => write!(f, "network error: {err}"),
        }
    }
}

impl Error for DynamicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DynamicError::Network(err) => Some(err),
            _ => None,
        }
    }
}

impl From<mnc_nn::NetworkError> for DynamicError {
    fn from(err: mnc_nn::NetworkError) -> Self {
        DynamicError::Network(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DynamicError::InvalidStageCount { stages: 0 }
            .to_string()
            .contains('0'));
        assert!(DynamicError::InvalidPartition {
            layer: 3,
            reason: "fractions sum to 0.5".to_string()
        }
        .to_string()
        .contains("0.5"));
    }

    #[test]
    fn network_error_is_wrapped_with_source() {
        let err: DynamicError = mnc_nn::NetworkError::EmptyNetwork.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<DynamicError>();
    }
}
