//! The partitioning matrix `P` (paper eq. 4, left).
//!
//! `P[j][i]` is the fraction of layer `L_j`'s width units assigned to stage
//! `S_i`. Rows of partitionable layers must be valid splits (non-negative
//! fractions summing to one); non-partitionable layers (pooling, global
//! pooling, classifiers) inherit the split of the closest preceding
//! partitionable layer when the network is transformed.

use crate::error::DynamicError;
use mnc_nn::{LayerId, Network};
use serde::{Deserialize, Serialize};

/// Granularity of the partition ratios explored by the search space
/// (paper §V-A uses 8 channel-partitioning ratios per layer).
pub const RATIO_QUANTUM: f64 = 1.0 / 8.0;

/// Per-layer width split across the inference stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionMatrix {
    num_stages: usize,
    /// `data[layer * num_stages + stage]` — fraction of layer `layer`'s
    /// width assigned to `stage`, one row per network layer
    /// (partitionable or not). Flat row-major storage: a matrix is built
    /// once per decoded genome on the search's hot path, so it costs one
    /// allocation instead of one per layer.
    data: Vec<f64>,
}

impl PartitionMatrix {
    /// Builds a partition where every partitionable layer is split evenly
    /// across `num_stages` stages.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::InvalidStageCount`] if `num_stages` is zero.
    pub fn uniform(network: &Network, num_stages: usize) -> Result<Self, DynamicError> {
        let fractions = vec![1.0 / num_stages.max(1) as f64; num_stages];
        Self::from_stage_fractions(network, &fractions)
    }

    /// Builds a partition where every partitionable layer uses the same
    /// split `fractions` (one entry per stage).
    ///
    /// # Errors
    ///
    /// Returns an error when `fractions` is empty or does not sum to one.
    pub fn from_stage_fractions(
        network: &Network,
        fractions: &[f64],
    ) -> Result<Self, DynamicError> {
        let rows = vec![fractions.to_vec(); network.num_layers()];
        Self::from_rows(network, rows)
    }

    /// Builds a partition from explicit per-layer rows (`rows[layer][stage]`).
    ///
    /// # Errors
    ///
    /// Returns an error when the row count does not match the network, a
    /// row has the wrong number of stages, or a partitionable layer's row
    /// is not a valid split (negative entries or sum different from 1).
    pub fn from_rows(network: &Network, rows: Vec<Vec<f64>>) -> Result<Self, DynamicError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(DynamicError::InvalidStageCount { stages: 0 });
        }
        let num_stages = rows[0].len();
        for (index, row) in rows.iter().enumerate() {
            if row.len() != num_stages {
                return Err(DynamicError::ShapeMismatch {
                    expected: format!("{num_stages} stages"),
                    actual: format!("{} entries in row {index}", row.len()),
                });
            }
        }
        let data = rows.into_iter().flatten().collect();
        Self::from_flat(network, num_stages, data)
    }

    /// Builds a partition from flat row-major fractions
    /// (`data[layer * num_stages + stage]`) — the allocation-light
    /// constructor genome decoding uses (one buffer instead of one row
    /// vector per layer).
    ///
    /// # Errors
    ///
    /// Same validation as [`PartitionMatrix::from_rows`].
    pub fn from_flat(
        network: &Network,
        num_stages: usize,
        data: Vec<f64>,
    ) -> Result<Self, DynamicError> {
        if num_stages == 0 || data.is_empty() {
            return Err(DynamicError::InvalidStageCount { stages: 0 });
        }
        if data.len() != network.num_layers() * num_stages {
            return Err(DynamicError::ShapeMismatch {
                expected: format!("{} layer rows", network.num_layers()),
                actual: format!("{} rows", data.len() / num_stages),
            });
        }
        for (index, row) in data.chunks_exact(num_stages).enumerate() {
            let layer = network
                .layer(LayerId(index))
                .expect("row count checked against the network");
            if !layer.is_partitionable() {
                continue;
            }
            if row.iter().any(|f| !f.is_finite() || *f < 0.0 || *f > 1.0) {
                return Err(DynamicError::InvalidPartition {
                    layer: index,
                    reason: "fractions must be finite and in [0, 1]".to_string(),
                });
            }
            let total: f64 = row.iter().sum();
            if (total - 1.0).abs() > 1e-6 {
                return Err(DynamicError::InvalidPartition {
                    layer: index,
                    reason: format!("fractions sum to {total}, expected 1"),
                });
            }
        }
        Ok(PartitionMatrix { num_stages, data })
    }

    /// Number of inference stages `M`.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Number of layer rows.
    pub fn num_layers(&self) -> usize {
        self.data.len() / self.num_stages.max(1)
    }

    /// The split row of a layer (`None` when out of range).
    pub fn row(&self, layer: LayerId) -> Option<&[f64]> {
        let start = layer.0.checked_mul(self.num_stages)?;
        self.data.get(start..start + self.num_stages)
    }

    /// Fraction of layer `layer`'s width assigned to `stage` (0 when out of
    /// range).
    pub fn fraction(&self, layer: LayerId, stage: usize) -> f64 {
        if stage >= self.num_stages {
            return 0.0;
        }
        self.data
            .get(layer.0 * self.num_stages + stage)
            .copied()
            .unwrap_or(0.0)
    }

    /// Cumulative fraction of layer `layer`'s width owned by stages
    /// `0..=stage`.
    pub fn cumulative_fraction(&self, layer: LayerId, stage: usize) -> f64 {
        self.row(layer)
            .map(|row| row.iter().take(stage + 1).sum::<f64>().min(1.0))
            .unwrap_or(0.0)
    }

    /// Replaces the row of one layer.
    ///
    /// # Errors
    ///
    /// Returns an error when the layer index is out of range, the row has
    /// the wrong number of stages, or is not a valid split.
    pub fn set_row(&mut self, layer: LayerId, row: Vec<f64>) -> Result<(), DynamicError> {
        if layer.0 >= self.num_layers() {
            return Err(DynamicError::ShapeMismatch {
                expected: format!("layer index < {}", self.num_layers()),
                actual: format!("layer index {}", layer.0),
            });
        }
        if row.len() != self.num_stages {
            return Err(DynamicError::ShapeMismatch {
                expected: format!("{} stages", self.num_stages),
                actual: format!("{} entries", row.len()),
            });
        }
        let total: f64 = row.iter().sum();
        if row.iter().any(|f| !f.is_finite() || *f < 0.0) || (total - 1.0).abs() > 1e-6 {
            return Err(DynamicError::InvalidPartition {
                layer: layer.0,
                reason: "row is not a valid split".to_string(),
            });
        }
        let start = layer.0 * self.num_stages;
        self.data[start..start + self.num_stages].copy_from_slice(&row);
        Ok(())
    }

    /// Quantises a vector of non-negative weights into a valid split whose
    /// entries are multiples of [`RATIO_QUANTUM`] (largest-remainder
    /// rounding). Useful for decoding genomes into partition rows.
    pub fn quantize_split(weights: &[f64]) -> Vec<f64> {
        let stages = weights.len().max(1);
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        let normalized: Vec<f64> = if total <= 0.0 {
            vec![1.0 / stages as f64; stages]
        } else {
            weights.iter().map(|w| w.max(0.0) / total).collect()
        };
        let slots = (1.0 / RATIO_QUANTUM).round() as i64;
        let raw: Vec<f64> = normalized.iter().map(|f| f * slots as f64).collect();
        let mut assigned: Vec<i64> = raw.iter().map(|r| r.floor() as i64).collect();
        let mut remaining = slots - assigned.iter().sum::<i64>();
        // Assign leftover slots to the entries with the largest remainders.
        let mut order: Vec<usize> = (0..stages).collect();
        order.sort_by(|&a, &b| {
            (raw[b] - raw[b].floor())
                .partial_cmp(&(raw[a] - raw[a].floor()))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut cursor = 0usize;
        while remaining > 0 {
            assigned[order[cursor % stages]] += 1;
            remaining -= 1;
            cursor += 1;
        }
        assigned
            .into_iter()
            .map(|a| a as f64 * RATIO_QUANTUM)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{tiny_cnn, ModelPreset};
    use proptest::prelude::*;

    fn net() -> Network {
        tiny_cnn(ModelPreset::cifar10())
    }

    #[test]
    fn uniform_split_sums_to_one() {
        let net = net();
        let p = PartitionMatrix::uniform(&net, 3).unwrap();
        assert_eq!(p.num_stages(), 3);
        assert_eq!(p.num_layers(), net.num_layers());
        for layer in net.partitionable_layers() {
            let row = p.row(layer).unwrap();
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stage_fractions_are_applied_to_every_layer() {
        let net = net();
        let p = PartitionMatrix::from_stage_fractions(&net, &[0.5, 0.25, 0.25]).unwrap();
        assert_eq!(p.fraction(LayerId(0), 0), 0.5);
        assert_eq!(p.fraction(LayerId(0), 2), 0.25);
        assert!((p.cumulative_fraction(LayerId(0), 1) - 0.75).abs() < 1e-9);
        assert_eq!(p.cumulative_fraction(LayerId(0), 2), 1.0);
    }

    #[test]
    fn invalid_splits_are_rejected() {
        let net = net();
        assert!(PartitionMatrix::from_stage_fractions(&net, &[]).is_err());
        assert!(PartitionMatrix::from_stage_fractions(&net, &[0.5, 0.2]).is_err());
        assert!(PartitionMatrix::from_stage_fractions(&net, &[1.2, -0.2]).is_err());
    }

    #[test]
    fn row_count_must_match_network() {
        let net = net();
        let rows = vec![vec![1.0]; net.num_layers() - 1];
        assert!(PartitionMatrix::from_rows(&net, rows).is_err());
        let ragged: Vec<Vec<f64>> = (0..net.num_layers())
            .map(|i| {
                if i == 2 {
                    vec![0.5, 0.5, 0.0, 0.0]
                } else {
                    vec![0.5, 0.5]
                }
            })
            .collect();
        assert!(PartitionMatrix::from_rows(&net, ragged).is_err());
    }

    #[test]
    fn non_partitionable_rows_are_not_validated_as_splits() {
        let net = net();
        // Layer 1 is a pooling layer: its row may be anything.
        let mut rows = vec![vec![0.5, 0.5]; net.num_layers()];
        rows[1] = vec![0.0, 0.0];
        assert!(PartitionMatrix::from_rows(&net, rows).is_ok());
    }

    #[test]
    fn set_row_validates() {
        let net = net();
        let mut p = PartitionMatrix::uniform(&net, 2).unwrap();
        assert!(p.set_row(LayerId(0), vec![0.75, 0.25]).is_ok());
        assert_eq!(p.fraction(LayerId(0), 0), 0.75);
        assert!(p.set_row(LayerId(0), vec![0.75]).is_err());
        assert!(p.set_row(LayerId(0), vec![0.75, 0.75]).is_err());
        assert!(p.set_row(LayerId(99), vec![0.5, 0.5]).is_err());
    }

    #[test]
    fn out_of_range_queries_return_zero() {
        let net = net();
        let p = PartitionMatrix::uniform(&net, 2).unwrap();
        assert_eq!(p.fraction(LayerId(99), 0), 0.0);
        assert_eq!(p.fraction(LayerId(0), 99), 0.0);
        assert!(p.row(LayerId(99)).is_none());
    }

    #[test]
    fn quantize_split_produces_quantised_valid_split() {
        let split = PartitionMatrix::quantize_split(&[3.0, 1.0, 1.0]);
        assert_eq!(split.len(), 3);
        assert!((split.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for f in &split {
            let slots = f / RATIO_QUANTUM;
            assert!((slots - slots.round()).abs() < 1e-9);
        }
        // Degenerate weights fall back to a uniform split.
        let fallback = PartitionMatrix::quantize_split(&[0.0, 0.0]);
        assert!((fallback[0] - 0.5).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_quantize_split_always_valid(weights in proptest::collection::vec(0.0f64..10.0, 1..6)) {
            let split = PartitionMatrix::quantize_split(&weights);
            prop_assert_eq!(split.len(), weights.len());
            prop_assert!((split.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(split.iter().all(|f| *f >= -1e-12 && *f <= 1.0 + 1e-12));
        }
    }
}
