//! Static-to-dynamic transformation of neural networks (paper §III-A).
//!
//! Map-and-Conquer partitions every layer of a network along its *width*
//! dimension into `M` contiguous channel subsets, one per inference stage,
//! and deploys the result as a multi-exit dynamic network: stage 1 holds
//! the most important channels and can terminate processing early, later
//! stages refine the prediction using their own channels plus whatever
//! upstream feature maps the *indicator matrix* lets them reuse.
//!
//! This crate implements the model-side machinery of that transformation:
//!
//! * [`partition`] — the partitioning matrix `P` (per-layer split ratios),
//! * [`indicator`] — the indicator matrix `I` (feature-map reuse choices),
//! * [`transform`] — building a [`DynamicNetwork`]: per-stage layer slices
//!   with their workloads and the inter-stage transfer requirements,
//! * [`dataset`] — a synthetic validation set with per-sample difficulty,
//! * [`accuracy`] — the statistical accuracy/early-exit model that replaces
//!   CIFAR-100 evaluation of trained multi-exit models (see `DESIGN.md` for
//!   the substitution argument).
//!
//! # Example
//!
//! ```
//! use mnc_dynamic::{DynamicNetwork, IndicatorMatrix, PartitionMatrix};
//! use mnc_nn::models::{visformer_tiny, ModelPreset};
//!
//! # fn main() -> Result<(), mnc_dynamic::DynamicError> {
//! let net = visformer_tiny(ModelPreset::cifar100());
//! let partition = PartitionMatrix::from_stage_fractions(&net, &[0.5, 0.25, 0.25])?;
//! let indicator = IndicatorMatrix::full(&net, 3);
//! let dynamic = DynamicNetwork::transform(&net, &partition, &indicator)?;
//! assert_eq!(dynamic.num_stages(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod dataset;
pub mod error;
pub mod indicator;
pub mod partition;
pub mod transform;

pub use accuracy::{AccuracyModel, AccuracyProfile, DynamicAccuracyReport};
pub use dataset::{DifficultyIndex, SyntheticSample, SyntheticValidationSet};
pub use error::DynamicError;
pub use indicator::IndicatorMatrix;
pub use partition::{PartitionMatrix, RATIO_QUANTUM};
pub use transform::{DynamicNetwork, LayerSlice, QuantSliceGrid, SliceGrid, Stage, StageTransfer};
