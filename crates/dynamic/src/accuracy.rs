//! Statistical accuracy and early-exit model for dynamic networks.
//!
//! The paper measures, for every candidate configuration, the accuracy of
//! each exit and the number of validation samples `N_i` that terminate at
//! stage `S_i` (eq. 16). Those numbers come from trained multi-exit models
//! evaluated on CIFAR-100; lacking training, this module models them
//! statistically (the substitution is argued in `DESIGN.md`):
//!
//! * every stage has a *capacity* `c_i ∈ [0, 1]`: the average, over
//!   partitionable layers, of the channel-importance mass visible to the
//!   stage (its own channels plus whatever earlier stages forward to it,
//!   after importance reordering — paper §V-D),
//! * the stage's standalone accuracy is `A_i = A_max · (1 − (1 − c_i)^k)`,
//!   a saturating function of capacity,
//! * a synthetic sample of difficulty `d` is classified correctly by stage
//!   `i` iff `d ≤ A_i`, and exits at the first stage whose exit confidence
//!   `q_i = A_i · exit_confidence` exceeds `d` (the last stage accepts
//!   everything that remains).

use crate::dataset::SyntheticValidationSet;
use crate::error::DynamicError;
use crate::transform::DynamicNetwork;
use mnc_nn::{ImportanceModel, LayerId};
use serde::{Deserialize, Serialize};

/// Accuracy-model parameters for one architecture/dataset pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyProfile {
    /// Top-1 accuracy of the unmodified pretrained network (the paper's
    /// `Acc_base`).
    pub baseline_accuracy: f64,
    /// Accuracy ceiling of the dynamic version at full capacity. Networks
    /// with heavy channel redundancy (VGG-19) can exceed their baseline;
    /// compact ones (Visformer) cannot.
    pub max_accuracy: f64,
    /// Exponent `k` of the saturating capacity→quality curve
    /// `1 − (1 − c)^k`; larger values mean more redundancy (half the
    /// channels already recover most of the accuracy).
    pub quality_exponent: f64,
    /// Exit-threshold confidence in `(0, 1]`: the fraction of a stage's
    /// accuracy used as its early-exit coverage. Values below 1 make exits
    /// conservative so early mistakes stay rare.
    pub exit_confidence: f64,
}

impl AccuracyProfile {
    /// Profile matching the paper's Visformer-on-CIFAR-100 numbers
    /// (baseline 88.09%, dynamic version at best on par with the baseline).
    pub fn visformer_cifar100() -> Self {
        AccuracyProfile {
            baseline_accuracy: 0.8809,
            max_accuracy: 0.8809,
            quality_exponent: 2.4,
            exit_confidence: 0.85,
        }
    }

    /// Profile matching the paper's VGG-19-on-CIFAR-100 numbers (baseline
    /// 80.55%, dynamic version up to ≈ 84.8% thanks to weight redundancy).
    pub fn vgg19_cifar100() -> Self {
        AccuracyProfile {
            baseline_accuracy: 0.8055,
            max_accuracy: 0.850,
            quality_exponent: 3.0,
            exit_confidence: 0.96,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::InvalidAccuracyConfig`] for accuracies or
    /// confidences outside `(0, 1]` or a non-positive exponent.
    pub fn validate(&self) -> Result<(), DynamicError> {
        let check_unit = |value: f64, what: &str| {
            if !(value.is_finite() && value > 0.0 && value <= 1.0) {
                Err(DynamicError::InvalidAccuracyConfig {
                    reason: format!("{what} must be in (0, 1], got {value}"),
                })
            } else {
                Ok(())
            }
        };
        check_unit(self.baseline_accuracy, "baseline accuracy")?;
        check_unit(self.max_accuracy, "maximum accuracy")?;
        check_unit(self.exit_confidence, "exit confidence")?;
        if !(self.quality_exponent.is_finite() && self.quality_exponent > 0.0) {
            return Err(DynamicError::InvalidAccuracyConfig {
                reason: format!(
                    "quality exponent must be positive, got {}",
                    self.quality_exponent
                ),
            });
        }
        Ok(())
    }
}

/// Per-configuration accuracy / exit statistics, the model-side inputs of
/// the paper's objective (eq. 16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicAccuracyReport {
    /// Standalone accuracy of each stage's exit.
    pub stage_accuracy: Vec<f64>,
    /// Capacity (visible importance mass) of each stage.
    pub stage_capacity: Vec<f64>,
    /// Number of samples exiting at each stage.
    pub exit_counts: Vec<usize>,
    /// The paper's `N_i`: samples correctly classified at stage `i` that
    /// every earlier stage misclassifies.
    pub newly_correct: Vec<usize>,
    /// Accuracy of the dynamic network under the early-exit policy.
    pub overall_accuracy: f64,
    /// Accuracy of the final stage (the paper's `Acc_SM`).
    pub final_stage_accuracy: f64,
    /// Mean number of stages executed per sample.
    pub average_stages_executed: f64,
    /// Number of validation samples evaluated.
    pub num_samples: usize,
}

impl DynamicAccuracyReport {
    /// Fraction of samples that exit before the final stage.
    pub fn early_exit_fraction(&self) -> f64 {
        if self.num_samples == 0 || self.exit_counts.is_empty() {
            return 0.0;
        }
        let early: usize = self
            .exit_counts
            .iter()
            .take(self.exit_counts.len() - 1)
            .sum();
        early as f64 / self.num_samples as f64
    }
}

/// Accuracy model binding an [`AccuracyProfile`] to a channel-importance
/// model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyModel {
    profile: AccuracyProfile,
    importance: ImportanceModel,
}

impl AccuracyModel {
    /// Creates an accuracy model.
    ///
    /// # Errors
    ///
    /// Returns an error when the profile parameters are invalid.
    pub fn new(
        profile: AccuracyProfile,
        importance: ImportanceModel,
    ) -> Result<Self, DynamicError> {
        profile.validate()?;
        Ok(AccuracyModel {
            profile,
            importance,
        })
    }

    /// The profile in use.
    pub fn profile(&self) -> &AccuracyProfile {
        &self.profile
    }

    /// The channel-importance model in use.
    pub fn importance(&self) -> &ImportanceModel {
        &self.importance
    }

    /// Capacity of a stage: average over partitionable layers of the
    /// importance mass visible to it (own channels plus forwarded ones,
    /// channels assigned to stages in decreasing-importance order).
    pub fn stage_capacity(&self, dynamic: &DynamicNetwork, stage: usize) -> f64 {
        let network = dynamic.network();
        let partition = dynamic.partition();
        let indicator = dynamic.indicator();
        let layers = network.partitionable_layers();
        if layers.is_empty() {
            return 1.0;
        }
        let mut total = 0.0;
        for layer in &layers {
            total += self.visible_mass(*layer, dynamic, partition, indicator, stage);
        }
        (total / layers.len() as f64).clamp(0.0, 1.0)
    }

    /// Importance mass of layer `layer` visible to `stage`.
    fn visible_mass(
        &self,
        layer: LayerId,
        dynamic: &DynamicNetwork,
        partition: &crate::partition::PartitionMatrix,
        indicator: &crate::indicator::IndicatorMatrix,
        stage: usize,
    ) -> f64 {
        let num_stages = dynamic.num_stages();
        // Mass of stage k's slice: channels are handed out in importance
        // order, so stage k owns the rank interval (cum_{k-1}, cum_k].
        let slice_mass = |k: usize| -> f64 {
            let upper = partition.cumulative_fraction(layer, k);
            let lower = if k == 0 {
                0.0
            } else {
                partition.cumulative_fraction(layer, k - 1)
            };
            self.importance.mass_of_top_fraction(layer, upper)
                - self.importance.mass_of_top_fraction(layer, lower)
        };
        let mut visible = slice_mass(stage.min(num_stages.saturating_sub(1)));
        for earlier in 0..stage.min(num_stages) {
            if indicator.is_forwarded(layer, earlier) {
                visible += slice_mass(earlier);
            }
        }
        visible.clamp(0.0, 1.0)
    }

    /// Saturating capacity→quality curve `1 − (1 − c)^k`.
    fn quality(&self, capacity: f64) -> f64 {
        1.0 - (1.0 - capacity.clamp(0.0, 1.0)).powf(self.profile.quality_exponent)
    }

    /// Standalone accuracy of stage `stage`'s exit.
    pub fn stage_accuracy(&self, dynamic: &DynamicNetwork, stage: usize) -> f64 {
        self.profile.max_accuracy * self.quality(self.stage_capacity(dynamic, stage))
    }

    /// Evaluates the dynamic network on a synthetic validation set,
    /// producing the exit histogram and accuracy figures the evaluator and
    /// the search objective consume.
    pub fn evaluate(
        &self,
        dynamic: &DynamicNetwork,
        dataset: &SyntheticValidationSet,
    ) -> DynamicAccuracyReport {
        let num_stages = dynamic.num_stages();
        let stage_capacity: Vec<f64> = (0..num_stages)
            .map(|s| self.stage_capacity(dynamic, s))
            .collect();
        let stage_accuracy: Vec<f64> = stage_capacity
            .iter()
            .map(|c| self.profile.max_accuracy * self.quality(*c))
            .collect();
        let exit_threshold: Vec<f64> = stage_accuracy
            .iter()
            .map(|a| a * self.profile.exit_confidence)
            .collect();

        let mut exit_counts = vec![0usize; num_stages];
        let mut newly_correct = vec![0usize; num_stages];
        let mut correct = 0usize;
        let mut stages_executed_total = 0usize;

        for sample in dataset.samples() {
            let d = sample.difficulty;
            // Early-exit policy: first stage confident enough, else last.
            let exit_stage = (0..num_stages)
                .find(|&i| d <= exit_threshold[i])
                .unwrap_or(num_stages - 1);
            exit_counts[exit_stage] += 1;
            stages_executed_total += exit_stage + 1;
            if d <= stage_accuracy[exit_stage] {
                correct += 1;
            }
            // The paper's N_i: correctly classified at i while all earlier
            // stages fail.
            if let Some(first_capable) = (0..num_stages).find(|&i| d <= stage_accuracy[i]) {
                newly_correct[first_capable] += 1;
            }
        }

        let num_samples = dataset.len();
        DynamicAccuracyReport {
            final_stage_accuracy: stage_accuracy.last().copied().unwrap_or(0.0),
            overall_accuracy: if num_samples == 0 {
                0.0
            } else {
                correct as f64 / num_samples as f64
            },
            average_stages_executed: if num_samples == 0 {
                0.0
            } else {
                stages_executed_total as f64 / num_samples as f64
            },
            stage_accuracy,
            stage_capacity,
            exit_counts,
            newly_correct,
            num_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicator::IndicatorMatrix;
    use crate::partition::PartitionMatrix;
    use mnc_nn::models::{vgg19, visformer, visformer_tiny, ModelPreset};
    use mnc_nn::Network;

    fn dynamic_with_reuse(net: &Network, reuse: bool) -> DynamicNetwork {
        let partition = PartitionMatrix::from_stage_fractions(net, &[0.5, 0.25, 0.25]).unwrap();
        let indicator = if reuse {
            IndicatorMatrix::full(net, 3)
        } else {
            IndicatorMatrix::none(net, 3)
        };
        DynamicNetwork::transform(net, &partition, &indicator).unwrap()
    }

    fn visformer_model(net: &Network) -> AccuracyModel {
        AccuracyModel::new(
            AccuracyProfile::visformer_cifar100(),
            ImportanceModel::synthetic(net, 11, 1.5),
        )
        .unwrap()
    }

    #[test]
    fn profiles_validate() {
        assert!(AccuracyProfile::visformer_cifar100().validate().is_ok());
        assert!(AccuracyProfile::vgg19_cifar100().validate().is_ok());
        let bad = AccuracyProfile {
            baseline_accuracy: 1.5,
            ..AccuracyProfile::visformer_cifar100()
        };
        assert!(bad.validate().is_err());
        let bad_exp = AccuracyProfile {
            quality_exponent: 0.0,
            ..AccuracyProfile::visformer_cifar100()
        };
        assert!(bad_exp.validate().is_err());
        let bad_conf = AccuracyProfile {
            exit_confidence: 0.0,
            ..AccuracyProfile::visformer_cifar100()
        };
        assert!(AccuracyModel::new(
            bad_conf,
            ImportanceModel::synthetic(&visformer_tiny(ModelPreset::cifar100()), 1, 1.0)
        )
        .is_err());
    }

    #[test]
    fn capacities_increase_across_stages_with_full_reuse() {
        let net = visformer(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let model = visformer_model(&net);
        let c0 = model.stage_capacity(&dynamic, 0);
        let c1 = model.stage_capacity(&dynamic, 1);
        let c2 = model.stage_capacity(&dynamic, 2);
        assert!(c0 < c1 && c1 < c2, "{c0} {c1} {c2}");
        assert!(
            (c2 - 1.0).abs() < 1e-6,
            "final stage sees everything, got {c2}"
        );
        // With importance reordering, the first stage's half of the
        // channels holds clearly more than half the mass.
        assert!(c0 > 0.55, "stage-0 capacity {c0}");
    }

    #[test]
    fn final_accuracy_with_full_reuse_is_close_to_baseline() {
        let net = visformer(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let model = visformer_model(&net);
        let report = model.evaluate(&dynamic, &SyntheticValidationSet::cifar100_like(3));
        assert!(
            (report.final_stage_accuracy - 0.8809).abs() < 0.01,
            "final accuracy {}",
            report.final_stage_accuracy
        );
        assert!(
            report.overall_accuracy > 0.85,
            "overall accuracy {}",
            report.overall_accuracy
        );
        assert_eq!(report.num_samples, 10_000);
        assert_eq!(report.exit_counts.iter().sum::<usize>(), 10_000);
        assert_eq!(report.newly_correct.len(), 3);
    }

    #[test]
    fn removing_feature_reuse_costs_accuracy() {
        let net = visformer(ModelPreset::cifar100());
        let model = visformer_model(&net);
        let dataset = SyntheticValidationSet::cifar100_like(5);
        let with_reuse = model.evaluate(&dynamic_with_reuse(&net, true), &dataset);
        let without_reuse = model.evaluate(&dynamic_with_reuse(&net, false), &dataset);
        assert!(
            without_reuse.final_stage_accuracy < with_reuse.final_stage_accuracy - 0.02,
            "reuse {} vs none {}",
            with_reuse.final_stage_accuracy,
            without_reuse.final_stage_accuracy
        );
    }

    #[test]
    fn most_samples_exit_early() {
        let net = vgg19(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let model = AccuracyModel::new(
            AccuracyProfile::vgg19_cifar100(),
            ImportanceModel::synthetic(&net, 13, 2.0),
        )
        .unwrap();
        let report = model.evaluate(&dynamic, &SyntheticValidationSet::cifar100_like(9));
        // Paper §VI-D: more than 80% of samples classified at earlier stages.
        assert!(
            report.early_exit_fraction() > 0.7,
            "early exit fraction {}",
            report.early_exit_fraction()
        );
        assert!(report.average_stages_executed < 2.0);
        // Redundant VGG-19 can beat its static baseline.
        assert!(report.final_stage_accuracy > 0.8055);
    }

    #[test]
    fn reordering_ablation_reduces_early_capacity() {
        let net = visformer(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let ranked = visformer_model(&net);
        let unranked = AccuracyModel::new(
            AccuracyProfile::visformer_cifar100(),
            ImportanceModel::uniform(&net),
        )
        .unwrap();
        assert!(ranked.stage_capacity(&dynamic, 0) > unranked.stage_capacity(&dynamic, 0) + 0.1);
    }

    #[test]
    fn empty_dataset_is_handled() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let model = visformer_model(&net);
        let report = model.evaluate(&dynamic, &SyntheticValidationSet::generate(0, 1, 1.0));
        assert_eq!(report.overall_accuracy, 0.0);
        assert_eq!(report.num_samples, 0);
        assert_eq!(report.early_exit_fraction(), 0.0);
    }

    #[test]
    fn accessors_expose_profile_and_importance() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let model = visformer_model(&net);
        assert_eq!(model.profile().baseline_accuracy, 0.8809);
        assert!(model.importance().concentration() > 0.0);
    }
}
