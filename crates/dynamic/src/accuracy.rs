//! Statistical accuracy and early-exit model for dynamic networks.
//!
//! The paper measures, for every candidate configuration, the accuracy of
//! each exit and the number of validation samples `N_i` that terminate at
//! stage `S_i` (eq. 16). Those numbers come from trained multi-exit models
//! evaluated on CIFAR-100; lacking training, this module models them
//! statistically (the substitution is argued in `DESIGN.md`):
//!
//! * every stage has a *capacity* `c_i ∈ [0, 1]`: the average, over
//!   partitionable layers, of the channel-importance mass visible to the
//!   stage (its own channels plus whatever earlier stages forward to it,
//!   after importance reordering — paper §V-D),
//! * the stage's standalone accuracy is `A_i = A_max · (1 − (1 − c_i)^k)`,
//!   a saturating function of capacity,
//! * a synthetic sample of difficulty `d` is classified correctly by stage
//!   `i` iff `d ≤ A_i`, and exits at the first stage whose exit confidence
//!   `q_i = A_i · exit_confidence` exceeds `d` (the last stage accepts
//!   everything that remains).

use crate::dataset::SyntheticValidationSet;
use crate::error::DynamicError;
use crate::transform::DynamicNetwork;
use mnc_nn::{ChannelRanking, ImportanceModel, LayerId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Accuracy-model parameters for one architecture/dataset pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyProfile {
    /// Top-1 accuracy of the unmodified pretrained network (the paper's
    /// `Acc_base`).
    pub baseline_accuracy: f64,
    /// Accuracy ceiling of the dynamic version at full capacity. Networks
    /// with heavy channel redundancy (VGG-19) can exceed their baseline;
    /// compact ones (Visformer) cannot.
    pub max_accuracy: f64,
    /// Exponent `k` of the saturating capacity→quality curve
    /// `1 − (1 − c)^k`; larger values mean more redundancy (half the
    /// channels already recover most of the accuracy).
    pub quality_exponent: f64,
    /// Exit-threshold confidence in `(0, 1]`: the fraction of a stage's
    /// accuracy used as its early-exit coverage. Values below 1 make exits
    /// conservative so early mistakes stay rare.
    pub exit_confidence: f64,
}

impl AccuracyProfile {
    /// Profile matching the paper's Visformer-on-CIFAR-100 numbers
    /// (baseline 88.09%, dynamic version at best on par with the baseline).
    pub fn visformer_cifar100() -> Self {
        AccuracyProfile {
            baseline_accuracy: 0.8809,
            max_accuracy: 0.8809,
            quality_exponent: 2.4,
            exit_confidence: 0.85,
        }
    }

    /// Profile matching the paper's VGG-19-on-CIFAR-100 numbers (baseline
    /// 80.55%, dynamic version up to ≈ 84.8% thanks to weight redundancy).
    pub fn vgg19_cifar100() -> Self {
        AccuracyProfile {
            baseline_accuracy: 0.8055,
            max_accuracy: 0.850,
            quality_exponent: 3.0,
            exit_confidence: 0.96,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DynamicError::InvalidAccuracyConfig`] for accuracies or
    /// confidences outside `(0, 1]` or a non-positive exponent.
    pub fn validate(&self) -> Result<(), DynamicError> {
        let check_unit = |value: f64, what: &str| {
            if !(value.is_finite() && value > 0.0 && value <= 1.0) {
                Err(DynamicError::InvalidAccuracyConfig {
                    reason: format!("{what} must be in (0, 1], got {value}"),
                })
            } else {
                Ok(())
            }
        };
        check_unit(self.baseline_accuracy, "baseline accuracy")?;
        check_unit(self.max_accuracy, "maximum accuracy")?;
        check_unit(self.exit_confidence, "exit confidence")?;
        if !(self.quality_exponent.is_finite() && self.quality_exponent > 0.0) {
            return Err(DynamicError::InvalidAccuracyConfig {
                reason: format!(
                    "quality exponent must be positive, got {}",
                    self.quality_exponent
                ),
            });
        }
        Ok(())
    }
}

/// Per-configuration accuracy / exit statistics, the model-side inputs of
/// the paper's objective (eq. 16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicAccuracyReport {
    /// Standalone accuracy of each stage's exit.
    pub stage_accuracy: Vec<f64>,
    /// Capacity (visible importance mass) of each stage.
    pub stage_capacity: Vec<f64>,
    /// Number of samples exiting at each stage.
    pub exit_counts: Vec<usize>,
    /// The paper's `N_i`: samples correctly classified at stage `i` that
    /// every earlier stage misclassifies.
    pub newly_correct: Vec<usize>,
    /// Accuracy of the dynamic network under the early-exit policy.
    pub overall_accuracy: f64,
    /// Accuracy of the final stage (the paper's `Acc_SM`).
    pub final_stage_accuracy: f64,
    /// Mean number of stages executed per sample.
    pub average_stages_executed: f64,
    /// Number of validation samples evaluated.
    pub num_samples: usize,
}

impl DynamicAccuracyReport {
    /// Fraction of samples that exit before the final stage.
    pub fn early_exit_fraction(&self) -> f64 {
        if self.num_samples == 0 || self.exit_counts.is_empty() {
            return 0.0;
        }
        let early: usize = self
            .exit_counts
            .iter()
            .take(self.exit_counts.len() - 1)
            .sum();
        early as f64 / self.num_samples as f64
    }
}

/// Accuracy model binding an [`AccuracyProfile`] to a channel-importance
/// model.
///
/// Carries a lazily-built table of per-layer [`ChannelRanking`]s: building
/// a ranking sorts the layer's scores, and the importance model is fixed
/// for the model's lifetime, so the sorts are paid once instead of on
/// every `mass_of_top_fraction` call. The table is derived state and is
/// excluded from equality and serialization (the hand-written impls below
/// mirror what `#[derive]` produced before the field existed).
#[derive(Debug)]
pub struct AccuracyModel {
    profile: AccuracyProfile,
    importance: ImportanceModel,
    rankings: OnceLock<Vec<Option<ChannelRanking>>>,
    /// Memoised per-(layer, slot-row) slice-mass rows for the keyed fast
    /// path (see [`AccuracyModel::evaluate_parts_keyed`]). Derived state
    /// like `rankings`: excluded from equality and serialization, reset on
    /// clone-through-deserialize. Bounded naturally — a layer has at most
    /// `C(slots + stages - 1, stages - 1)` distinct slot rows (165 for the
    /// paper's 8 slots over 4 stages).
    mass_cache: Mutex<HashMap<u64, MassRow>>,
}

/// One memoised slice-mass row plus the inputs it was derived from, so a
/// hit is only honoured for the exact same (layer, fractions) pair —
/// mis-keyed or colliding lookups fall back to recomputation instead of
/// producing wrong masses.
#[derive(Debug, Clone)]
struct MassRow {
    layer: LayerId,
    fractions: Vec<f64>,
    masses: Vec<f64>,
}

impl Clone for AccuracyModel {
    fn clone(&self) -> Self {
        AccuracyModel {
            profile: self.profile,
            importance: self.importance.clone(),
            rankings: self.rankings.clone(),
            mass_cache: Mutex::new(
                self.mass_cache
                    .lock()
                    .expect("mass cache lock never poisoned")
                    .clone(),
            ),
        }
    }
}

impl PartialEq for AccuracyModel {
    fn eq(&self, other: &Self) -> bool {
        self.profile == other.profile && self.importance == other.importance
    }
}

impl Serialize for AccuracyModel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("profile".to_string(), Serialize::to_value(&self.profile)),
            (
                "importance".to_string(),
                Serialize::to_value(&self.importance),
            ),
        ])
    }
}

impl Deserialize for AccuracyModel {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(AccuracyModel {
            profile: Deserialize::from_value(serde::value::field(value, "profile")?)?,
            importance: Deserialize::from_value(serde::value::field(value, "importance")?)?,
            rankings: OnceLock::new(),
            mass_cache: Mutex::new(HashMap::new()),
        })
    }
}

impl AccuracyModel {
    /// Creates an accuracy model.
    ///
    /// # Errors
    ///
    /// Returns an error when the profile parameters are invalid.
    pub fn new(
        profile: AccuracyProfile,
        importance: ImportanceModel,
    ) -> Result<Self, DynamicError> {
        profile.validate()?;
        Ok(AccuracyModel {
            profile,
            importance,
            rankings: OnceLock::new(),
            mass_cache: Mutex::new(HashMap::new()),
        })
    }

    /// The cached per-layer rankings, sorted on first use.
    fn cached_rankings(&self) -> &[Option<ChannelRanking>] {
        self.rankings.get_or_init(|| self.importance.rankings())
    }

    /// Mass of the top `fraction` of `layer`'s channels, read from the
    /// cached rankings. Matches [`ImportanceModel::mass_of_top_fraction`]
    /// exactly: rankings are a pure function of the (fixed) scores.
    fn cached_mass(&self, layer: LayerId, fraction: f64) -> f64 {
        match self.cached_rankings().get(layer.0).and_then(Option::as_ref) {
            Some(ranking) => ranking.mass_of_top_fraction(fraction),
            None => fraction.clamp(0.0, 1.0),
        }
    }

    /// Per-(layer, stage) slice masses: the importance mass of the rank
    /// interval stage `k` owns in `layer`, memoised so the capacity
    /// computation stops recomputing it per (stage, earlier-stage) pair.
    /// Each entry is built with the same expression `visible_mass` uses,
    /// so reading the table is bit-identical to recomputing. Flat
    /// layer-major storage (`layers.len() × num_stages`), one allocation.
    fn slice_mass_rows(
        &self,
        partition: &crate::partition::PartitionMatrix,
        num_stages: usize,
        layers: &[LayerId],
    ) -> Vec<f64> {
        let mut masses = Vec::with_capacity(layers.len() * num_stages);
        for layer in layers {
            self.push_mass_row(partition, num_stages, *layer, &mut masses);
        }
        masses
    }

    /// Appends one layer's slice-mass row to `masses` — the single
    /// expression every mass in the model comes from.
    fn push_mass_row(
        &self,
        partition: &crate::partition::PartitionMatrix,
        num_stages: usize,
        layer: LayerId,
        masses: &mut Vec<f64>,
    ) {
        for k in 0..num_stages {
            let upper = partition.cumulative_fraction(layer, k);
            let lower = if k == 0 {
                0.0
            } else {
                partition.cumulative_fraction(layer, k - 1)
            };
            masses.push(self.cached_mass(layer, upper) - self.cached_mass(layer, lower));
        }
    }

    /// The profile in use.
    pub fn profile(&self) -> &AccuracyProfile {
        &self.profile
    }

    /// The channel-importance model in use.
    pub fn importance(&self) -> &ImportanceModel {
        &self.importance
    }

    /// Capacity of a stage: average over partitionable layers of the
    /// importance mass visible to it (own channels plus forwarded ones,
    /// channels assigned to stages in decreasing-importance order).
    pub fn stage_capacity(&self, dynamic: &DynamicNetwork, stage: usize) -> f64 {
        let network = dynamic.network();
        let partition = dynamic.partition();
        let indicator = dynamic.indicator();
        let layers = network.partitionable_layers();
        if layers.is_empty() {
            return 1.0;
        }
        let mut total = 0.0;
        for layer in &layers {
            total += self.visible_mass(*layer, dynamic, partition, indicator, stage);
        }
        (total / layers.len() as f64).clamp(0.0, 1.0)
    }

    /// Importance mass of layer `layer` visible to `stage`.
    fn visible_mass(
        &self,
        layer: LayerId,
        dynamic: &DynamicNetwork,
        partition: &crate::partition::PartitionMatrix,
        indicator: &crate::indicator::IndicatorMatrix,
        stage: usize,
    ) -> f64 {
        let num_stages = dynamic.num_stages();
        // Mass of stage k's slice: channels are handed out in importance
        // order, so stage k owns the rank interval (cum_{k-1}, cum_k].
        let slice_mass = |k: usize| -> f64 {
            let upper = partition.cumulative_fraction(layer, k);
            let lower = if k == 0 {
                0.0
            } else {
                partition.cumulative_fraction(layer, k - 1)
            };
            self.importance.mass_of_top_fraction(layer, upper)
                - self.importance.mass_of_top_fraction(layer, lower)
        };
        let mut visible = slice_mass(stage.min(num_stages.saturating_sub(1)));
        for earlier in 0..stage.min(num_stages) {
            if indicator.is_forwarded(layer, earlier) {
                visible += slice_mass(earlier);
            }
        }
        visible.clamp(0.0, 1.0)
    }

    /// Saturating capacity→quality curve `1 − (1 − c)^k`.
    fn quality(&self, capacity: f64) -> f64 {
        1.0 - (1.0 - capacity.clamp(0.0, 1.0)).powf(self.profile.quality_exponent)
    }

    /// Standalone accuracy of stage `stage`'s exit.
    pub fn stage_accuracy(&self, dynamic: &DynamicNetwork, stage: usize) -> f64 {
        self.profile.max_accuracy * self.quality(self.stage_capacity(dynamic, stage))
    }

    /// Evaluates the dynamic network on a synthetic validation set,
    /// producing the exit histogram and accuracy figures the evaluator and
    /// the search objective consume.
    ///
    /// This is the closed-form fast path: capacities come from the
    /// memoised slice-mass table and the exit histogram from O(stages ·
    /// log n) binary searches over the dataset's sorted-difficulty index
    /// instead of a loop over every sample. The counts it produces are
    /// **bit-identical** to [`AccuracyModel::evaluate_reference`] (the
    /// retained naive loop, property-tested in `mnc_core`'s `fast_path`
    /// suite): every count is an order-independent integer defined by the
    /// same `d <= x` comparisons, namely
    ///
    /// * a sample exits within the first `i+1` stages iff its difficulty
    ///   is ≤ the running max of the exit thresholds `t_0..=t_i`,
    /// * every early exit is correct (`t_i = A_i · confidence ≤ A_i`), and
    ///   a last-stage sample is correct iff its difficulty is ≤ the final
    ///   stage accuracy,
    /// * a sample is first classifiable at stage `i` iff its difficulty is
    ///   ≤ the running max of `A_0..=A_i` but not of `A_0..=A_{i-1}`.
    pub fn evaluate(
        &self,
        dynamic: &DynamicNetwork,
        dataset: &SyntheticValidationSet,
    ) -> DynamicAccuracyReport {
        self.evaluate_parts(
            dynamic.partition(),
            dynamic.indicator(),
            &dynamic.network().partitionable_layers(),
            dataset,
        )
    }

    /// [`AccuracyModel::evaluate`] from the transformation's defining
    /// parts — the accuracy model only ever reads the partition, the
    /// indicator and the partitionable-layer list, so callers that never
    /// materialise a [`DynamicNetwork`] (the fused evaluation path) call
    /// this directly with a precomputed layer list.
    pub fn evaluate_parts(
        &self,
        partition: &crate::partition::PartitionMatrix,
        indicator: &crate::indicator::IndicatorMatrix,
        layers: &[LayerId],
        dataset: &SyntheticValidationSet,
    ) -> DynamicAccuracyReport {
        let num_stages = partition.num_stages();
        let stage_capacity = if layers.is_empty() {
            vec![1.0; num_stages]
        } else {
            let masses = self.slice_mass_rows(partition, num_stages, layers);
            self.capacities_from_masses(&masses, indicator, layers, num_stages)
        };
        self.report_from_capacities(stage_capacity, num_stages, dataset)
    }

    /// [`AccuracyModel::evaluate_parts`] with caller-supplied per-layer
    /// row keys that memoise the slice-mass rows across evaluations.
    ///
    /// `row_keys[i]` must be a value that changes whenever `layers[i]`'s
    /// partition row changes (the search derives it from the genome's
    /// integer slot row, whose space per layer is tiny — at most 165
    /// distinct rows for 8 slots over 4 stages — so rows repeat constantly
    /// across a population while full structures never do). A key hit is
    /// verified against the stored layer and fractions before it is
    /// honoured, so a stale or colliding key degrades to recomputation,
    /// never to wrong masses; every mass is produced by the same
    /// expression as [`AccuracyModel::evaluate_parts`], making the report
    /// bit-identical.
    pub fn evaluate_parts_keyed(
        &self,
        partition: &crate::partition::PartitionMatrix,
        indicator: &crate::indicator::IndicatorMatrix,
        layers: &[LayerId],
        dataset: &SyntheticValidationSet,
        row_keys: &[u64],
    ) -> DynamicAccuracyReport {
        if row_keys.len() != layers.len() {
            return self.evaluate_parts(partition, indicator, layers, dataset);
        }
        let num_stages = partition.num_stages();
        let stage_capacity = if layers.is_empty() {
            vec![1.0; num_stages]
        } else {
            let mut masses = Vec::with_capacity(layers.len() * num_stages);
            let mut fractions = Vec::with_capacity(num_stages);
            for (layer, key) in layers.iter().zip(row_keys) {
                fractions.clear();
                fractions.extend((0..num_stages).map(|k| partition.fraction(*layer, k)));
                // Probe under a short-lived lock; misses recompute with
                // the lock *released* so parallel evaluation workers never
                // serialise behind each other's row computations (the row
                // is a pure function — a racing duplicate insert is
                // benign, last writer wins with an equal value).
                let hit = {
                    let cache = self
                        .mass_cache
                        .lock()
                        .expect("mass cache lock never poisoned");
                    match cache.get(key) {
                        Some(row) if row.layer == *layer && row.fractions == fractions => {
                            masses.extend_from_slice(&row.masses);
                            true
                        }
                        _ => false,
                    }
                };
                if !hit {
                    let start = masses.len();
                    self.push_mass_row(partition, num_stages, *layer, &mut masses);
                    self.mass_cache
                        .lock()
                        .expect("mass cache lock never poisoned")
                        .insert(
                            *key,
                            MassRow {
                                layer: *layer,
                                fractions: fractions.clone(),
                                masses: masses[start..].to_vec(),
                            },
                        );
                }
            }
            self.capacities_from_masses(&masses, indicator, layers, num_stages)
        };
        self.report_from_capacities(stage_capacity, num_stages, dataset)
    }

    /// Stage capacities from flat slice-mass rows: same loop order and
    /// arithmetic as `stage_capacity`/`visible_mass`, with the mass
    /// differences computed once per (layer, stage) instead of once per
    /// (layer, stage, earlier-stage) triple.
    fn capacities_from_masses(
        &self,
        masses: &[f64],
        indicator: &crate::indicator::IndicatorMatrix,
        layers: &[LayerId],
        num_stages: usize,
    ) -> Vec<f64> {
        (0..num_stages)
            .map(|stage| {
                let mut total = 0.0;
                for (row, layer) in masses.chunks_exact(num_stages).zip(layers) {
                    let mut visible = row[stage];
                    for (earlier, slice) in row.iter().enumerate().take(stage) {
                        if indicator.is_forwarded(*layer, earlier) {
                            visible += slice;
                        }
                    }
                    total += visible.clamp(0.0, 1.0);
                }
                (total / layers.len() as f64).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Everything downstream of the capacities: accuracies, exit
    /// histogram, correctness counts and the assembled report. Shared by
    /// the plain and keyed paths so they cannot drift.
    fn report_from_capacities(
        &self,
        stage_capacity: Vec<f64>,
        num_stages: usize,
        dataset: &SyntheticValidationSet,
    ) -> DynamicAccuracyReport {
        let stage_accuracy: Vec<f64> = stage_capacity
            .iter()
            .map(|c| self.profile.max_accuracy * self.quality(*c))
            .collect();
        let exit_threshold: Vec<f64> = stage_accuracy
            .iter()
            .map(|a| a * self.profile.exit_confidence)
            .collect();

        let num_samples = dataset.len();
        let index = dataset.difficulty_index();
        let mut exit_counts = vec![0usize; num_stages];
        let mut newly_correct = vec![0usize; num_stages];

        // Exit histogram. `caught` = samples that exit within the stages
        // processed so far = count(d ≤ running max threshold); the last
        // stage absorbs everything that remains (caught or not).
        let mut caught = 0usize;
        let mut running_threshold = f64::NEG_INFINITY;
        for (stage, threshold) in exit_threshold
            .iter()
            .enumerate()
            .take(num_stages.saturating_sub(1))
        {
            running_threshold = running_threshold.max(*threshold);
            let cumulative = index.count_at_most(running_threshold);
            exit_counts[stage] = cumulative - caught;
            caught = cumulative;
        }
        exit_counts[num_stages - 1] = num_samples - caught;

        let stages_executed_total: usize = exit_counts
            .iter()
            .enumerate()
            .map(|(stage, count)| (stage + 1) * count)
            .sum();

        // Early exits are always correct: the exit threshold is the stage
        // accuracy scaled by a confidence in (0, 1], and IEEE
        // multiplication by a factor ≤ 1 never rounds a non-negative
        // product above the multiplicand, so `d ≤ t_i` implies
        // `d ≤ A_i`. Last-stage samples are correct iff `d ≤ A_last` and
        // they were not caught earlier — so the total is whichever of the
        // two prefixes (caught early, or within the final accuracy)
        // reaches further.
        let final_capable = index.count_at_most(stage_accuracy[num_stages - 1]);
        let correct = caught.max(final_capable);

        // The paper's N_i: first stage whose standalone accuracy reaches
        // the sample, via the running max of the accuracies.
        let mut capable = 0usize;
        let mut running_accuracy = f64::NEG_INFINITY;
        for (stage, accuracy) in stage_accuracy.iter().enumerate() {
            running_accuracy = running_accuracy.max(*accuracy);
            let cumulative = index.count_at_most(running_accuracy);
            newly_correct[stage] = cumulative - capable;
            capable = cumulative;
        }

        DynamicAccuracyReport {
            final_stage_accuracy: stage_accuracy.last().copied().unwrap_or(0.0),
            overall_accuracy: if num_samples == 0 {
                0.0
            } else {
                correct as f64 / num_samples as f64
            },
            average_stages_executed: if num_samples == 0 {
                0.0
            } else {
                stages_executed_total as f64 / num_samples as f64
            },
            stage_accuracy,
            stage_capacity,
            exit_counts,
            newly_correct,
            num_samples,
        }
    }

    /// The naive per-sample evaluation loop — the pre-fast-path
    /// implementation, retained as the oracle for the
    /// fast-path-equivalence property tests. Do not use in hot paths:
    /// it is O(samples × stages) and re-sorts channel rankings.
    pub fn evaluate_reference(
        &self,
        dynamic: &DynamicNetwork,
        dataset: &SyntheticValidationSet,
    ) -> DynamicAccuracyReport {
        let num_stages = dynamic.num_stages();
        let stage_capacity: Vec<f64> = (0..num_stages)
            .map(|s| self.stage_capacity(dynamic, s))
            .collect();
        let stage_accuracy: Vec<f64> = stage_capacity
            .iter()
            .map(|c| self.profile.max_accuracy * self.quality(*c))
            .collect();
        let exit_threshold: Vec<f64> = stage_accuracy
            .iter()
            .map(|a| a * self.profile.exit_confidence)
            .collect();

        let mut exit_counts = vec![0usize; num_stages];
        let mut newly_correct = vec![0usize; num_stages];
        let mut correct = 0usize;
        let mut stages_executed_total = 0usize;

        for sample in dataset.samples() {
            let d = sample.difficulty;
            // Early-exit policy: first stage confident enough, else last.
            let exit_stage = (0..num_stages)
                .find(|&i| d <= exit_threshold[i])
                .unwrap_or(num_stages - 1);
            exit_counts[exit_stage] += 1;
            stages_executed_total += exit_stage + 1;
            if d <= stage_accuracy[exit_stage] {
                correct += 1;
            }
            // The paper's N_i: correctly classified at i while all earlier
            // stages fail.
            if let Some(first_capable) = (0..num_stages).find(|&i| d <= stage_accuracy[i]) {
                newly_correct[first_capable] += 1;
            }
        }

        let num_samples = dataset.len();
        DynamicAccuracyReport {
            final_stage_accuracy: stage_accuracy.last().copied().unwrap_or(0.0),
            overall_accuracy: if num_samples == 0 {
                0.0
            } else {
                correct as f64 / num_samples as f64
            },
            average_stages_executed: if num_samples == 0 {
                0.0
            } else {
                stages_executed_total as f64 / num_samples as f64
            },
            stage_accuracy,
            stage_capacity,
            exit_counts,
            newly_correct,
            num_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicator::IndicatorMatrix;
    use crate::partition::PartitionMatrix;
    use mnc_nn::models::{vgg19, visformer, visformer_tiny, ModelPreset};
    use mnc_nn::Network;

    fn dynamic_with_reuse(net: &Network, reuse: bool) -> DynamicNetwork {
        let partition = PartitionMatrix::from_stage_fractions(net, &[0.5, 0.25, 0.25]).unwrap();
        let indicator = if reuse {
            IndicatorMatrix::full(net, 3)
        } else {
            IndicatorMatrix::none(net, 3)
        };
        DynamicNetwork::transform(net, &partition, &indicator).unwrap()
    }

    fn visformer_model(net: &Network) -> AccuracyModel {
        AccuracyModel::new(
            AccuracyProfile::visformer_cifar100(),
            ImportanceModel::synthetic(net, 11, 1.5),
        )
        .unwrap()
    }

    #[test]
    fn profiles_validate() {
        assert!(AccuracyProfile::visformer_cifar100().validate().is_ok());
        assert!(AccuracyProfile::vgg19_cifar100().validate().is_ok());
        let bad = AccuracyProfile {
            baseline_accuracy: 1.5,
            ..AccuracyProfile::visformer_cifar100()
        };
        assert!(bad.validate().is_err());
        let bad_exp = AccuracyProfile {
            quality_exponent: 0.0,
            ..AccuracyProfile::visformer_cifar100()
        };
        assert!(bad_exp.validate().is_err());
        let bad_conf = AccuracyProfile {
            exit_confidence: 0.0,
            ..AccuracyProfile::visformer_cifar100()
        };
        assert!(AccuracyModel::new(
            bad_conf,
            ImportanceModel::synthetic(&visformer_tiny(ModelPreset::cifar100()), 1, 1.0)
        )
        .is_err());
    }

    #[test]
    fn capacities_increase_across_stages_with_full_reuse() {
        let net = visformer(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let model = visformer_model(&net);
        let c0 = model.stage_capacity(&dynamic, 0);
        let c1 = model.stage_capacity(&dynamic, 1);
        let c2 = model.stage_capacity(&dynamic, 2);
        assert!(c0 < c1 && c1 < c2, "{c0} {c1} {c2}");
        assert!(
            (c2 - 1.0).abs() < 1e-6,
            "final stage sees everything, got {c2}"
        );
        // With importance reordering, the first stage's half of the
        // channels holds clearly more than half the mass.
        assert!(c0 > 0.55, "stage-0 capacity {c0}");
    }

    #[test]
    fn final_accuracy_with_full_reuse_is_close_to_baseline() {
        let net = visformer(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let model = visformer_model(&net);
        let report = model.evaluate(&dynamic, &SyntheticValidationSet::cifar100_like(3));
        assert!(
            (report.final_stage_accuracy - 0.8809).abs() < 0.01,
            "final accuracy {}",
            report.final_stage_accuracy
        );
        assert!(
            report.overall_accuracy > 0.85,
            "overall accuracy {}",
            report.overall_accuracy
        );
        assert_eq!(report.num_samples, 10_000);
        assert_eq!(report.exit_counts.iter().sum::<usize>(), 10_000);
        assert_eq!(report.newly_correct.len(), 3);
    }

    #[test]
    fn removing_feature_reuse_costs_accuracy() {
        let net = visformer(ModelPreset::cifar100());
        let model = visformer_model(&net);
        let dataset = SyntheticValidationSet::cifar100_like(5);
        let with_reuse = model.evaluate(&dynamic_with_reuse(&net, true), &dataset);
        let without_reuse = model.evaluate(&dynamic_with_reuse(&net, false), &dataset);
        assert!(
            without_reuse.final_stage_accuracy < with_reuse.final_stage_accuracy - 0.02,
            "reuse {} vs none {}",
            with_reuse.final_stage_accuracy,
            without_reuse.final_stage_accuracy
        );
    }

    #[test]
    fn most_samples_exit_early() {
        let net = vgg19(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let model = AccuracyModel::new(
            AccuracyProfile::vgg19_cifar100(),
            ImportanceModel::synthetic(&net, 13, 2.0),
        )
        .unwrap();
        let report = model.evaluate(&dynamic, &SyntheticValidationSet::cifar100_like(9));
        // Paper §VI-D: more than 80% of samples classified at earlier stages.
        assert!(
            report.early_exit_fraction() > 0.7,
            "early exit fraction {}",
            report.early_exit_fraction()
        );
        assert!(report.average_stages_executed < 2.0);
        // Redundant VGG-19 can beat its static baseline.
        assert!(report.final_stage_accuracy > 0.8055);
    }

    #[test]
    fn reordering_ablation_reduces_early_capacity() {
        let net = visformer(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let ranked = visformer_model(&net);
        let unranked = AccuracyModel::new(
            AccuracyProfile::visformer_cifar100(),
            ImportanceModel::uniform(&net),
        )
        .unwrap();
        assert!(ranked.stage_capacity(&dynamic, 0) > unranked.stage_capacity(&dynamic, 0) + 0.1);
    }

    #[test]
    fn empty_dataset_is_handled() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let dynamic = dynamic_with_reuse(&net, true);
        let model = visformer_model(&net);
        let report = model.evaluate(&dynamic, &SyntheticValidationSet::generate(0, 1, 1.0));
        assert_eq!(report.overall_accuracy, 0.0);
        assert_eq!(report.num_samples, 0);
        assert_eq!(report.early_exit_fraction(), 0.0);
    }

    #[test]
    fn fast_path_matches_reference_loop() {
        let net = visformer(ModelPreset::cifar100());
        let model = visformer_model(&net);
        let dataset = SyntheticValidationSet::cifar100_like(17);
        for reuse in [true, false] {
            let dynamic = dynamic_with_reuse(&net, reuse);
            let fast = model.evaluate(&dynamic, &dataset);
            let reference = model.evaluate_reference(&dynamic, &dataset);
            assert_eq!(fast, reference);
            // PartialEq would accept -0.0 == 0.0; the fast path promises
            // bit identity.
            assert_eq!(
                fast.overall_accuracy.to_bits(),
                reference.overall_accuracy.to_bits()
            );
            assert_eq!(
                fast.average_stages_executed.to_bits(),
                reference.average_stages_executed.to_bits()
            );
            for (a, b) in fast.stage_capacity.iter().zip(&reference.stage_capacity) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in fast.stage_accuracy.iter().zip(&reference.stage_accuracy) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn fast_path_handles_single_stage_and_empty_dataset() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let partition = PartitionMatrix::uniform(&net, 1).unwrap();
        let indicator = IndicatorMatrix::full(&net, 1);
        let dynamic = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
        let model = visformer_model(&net);
        let dataset = SyntheticValidationSet::generate(500, 3, 1.0);
        assert_eq!(
            model.evaluate(&dynamic, &dataset),
            model.evaluate_reference(&dynamic, &dataset)
        );
        let empty = SyntheticValidationSet::generate(0, 3, 1.0);
        assert_eq!(
            model.evaluate(&dynamic, &empty),
            model.evaluate_reference(&dynamic, &empty)
        );
    }

    #[test]
    fn accessors_expose_profile_and_importance() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let model = visformer_model(&net);
        assert_eq!(model.profile().baseline_accuracy, 0.8809);
        assert!(model.importance().concentration() > 0.0);
    }
}
