//! Static-to-dynamic transformation: building the per-stage layer slices.
//!
//! Given a network, a partitioning matrix `P` and an indicator matrix `I`,
//! [`DynamicNetwork::transform`] produces the `M` inference stages of
//! paper eq. 5/6. Every stage holds, for every layer, a *slice* describing
//! the fraction of width units it computes (`out_frac`), the fraction of
//! the previous layer's features it can see (`in_frac` — its own slice plus
//! forwarded slices of earlier stages), the resulting workload and the
//! bytes it must pull from each earlier stage through shared memory.

use crate::error::DynamicError;
use crate::indicator::IndicatorMatrix;
use crate::partition::PartitionMatrix;
use mnc_nn::{FeatureShape, Layer, LayerId, LayerKind, Network, SliceCost};
use serde::{Deserialize, Serialize};

/// Bytes a layer slice must receive from one earlier stage before it can
/// start (the `F^{j-1}_k · I^{j-1}_k` term feeding eq. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageTransfer {
    /// The producing stage (always smaller than the consuming stage).
    pub from_stage: usize,
    /// Feature bytes to move through shared memory.
    pub bytes: f64,
}

/// One layer's slice inside one stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerSlice {
    /// The layer this slice belongs to.
    pub layer: LayerId,
    /// Fraction of the layer's width units computed by this stage.
    pub out_frac: f64,
    /// Fraction of the previous layer's width visible to this stage.
    pub in_frac: f64,
    /// Workload of the slice.
    pub cost: SliceCost,
    /// Feature transfers required from earlier stages at this layer.
    pub incoming: Vec<StageTransfer>,
}

impl LayerSlice {
    /// Total bytes this slice needs from earlier stages.
    pub fn incoming_bytes(&self) -> f64 {
        self.incoming.iter().map(|t| t.bytes).sum()
    }
}

/// One inference stage `S_i`: a sliced copy of every layer, ending in its
/// own exit (the classifier slice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage index (0 = the first stage to execute / earliest exit).
    pub index: usize,
    /// Per-layer slices, in network layer order.
    pub slices: Vec<LayerSlice>,
}

impl Stage {
    /// Total workload of the stage (sum of its slices).
    pub fn total_cost(&self) -> SliceCost {
        self.slices.iter().map(|s| s.cost).sum()
    }

    /// Total bytes the stage pulls from earlier stages.
    pub fn total_incoming_bytes(&self) -> f64 {
        self.slices.iter().map(LayerSlice::incoming_bytes).sum()
    }
}

/// The allocation-light evaluation view of a dynamic transformation.
///
/// [`DynamicNetwork::transform`] materialises the full stage/slice
/// structure — including a clone of the network and the matrices — which
/// costs two orders of magnitude more allocations than the arithmetic it
/// performs. Hot evaluation paths (the search loop evaluates thousands of
/// configurations whose structures never repeat) only ever consume three
/// things per slice: its workload, its width fraction and the derived
/// transfer bytes. [`SliceGrid::compute`] produces exactly those, in flat
/// storage (three allocations total), by running the *same* recursion in
/// the same order — every value is bit-identical to the corresponding
/// [`DynamicNetwork`] field (property-tested in this module and end-to-end
/// in `mnc_core`'s fused-evaluation suite).
#[derive(Debug, Clone, PartialEq)]
pub struct SliceGrid {
    num_stages: usize,
    num_layers: usize,
    /// `costs[stage * num_layers + layer]` — slice workloads, stage-major
    /// so the performance model walks each stage contiguously.
    costs: Vec<SliceCost>,
    /// `own_fracs[layer * num_stages + stage]` — width fraction each stage
    /// computes, layer-major like the recursion that fills it.
    own_fracs: Vec<f64>,
    stored_feature_bytes: f64,
}

/// Validates the (network, partition, indicator) shape agreement the grid
/// builders require — the same checks, in the same order, with the same
/// errors as [`DynamicNetwork::transform`]. Returns the stage count.
fn validate_grid_shapes(
    network: &Network,
    partition: &PartitionMatrix,
    indicator: &IndicatorMatrix,
) -> Result<usize, DynamicError> {
    let num_stages = partition.num_stages();
    if num_stages == 0 {
        return Err(DynamicError::InvalidStageCount { stages: 0 });
    }
    if indicator.num_stages() != num_stages {
        return Err(DynamicError::ShapeMismatch {
            expected: format!("{num_stages} stages in indicator"),
            actual: format!("{}", indicator.num_stages()),
        });
    }
    if partition.num_layers() != network.num_layers()
        || indicator.num_layers() != network.num_layers()
    {
        return Err(DynamicError::ShapeMismatch {
            expected: format!("{} layers", network.num_layers()),
            actual: format!(
                "partition {} / indicator {} layers",
                partition.num_layers(),
                indicator.num_layers()
            ),
        });
    }
    Ok(num_stages)
}

/// The shared layer-major transform recursion behind both grid builders:
/// identical expressions and accumulation order to
/// [`DynamicNetwork::transform`], with each slice handed to `record`
/// instead of materialised. `record` returns `Ok(false)` to abort (the
/// quantised builder bails on an off-grid fraction), in which case the
/// function returns `None`. On success it returns the flat layer-major
/// `own_fracs` matrix and the stored-feature byte total (same separate
/// pass and summation order as the transform).
fn slice_recursion<R>(
    network: &Network,
    partition: &PartitionMatrix,
    indicator: &IndicatorMatrix,
    num_stages: usize,
    mut record: R,
) -> Result<Option<(Vec<f64>, f64)>, DynamicError>
where
    R: FnMut(usize, LayerId, &Layer, &FeatureShape, f64, f64) -> Result<bool, DynamicError>,
{
    let num_layers = network.num_layers();
    let mut own_fracs = vec![0.0f64; num_layers * num_stages];
    let mut prev_own: Vec<f64> = vec![1.0; num_stages];
    let default_frac = 1.0 / num_stages as f64;

    for (layer_id, layer) in network.iter() {
        let input_shape = network.input_shape_of(layer_id)?;
        let prev_layer = layer_id.0.checked_sub(1).map(LayerId);

        // The previous layer's forwarding row, hoisted out of the
        // stage x earlier-stage loop (every row has `num_stages`
        // entries, validated at matrix construction).
        let prev_forwarded = prev_layer.and_then(|prev| indicator.row(prev));
        for stage in 0..num_stages {
            let in_frac = if let Some(forwarded) = prev_forwarded {
                let mut visible = prev_own[stage];
                for (earlier, own) in prev_own.iter().enumerate().take(stage) {
                    if forwarded[earlier] {
                        visible += own;
                    }
                }
                visible.min(1.0)
            } else {
                1.0
            };

            let out_frac = match layer.kind {
                _ if layer.is_partitionable() => partition.fraction(layer_id, stage),
                LayerKind::Pool { .. } => prev_own[stage],
                LayerKind::GlobalPool => in_frac,
                LayerKind::Classifier { .. } => 1.0,
                // Unreachable today: every non-partitionable kind is
                // listed above, but stay conservative for new kinds.
                _ => default_frac,
            };
            let out_frac = out_frac.clamp(0.0, 1.0);

            if !record(stage, layer_id, layer, &input_shape, out_frac, in_frac)? {
                return Ok(None);
            }
            own_fracs[layer_id.0 * num_stages + stage] = out_frac;
        }

        prev_own
            .copy_from_slice(&own_fracs[layer_id.0 * num_stages..(layer_id.0 + 1) * num_stages]);
    }

    let mut stored_feature_bytes = 0.0;
    for (layer_id, _) in network.iter() {
        let bytes = network.output_shape_of(layer_id)?.num_bytes() as f64;
        let forwarded = indicator
            .row(layer_id)
            .expect("layer count validated above");
        for (stage, own) in own_fracs[layer_id.0 * num_stages..(layer_id.0 + 1) * num_stages]
            .iter()
            .enumerate()
            .take(num_stages.saturating_sub(1))
        {
            if forwarded[stage] {
                stored_feature_bytes += bytes * own;
            }
        }
    }

    Ok(Some((own_fracs, stored_feature_bytes)))
}

impl SliceGrid {
    /// Runs the transform recursion without materialising the per-stage
    /// slice structure.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DynamicNetwork::transform`] on the same
    /// inputs.
    pub fn compute(
        network: &Network,
        partition: &PartitionMatrix,
        indicator: &IndicatorMatrix,
    ) -> Result<Self, DynamicError> {
        let num_stages = validate_grid_shapes(network, partition, indicator)?;
        let num_layers = network.num_layers();
        let mut costs = vec![SliceCost::zero(); num_stages * num_layers];
        let (own_fracs, stored_feature_bytes) = slice_recursion(
            network,
            partition,
            indicator,
            num_stages,
            |stage, layer_id, layer, input_shape, out_frac, in_frac| {
                costs[stage * num_layers + layer_id.0] =
                    layer.slice_cost(input_shape, out_frac, in_frac)?;
                Ok(true)
            },
        )?
        .expect("the cost recorder never aborts");

        Ok(SliceGrid {
            num_stages,
            num_layers,
            costs,
            own_fracs,
            stored_feature_bytes,
        })
    }

    /// Number of inference stages `M`.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Number of network layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Workload of `layer`'s slice in `stage`.
    pub fn cost(&self, stage: usize, layer: usize) -> &SliceCost {
        &self.costs[stage * self.num_layers + layer]
    }

    /// Width fraction of `layer` computed by `stage` — bit-identical to
    /// [`DynamicNetwork::own_fraction`].
    pub fn own_fraction(&self, layer: usize, stage: usize) -> f64 {
        self.own_fracs[layer * self.num_stages + stage]
    }

    /// Bytes of forwarded features that must stay resident in shared
    /// memory — bit-identical to [`DynamicNetwork::stored_feature_bytes`].
    pub fn stored_feature_bytes(&self) -> f64 {
        self.stored_feature_bytes
    }
}

/// [`SliceGrid`] for configurations whose slice fractions all sit on the
/// exact 1/8-width grid the search's genome encoding produces: slices are
/// recorded as integer eighths (`out_k`, `in_k`) instead of computed
/// [`SliceCost`]s, so a quantised estimate table can resolve each slice's
/// latency/energy with a single read and the per-slice workload
/// arithmetic disappears from the hot path entirely.
///
/// [`QuantSliceGrid::compute`] runs the same recursion as
/// [`SliceGrid::compute`] (the fractions it derives are bit-equal — sums,
/// `min` and `clamp` of exact multiples of 1/8 stay exact in IEEE
/// arithmetic) and returns `None` as soon as any fraction leaves the
/// grid, letting callers fall back to the general path.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantSliceGrid {
    num_stages: usize,
    num_layers: usize,
    /// `[out_k, in_k]` in eighths, `indices[stage * num_layers + layer]`.
    indices: Vec<[u8; 2]>,
    /// `own_fracs[layer * num_stages + stage]`, exactly as [`SliceGrid`].
    own_fracs: Vec<f64>,
    stored_feature_bytes: f64,
}

/// `frac` as exact eighths, or `None` when it is off the 1/8 grid.
fn eighths(frac: f64) -> Option<u8> {
    let scaled = frac * 8.0;
    if (0.0..=8.0).contains(&scaled) && scaled.fract() == 0.0 {
        Some(scaled as u8)
    } else {
        None
    }
}

impl QuantSliceGrid {
    /// Runs the transform recursion in integer eighths. Returns
    /// `Ok(None)` when a fraction falls off the 1/8 grid (a configuration
    /// not produced by the genome encoding).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SliceGrid::compute`] on the same inputs.
    pub fn compute(
        network: &Network,
        partition: &PartitionMatrix,
        indicator: &IndicatorMatrix,
    ) -> Result<Option<Self>, DynamicError> {
        let num_stages = validate_grid_shapes(network, partition, indicator)?;
        let num_layers = network.num_layers();
        let mut indices = vec![[0u8; 2]; num_stages * num_layers];
        let Some((own_fracs, stored_feature_bytes)) = slice_recursion(
            network,
            partition,
            indicator,
            num_stages,
            |stage, layer_id, _layer, _input_shape, out_frac, in_frac| {
                let (Some(out_k), Some(in_k)) = (eighths(out_frac), eighths(in_frac)) else {
                    return Ok(false);
                };
                indices[stage * num_layers + layer_id.0] = [out_k, in_k];
                Ok(true)
            },
        )?
        else {
            return Ok(None);
        };

        Ok(Some(QuantSliceGrid {
            num_stages,
            num_layers,
            indices,
            own_fracs,
            stored_feature_bytes,
        }))
    }

    /// Number of inference stages `M`.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Number of network layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// `(out_k, in_k)` of `layer`'s slice in `stage`, in eighths.
    #[inline]
    pub fn slice_eighths(&self, stage: usize, layer: usize) -> (usize, usize) {
        let [out_k, in_k] = self.indices[stage * self.num_layers + layer];
        (out_k as usize, in_k as usize)
    }

    /// Width fraction of `layer` computed by `stage` — bit-identical to
    /// [`DynamicNetwork::own_fraction`].
    pub fn own_fraction(&self, layer: usize, stage: usize) -> f64 {
        self.own_fracs[layer * self.num_stages + stage]
    }

    /// Bytes of forwarded features that must stay resident in shared
    /// memory — bit-identical to [`DynamicNetwork::stored_feature_bytes`].
    pub fn stored_feature_bytes(&self) -> f64 {
        self.stored_feature_bytes
    }
}

/// A network transformed into `M` concurrent multi-exit stages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicNetwork {
    network: Network,
    partition: PartitionMatrix,
    indicator: IndicatorMatrix,
    stages: Vec<Stage>,
    /// `own_fracs[layer][stage]` — width fraction each stage computes.
    own_fracs: Vec<Vec<f64>>,
    /// `visible_fracs[layer][stage]` — width fraction of the layer *output*
    /// visible to each stage once forwarding is taken into account.
    visible_fracs: Vec<Vec<f64>>,
    stored_feature_bytes: f64,
}

impl DynamicNetwork {
    /// Transforms `network` into a dynamic multi-exit network.
    ///
    /// # Errors
    ///
    /// Returns an error when the partition/indicator matrices do not match
    /// the network or each other, or when a slice cost cannot be computed.
    pub fn transform(
        network: &Network,
        partition: &PartitionMatrix,
        indicator: &IndicatorMatrix,
    ) -> Result<Self, DynamicError> {
        let num_stages = partition.num_stages();
        if num_stages == 0 {
            return Err(DynamicError::InvalidStageCount { stages: 0 });
        }
        if indicator.num_stages() != num_stages {
            return Err(DynamicError::ShapeMismatch {
                expected: format!("{num_stages} stages in indicator"),
                actual: format!("{}", indicator.num_stages()),
            });
        }
        if partition.num_layers() != network.num_layers()
            || indicator.num_layers() != network.num_layers()
        {
            return Err(DynamicError::ShapeMismatch {
                expected: format!("{} layers", network.num_layers()),
                actual: format!(
                    "partition {} / indicator {} layers",
                    partition.num_layers(),
                    indicator.num_layers()
                ),
            });
        }

        let num_layers = network.num_layers();
        let mut own_fracs = vec![vec![0.0; num_stages]; num_layers];
        let mut visible_fracs = vec![vec![0.0; num_stages]; num_layers];
        let mut stages: Vec<Stage> = (0..num_stages)
            .map(|index| Stage {
                index,
                slices: Vec::with_capacity(num_layers),
            })
            .collect();

        // Per stage: the width fraction of the previous layer's output this
        // stage computed itself (starts at 1.0: the input image is fully
        // visible to every stage from shared memory).
        let mut prev_own: Vec<f64> = vec![1.0; num_stages];
        let default_frac = 1.0 / num_stages as f64;

        for (layer_id, layer) in network.iter() {
            let input_shape = network.input_shape_of(layer_id)?;
            let prev_layer = layer_id.0.checked_sub(1).map(LayerId);

            for stage in 0..num_stages {
                // Visibility of the previous layer's output: the stage's own
                // slice plus every forwarded slice of earlier stages.
                let in_frac = if let Some(prev) = prev_layer {
                    let mut visible = prev_own[stage];
                    for (earlier, own) in prev_own.iter().enumerate().take(stage) {
                        if indicator.is_forwarded(prev, earlier) {
                            visible += own;
                        }
                    }
                    visible.min(1.0)
                } else {
                    1.0
                };

                let out_frac = match layer.kind {
                    _ if layer.is_partitionable() => partition.fraction(layer_id, stage),
                    LayerKind::Pool { .. } => prev_own[stage],
                    LayerKind::GlobalPool => in_frac,
                    LayerKind::Classifier { .. } => 1.0,
                    // Unreachable today: every non-partitionable kind is
                    // listed above, but stay conservative for new kinds.
                    _ => default_frac,
                };
                let out_frac = out_frac.clamp(0.0, 1.0);

                let cost = layer.slice_cost(&input_shape, out_frac, in_frac)?;

                let mut incoming = Vec::new();
                if let Some(prev) = prev_layer {
                    let prev_output_bytes = network.output_shape_of(prev)?.num_bytes() as f64;
                    for (earlier, own) in prev_own.iter().enumerate().take(stage) {
                        if indicator.is_forwarded(prev, earlier) && *own > 0.0 {
                            incoming.push(StageTransfer {
                                from_stage: earlier,
                                bytes: prev_output_bytes * own,
                            });
                        }
                    }
                }

                own_fracs[layer_id.0][stage] = out_frac;
                visible_fracs[layer_id.0][stage] = {
                    // Visibility of *this* layer's output for downstream
                    // consumers and for the accuracy model: own slice plus
                    // forwarded earlier slices at this layer.
                    let mut visible = out_frac;
                    for (earlier, own) in own_fracs[layer_id.0].iter().enumerate().take(stage) {
                        if indicator.is_forwarded(layer_id, earlier) {
                            visible += own;
                        }
                    }
                    visible.min(1.0)
                };
                stages[stage].slices.push(LayerSlice {
                    layer: layer_id,
                    out_frac,
                    in_frac,
                    cost,
                    incoming,
                });
            }

            prev_own.copy_from_slice(&own_fracs[layer_id.0]);
        }

        // Features that must stay resident in shared memory: every forwarded
        // slice of every non-final stage (paper constraint size(F, I) < M).
        let mut stored_feature_bytes = 0.0;
        for (layer_id, _) in network.iter() {
            let bytes = network.output_shape_of(layer_id)?.num_bytes() as f64;
            for (stage, own) in own_fracs[layer_id.0]
                .iter()
                .enumerate()
                .take(num_stages.saturating_sub(1))
            {
                if indicator.is_forwarded(layer_id, stage) {
                    stored_feature_bytes += bytes * own;
                }
            }
        }

        Ok(DynamicNetwork {
            network: network.clone(),
            partition: partition.clone(),
            indicator: indicator.clone(),
            stages,
            own_fracs,
            visible_fracs,
            stored_feature_bytes,
        })
    }

    /// The original (static) network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The partitioning matrix used for the transformation.
    pub fn partition(&self) -> &PartitionMatrix {
        &self.partition
    }

    /// The indicator matrix used for the transformation.
    pub fn indicator(&self) -> &IndicatorMatrix {
        &self.indicator
    }

    /// Number of inference stages `M`.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// All stages, in execution-priority order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// One stage by index.
    pub fn stage(&self, index: usize) -> Option<&Stage> {
        self.stages.get(index)
    }

    /// Width fraction of `layer` computed by `stage` (0 when out of range).
    pub fn own_fraction(&self, layer: LayerId, stage: usize) -> f64 {
        self.own_fracs
            .get(layer.0)
            .and_then(|row| row.get(stage))
            .copied()
            .unwrap_or(0.0)
    }

    /// Width fraction of `layer`'s output visible to `stage` after
    /// feature-map forwarding (0 when out of range).
    pub fn visible_fraction(&self, layer: LayerId, stage: usize) -> f64 {
        self.visible_fracs
            .get(layer.0)
            .and_then(|row| row.get(stage))
            .copied()
            .unwrap_or(0.0)
    }

    /// Bytes of forwarded intermediate features that must remain resident
    /// in shared memory for the duration of an inference.
    pub fn stored_feature_bytes(&self) -> f64 {
        self.stored_feature_bytes
    }

    /// Fraction of forwardable feature maps that are actually forwarded
    /// (the paper's "Fmap reuse" percentage).
    pub fn fmap_reuse_ratio(&self) -> f64 {
        self.indicator.reuse_ratio()
    }

    /// Total bytes moved between stages over one full (all-stages)
    /// inference.
    pub fn total_transfer_bytes(&self) -> f64 {
        self.stages.iter().map(Stage::total_incoming_bytes).sum()
    }

    /// Sum of the workloads of stages `0..=stage` — the work performed when
    /// an input exits at `stage`.
    pub fn cumulative_cost(&self, stage: usize) -> SliceCost {
        self.stages
            .iter()
            .take(stage + 1)
            .map(Stage::total_cost)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{tiny_cnn, vgg19, visformer_tiny, ModelPreset};
    use proptest::prelude::*;

    fn three_stage(net: &Network) -> DynamicNetwork {
        let partition = PartitionMatrix::from_stage_fractions(net, &[0.5, 0.25, 0.25]).unwrap();
        let indicator = IndicatorMatrix::full(net, 3);
        DynamicNetwork::transform(net, &partition, &indicator).unwrap()
    }

    #[test]
    fn stages_cover_every_layer() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let dynamic = three_stage(&net);
        assert_eq!(dynamic.num_stages(), 3);
        for stage in dynamic.stages() {
            assert_eq!(stage.slices.len(), net.num_layers());
        }
        assert!(dynamic.stage(0).is_some());
        assert!(dynamic.stage(3).is_none());
    }

    #[test]
    fn slice_workloads_sum_close_to_static_network_with_full_reuse() {
        // With full forwarding and a 3-way split, the summed MACs across
        // stages exceed a single static pass only modestly (input channels
        // are shared, output channels are disjoint).
        let net = tiny_cnn(ModelPreset::cifar10());
        let dynamic = three_stage(&net);
        let static_macs = net.total_cost().macs;
        let dynamic_macs: f64 = dynamic.stages().iter().map(|s| s.total_cost().macs).sum();
        assert!(dynamic_macs >= static_macs * 0.6);
        assert!(dynamic_macs <= static_macs * 2.5);
    }

    #[test]
    fn first_stage_has_no_incoming_transfers() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let dynamic = three_stage(&net);
        assert_eq!(dynamic.stage(0).unwrap().total_incoming_bytes(), 0.0);
        // Later stages with full forwarding do receive features.
        assert!(dynamic.stage(1).unwrap().total_incoming_bytes() > 0.0);
        assert!(dynamic.stage(2).unwrap().total_incoming_bytes() > 0.0);
    }

    #[test]
    fn no_forwarding_means_no_transfers_and_no_stored_features() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let partition = PartitionMatrix::uniform(&net, 3).unwrap();
        let indicator = IndicatorMatrix::none(&net, 3);
        let dynamic = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
        assert_eq!(dynamic.total_transfer_bytes(), 0.0);
        assert_eq!(dynamic.stored_feature_bytes(), 0.0);
        assert_eq!(dynamic.fmap_reuse_ratio(), 0.0);
    }

    #[test]
    fn full_forwarding_makes_later_stages_see_everything() {
        let net = tiny_cnn(ModelPreset::cifar10());
        let dynamic = three_stage(&net);
        let last_conv = LayerId(2);
        // Stage 2 sees its own slice plus both forwarded slices = 1.0.
        assert!((dynamic.visible_fraction(last_conv, 2) - 1.0).abs() < 1e-9);
        // Stage 0 only sees its own slice.
        assert!((dynamic.visible_fraction(last_conv, 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn classifier_slices_emit_all_logits() {
        let net = tiny_cnn(ModelPreset::cifar100());
        let dynamic = three_stage(&net);
        let classifier_id = net.classifier().unwrap().0;
        for stage in dynamic.stages() {
            let slice = &stage.slices[classifier_id.0];
            assert_eq!(slice.out_frac, 1.0);
        }
    }

    #[test]
    fn mismatched_matrices_are_rejected() {
        let net = tiny_cnn(ModelPreset::cifar10());
        let other = visformer_tiny(ModelPreset::cifar100());
        let partition = PartitionMatrix::uniform(&net, 3).unwrap();
        let indicator_two = IndicatorMatrix::full(&net, 2);
        assert!(DynamicNetwork::transform(&net, &partition, &indicator_two).is_err());
        let partition_other = PartitionMatrix::uniform(&other, 3).unwrap();
        let indicator = IndicatorMatrix::full(&net, 3);
        assert!(DynamicNetwork::transform(&net, &partition_other, &indicator).is_err());
    }

    #[test]
    fn cumulative_cost_is_monotone_in_stage() {
        let net = vgg19(ModelPreset::cifar100());
        let dynamic = three_stage(&net);
        let c0 = dynamic.cumulative_cost(0).macs;
        let c1 = dynamic.cumulative_cost(1).macs;
        let c2 = dynamic.cumulative_cost(2).macs;
        assert!(c0 < c1 && c1 < c2);
    }

    #[test]
    fn stored_features_scale_with_reuse() {
        let net = visformer_tiny(ModelPreset::cifar100());
        let partition = PartitionMatrix::uniform(&net, 3).unwrap();
        let full =
            DynamicNetwork::transform(&net, &partition, &IndicatorMatrix::full(&net, 3)).unwrap();
        let mut half = IndicatorMatrix::full(&net, 3);
        for layer in 0..net.num_layers() {
            if layer % 2 == 0 {
                half.set(LayerId(layer), 0, false).unwrap();
                half.set(LayerId(layer), 1, false).unwrap();
            }
        }
        let partial = DynamicNetwork::transform(&net, &partition, &half).unwrap();
        assert!(partial.stored_feature_bytes() < full.stored_feature_bytes());
        assert!(partial.fmap_reuse_ratio() < full.fmap_reuse_ratio());
        assert!(partial.total_transfer_bytes() < full.total_transfer_bytes());
    }

    #[test]
    fn single_stage_transform_matches_static_costs() {
        let net = tiny_cnn(ModelPreset::cifar10());
        let partition = PartitionMatrix::uniform(&net, 1).unwrap();
        let indicator = IndicatorMatrix::full(&net, 1);
        let dynamic = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
        let static_cost = net.total_cost();
        let stage_cost = dynamic.stage(0).unwrap().total_cost();
        assert!((static_cost.macs - stage_cost.macs).abs() / static_cost.macs < 1e-9);
        assert_eq!(dynamic.total_transfer_bytes(), 0.0);
    }

    #[test]
    fn slice_grid_matches_full_transform_bit_for_bit() {
        for (net, stages) in [
            (visformer_tiny(ModelPreset::cifar100()), 3),
            (tiny_cnn(ModelPreset::cifar10()), 2),
        ] {
            let partition = PartitionMatrix::uniform(&net, stages).unwrap();
            let mut indicator = IndicatorMatrix::full(&net, stages);
            for layer in 0..net.num_layers() {
                if layer % 3 == 0 {
                    indicator.set(LayerId(layer), 0, false).unwrap();
                }
            }
            let dynamic = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
            let grid = SliceGrid::compute(&net, &partition, &indicator).unwrap();
            assert_eq!(grid.num_stages(), dynamic.num_stages());
            assert_eq!(grid.num_layers(), net.num_layers());
            assert_eq!(
                grid.stored_feature_bytes().to_bits(),
                dynamic.stored_feature_bytes().to_bits()
            );
            for stage in dynamic.stages() {
                for (layer, slice) in stage.slices.iter().enumerate() {
                    assert_eq!(grid.cost(stage.index, layer), &slice.cost);
                    assert_eq!(
                        grid.own_fraction(layer, stage.index).to_bits(),
                        dynamic.own_fraction(LayerId(layer), stage.index).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn slice_grid_rejects_mismatched_matrices() {
        let net = tiny_cnn(ModelPreset::cifar10());
        let partition = PartitionMatrix::uniform(&net, 3).unwrap();
        let indicator_two = IndicatorMatrix::full(&net, 2);
        assert!(SliceGrid::compute(&net, &partition, &indicator_two).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_fractions_and_costs_are_valid(split in 0usize..5) {
            let net = tiny_cnn(ModelPreset::cifar10());
            let fractions = match split {
                0 => vec![1.0],
                1 => vec![0.5, 0.5],
                2 => vec![0.5, 0.25, 0.25],
                3 => vec![0.25, 0.25, 0.25, 0.25],
                _ => vec![0.625, 0.25, 0.125],
            };
            let stages = fractions.len();
            let partition = PartitionMatrix::from_stage_fractions(&net, &fractions).unwrap();
            let indicator = IndicatorMatrix::full(&net, stages);
            let dynamic = DynamicNetwork::transform(&net, &partition, &indicator).unwrap();
            for stage in dynamic.stages() {
                for slice in &stage.slices {
                    prop_assert!(slice.out_frac >= 0.0 && slice.out_frac <= 1.0 + 1e-9);
                    prop_assert!(slice.in_frac >= 0.0 && slice.in_frac <= 1.0 + 1e-9);
                    prop_assert!(slice.cost.is_valid());
                }
            }
        }
    }
}
