//! CI smoke for the telemetry exposition path.
//!
//! Boots a real `mnc-server` on an ephemeral port, drives a known mixed
//! workload — one direct submit, one duplicate-laden batch, one invalid
//! request — then fetches the wire `Metrics` report and asserts, exiting
//! non-zero on any violation:
//!
//! 1. counter consistency: the request counter equals the request-latency
//!    histogram count, per-stage entry counts follow the exact request
//!    mix (batch-level Normalize included), and the one invalid request
//!    shows up as exactly one Normalize-stage error;
//! 2. the latency digests agree with the raw histograms (same counts,
//!    non-zero medians for stages that did real work);
//! 3. the Prometheus text parses line by line and its samples agree with
//!    the JSON snapshot they were rendered from;
//! 4. tenant shed arithmetic: on a zero-depth reactor every shed is
//!    attributed to its tenant, and the per-tenant `mnc_tenant_shed_total`
//!    samples sum exactly to the global `mnc_shed_requests_total`.
//!
//! ```text
//! cargo run --release -p mnc-server --bin metrics_smoke -- --json results/metrics_smoke_ci.json
//! ```

use mnc_runtime::{find_sample, parse_prometheus, MappingRequest};
use mnc_server::{spawn_on_ephemeral_port, RequestLimits, WireClient};
use mnc_wire::WireBatch;
use serde::Serialize;

const STAGE_DURATION: &str = "mnc_pipeline_stage_duration_nanos";
const STAGE_ERRORS: &str = "mnc_pipeline_stage_errors_total";
const REQUEST_DURATION: &str = "mnc_request_duration_nanos";

/// The `--json` report tracked under `results/`.
#[derive(Debug, Serialize)]
struct SmokeReport {
    bench: String,
    requests_total: u64,
    request_histogram_count: u64,
    normalize_entered: u64,
    normalize_errors: u64,
    searches_run: u64,
    search_generations_total: u64,
    coalesced_requests: u64,
    deadline_misses: u64,
    partial_responses: u64,
    request_p50_micros: f64,
    request_p99_micros: f64,
    prometheus_samples: usize,
    tenant_sheds: u64,
}

fn request(seed: u64) -> MappingRequest {
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(3)
        .population_size(8)
        .seed(seed)
}

fn counter(snapshot: &mnc_runtime::MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .counter_value(name)
        .unwrap_or_else(|| panic!("counter {name} missing from the snapshot"))
}

fn stage_count(snapshot: &mnc_runtime::MetricsSnapshot, stage: &str) -> u64 {
    snapshot
        .labeled_histogram(STAGE_DURATION, "stage", stage)
        .unwrap_or_else(|| panic!("stage histogram for {stage} missing"))
        .count
}

/// Phase 4: per-tenant shed attribution on a zero-depth reactor.
/// Returns the summed tenant-labeled shed count for the report.
fn tenant_shed_arithmetic() -> u64 {
    let server = mnc_server::ReactorServer::bind(
        mnc_server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..mnc_server::ServerConfig::default()
        },
        mnc_server::ReactorConfig {
            queue_depth: 0,
            ..mnc_server::ReactorConfig::default()
        },
    )
    .expect("zero-depth reactor binds");
    let handle = server.spawn().expect("zero-depth reactor spawns");
    let mut client = WireClient::connect(handle.addr()).expect("client connects");

    // A known shed mix: 3 from `alpha`, 2 from `beta`, 1 anonymous
    // (charged to the `default` tenant). Distinct seeds keep every
    // submission out of the response cache, so each one is shed.
    let mix: &[(Option<&str>, u64)] = &[(Some("alpha"), 3), (Some("beta"), 2), (None, 1)];
    let mut seed = 900;
    for (tenant, count) in mix {
        for _ in 0..*count {
            seed += 1;
            let mut shed_me = request(seed);
            if let Some(tenant) = tenant {
                shed_me = shed_me.tenant(*tenant);
            }
            match client.submit(&shed_me) {
                Err(mnc_server::ClientError::Server(error)) => {
                    assert_eq!(error.code, mnc_wire::ErrorCode::Overloaded);
                }
                other => panic!("zero-depth submit gave {other:?}"),
            }
        }
    }

    let metrics = client.metrics().expect("metrics");
    let samples = parse_prometheus(&metrics.prometheus).expect("prometheus text parses");
    let tenant_shed = |tenant: &str| {
        find_sample(&samples, "mnc_tenant_shed_total", &[("tenant", tenant)])
            .unwrap_or_else(|| panic!("shed counter for tenant {tenant} exposed"))
            .value
    };
    assert_eq!(tenant_shed("alpha"), 3.0, "alpha's sheds attributed");
    assert_eq!(tenant_shed("beta"), 2.0, "beta's sheds attributed");
    assert_eq!(tenant_shed("default"), 1.0, "anonymous shed hit `default`");

    let global = find_sample(&samples, "mnc_shed_requests_total", &[])
        .expect("global shed counter exposed")
        .value;
    let attributed: f64 = samples
        .iter()
        .filter(|sample| sample.name == "mnc_tenant_shed_total")
        .map(|sample| sample.value)
        .sum();
    assert_eq!(
        attributed, global,
        "tenant-labeled sheds must sum to the global shed counter"
    );
    assert_eq!(global, 6.0, "the whole mix was shed");
    println!(
        "metrics_smoke: tenant shed arithmetic consistent \
         ({attributed} attributed = {global} global)"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("zero-depth reactor stopped cleanly");
    attributed as u64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|arg| arg == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let handle = spawn_on_ephemeral_port(None, RequestLimits::default())
        .expect("server boots on an ephemeral port");
    let addr = handle.addr();
    println!("metrics_smoke: server on {addr}");
    let mut client = WireClient::connect(addr).expect("client connects");

    // --- known traffic mix ------------------------------------------------
    // 1 direct submit + a batch of 4 (3 unique, 1 coalesced) + 1 invalid
    // request rejected by the Normalize stage. Seeds are all distinct so
    // no request is answered from the response cache: every leader runs a
    // real search.
    client.submit(&request(11)).expect("direct submit");
    let report = client
        .submit_batch(WireBatch {
            requests: vec![request(21), request(22), request(21), request(23)],
            config: mnc_runtime::BatchConfig::new().max_concurrent(2),
        })
        .expect("batch submit");
    assert_eq!(report.stats.unique_requests, 3);
    assert_eq!(report.stats.coalesced_requests, 1);
    let mut invalid = request(31);
    invalid.validation_samples = 0;
    match client.submit(&invalid) {
        Err(mnc_server::ClientError::Server(_)) => {}
        other => panic!("invalid request gave {other:?}"),
    }
    // One request with an already-expired deadline: it clears the fast
    // path (Normalize, Fingerprint, CacheLookup) but is answered
    // `DeadlineExceeded` before any search starts.
    match client.submit(&request(41).deadline_ms(0)) {
        Err(mnc_server::ClientError::Server(error)) => {
            assert_eq!(error.code, mnc_wire::ErrorCode::DeadlineExceeded);
        }
        other => panic!("expired request gave {other:?}"),
    }

    // --- fetch the Metrics report ----------------------------------------
    let metrics = client.metrics().expect("metrics");
    let snapshot = &metrics.metrics;

    // --- 1. counter consistency ------------------------------------------
    // 1 direct + 3 batch leaders + 1 invalid + 1 expired entered the
    // per-request pipeline; the coalesced duplicate never re-ran it.
    let requests = counter(snapshot, "mnc_requests_total");
    assert_eq!(requests, 6, "requests counter");
    let request_histogram = snapshot
        .histogram(REQUEST_DURATION)
        .expect("request-duration histogram present");
    assert_eq!(
        request_histogram.count, requests,
        "request histogram counts every request, errors included"
    );
    assert_eq!(counter(snapshot, "mnc_batches_total"), 1);
    assert_eq!(counter(snapshot, "mnc_coalesced_requests_total"), 1);

    // Normalize ran per request (6) plus once batch-level; the invalid
    // request died there, so Fingerprint saw one entry fewer per-request.
    assert_eq!(stage_count(snapshot, "normalize"), 7, "normalize entries");
    assert_eq!(
        snapshot
            .labeled_counter_value(STAGE_ERRORS, "stage", "normalize")
            .expect("normalize error counter present"),
        1,
        "exactly the invalid request errored in Normalize"
    );
    assert_eq!(
        stage_count(snapshot, "fingerprint"),
        6,
        "fingerprint entries"
    );
    // The expired request never reached the search stage.
    assert_eq!(stage_count(snapshot, "search"), 4, "search entries");
    let searches = counter(snapshot, "mnc_searches_total");
    assert_eq!(searches, 4, "searches counter matches the search stage");
    let generations = counter(snapshot, "mnc_search_generations_total");
    assert!(
        generations >= searches,
        "every search reported at least one generation (got {generations})"
    );
    let builds = counter(snapshot, "mnc_evaluator_builds_total");
    let pool_hits = counter(snapshot, "mnc_evaluator_pool_hits_total");
    assert_eq!(builds + pool_hits, 4, "every search resolved an evaluator");
    assert!(builds >= 1, "the first search built the evaluator");
    // Deadline accounting: exactly the expired request missed; nothing
    // in this mix was answered with a partial front.
    let deadline_misses = counter(snapshot, "mnc_deadline_misses_total");
    assert_eq!(deadline_misses, 1, "deadline misses");
    let partial_responses = counter(snapshot, "mnc_partial_responses_total");
    assert_eq!(partial_responses, 0, "partial responses");
    println!(
        "metrics_smoke: counters consistent (6 requests, 4 searches, 1 rejected, 1 deadline miss)"
    );

    // --- 2. latency digests agree with the raw histograms ----------------
    assert_eq!(metrics.request_latency.count, requests);
    assert!(
        metrics.request_latency.p50_micros > 0.0,
        "request p50 is non-zero"
    );
    assert!(metrics.request_latency.p99_micros >= metrics.request_latency.p50_micros);
    let search_summary = metrics
        .stage_latency
        .iter()
        .find(|summary| summary.name == "search")
        .expect("search stage summary present");
    assert_eq!(search_summary.count, 4);
    assert!(search_summary.p50_micros > 0.0, "searches took real time");
    println!(
        "metrics_smoke: request p50 {:.1}us p99 {:.1}us, search p50 {:.1}us",
        metrics.request_latency.p50_micros,
        metrics.request_latency.p99_micros,
        search_summary.p50_micros
    );

    // --- 3. Prometheus text parses and agrees with the snapshot ----------
    let samples = parse_prometheus(&metrics.prometheus).expect("prometheus text parses");
    assert!(!samples.is_empty());
    let requests_sample = find_sample(&samples, "mnc_requests_total", &[])
        .expect("mnc_requests_total exposed")
        .value;
    assert_eq!(requests_sample, requests as f64);
    let normalize_count = find_sample(
        &samples,
        &format!("{STAGE_DURATION}_count"),
        &[("stage", "normalize")],
    )
    .expect("normalize histogram count exposed")
    .value;
    assert_eq!(normalize_count, 7.0);
    let request_count = find_sample(&samples, &format!("{REQUEST_DURATION}_count"), &[])
        .expect("request histogram count exposed")
        .value;
    assert_eq!(request_count, requests as f64);
    let request_sum = find_sample(&samples, &format!("{REQUEST_DURATION}_sum"), &[])
        .expect("request histogram sum exposed")
        .value;
    assert_eq!(request_sum, request_histogram.sum_nanos as f64);
    let retained = find_sample(&samples, "mnc_traces_retained", &[])
        .expect("trace-ring gauge exposed")
        .value;
    assert_eq!(retained, 6.0, "every request left a retained trace");
    println!(
        "metrics_smoke: prometheus exposition parsed ({} samples, consistent with JSON)",
        samples.len()
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server stopped cleanly");

    // --- 4. tenant shed arithmetic ----------------------------------------
    // A zero-depth reactor sheds every search; each shed must be charged
    // to the submitting tenant, and the tenant-labeled counters must sum
    // exactly to the global shed counter — no shed is ever double-counted
    // or dropped from attribution.
    let tenant_sheds = tenant_shed_arithmetic();

    if let Some(path) = json_path {
        let report = SmokeReport {
            bench: "metrics_smoke".to_string(),
            requests_total: requests,
            request_histogram_count: request_histogram.count,
            normalize_entered: stage_count(snapshot, "normalize"),
            normalize_errors: 1,
            searches_run: searches,
            search_generations_total: generations,
            coalesced_requests: counter(snapshot, "mnc_coalesced_requests_total"),
            deadline_misses,
            partial_responses,
            request_p50_micros: metrics.request_latency.p50_micros,
            request_p99_micros: metrics.request_latency.p99_micros,
            prometheus_samples: samples.len(),
            tenant_sheds,
        };
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).expect("write report");
        println!("metrics_smoke: report written to {path}");
    }
    println!("metrics_smoke: all checks passed");
}
