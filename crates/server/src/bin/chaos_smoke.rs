//! CI chaos harness: injects one fault per failure class into a real
//! reactor server and asserts the ISSUE's robustness contract — every
//! fault is answered with a structured error or a partial front, no
//! request hangs, no connection is silently dropped mid-protocol, and
//! the server stays serviceable afterwards.
//!
//! Fault classes, one scenario each:
//!
//! 1. **Evaluator panic** (via [`FaultPlan::arm_eval_panic`]): a search
//!    dies mid-flight on a pool worker → the waiter gets a structured
//!    `Internal` error and the next submit on the same connection runs
//!    a fresh, successful search.
//! 2. **Deadlines end-to-end**: an already-expired request answers
//!    `DeadlineExceeded` without a search; a heavy request under a tight
//!    deadline answers within bound with `partial: true` and a
//!    non-empty front; both land in the deadline/partial counters.
//! 3. **Watchdog wall-clock cap** (`--search-timeout-ms` equivalent): a
//!    heavy request *without* a deadline is cancelled by the watchdog at
//!    the cap and still answers partial.
//! 4. **Torn archive write** (via
//!    [`FaultPlan::arm_snapshot_truncation`]): a corrupted snapshot is
//!    quarantined to `<name>.corrupt` on the next boot, which comes up
//!    cold but healthy.
//! 5. **Socket faults**, injected from outside: a mid-frame disconnect,
//!    an unparseable frame header (answered structurally before the
//!    close), and a stalled half-written frame that must not block other
//!    connections.
//! 6. **Preemption under fault**: a high-priority request preempts a
//!    running low-priority search, then dies to an injected evaluator
//!    panic — the panic answers `Internal`, the paused search resumes
//!    and answers, and no pause state leaks into later requests.
//!
//! ```text
//! cargo run --release -p mnc-server --bin chaos_smoke -- --smoke --json results/chaos_smoke.json
//! ```
//!
//! `--smoke` runs each scenario once (the CI profile); without it the
//! panic/recovery scenario is soaked for a few extra rounds.

use mnc_runtime::{FaultPlan, MappingRequest};
use mnc_server::{
    spawn_reactor_on_ephemeral_port, ClientError, ReactorConfig, ReactorServer, RequestLimits,
    ServerConfig, WireClient, ARCHIVE_FILE_NAME,
};
use mnc_wire::ErrorCode;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One scenario's outcome in the `--json` report.
#[derive(Debug, Serialize)]
struct Scenario {
    name: String,
    detail: String,
}

#[derive(Debug, Serialize)]
struct ChaosReport {
    bench: String,
    scenarios: Vec<Scenario>,
    deadline_misses: u64,
    partial_responses: u64,
    search_cancellations: u64,
    preemptions: u64,
}

/// A small request that completes quickly (the recovery probe).
fn quick(seed: u64) -> MappingRequest {
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(3)
        .population_size(8)
        .seed(seed)
}

/// How many generations the heavy request schedules.
const HEAVY_GENERATIONS: usize = 5_000;

/// A request whose full search runs for seconds (far longer than the
/// deadlines and caps used below), so an in-time answer proves the
/// bound. Stalling is disabled so early stopping cannot finish it for
/// us.
fn heavy(seed: u64) -> MappingRequest {
    MappingRequest::new("visformer_tiny_cifar100", "dual_test")
        .validation_samples(20_000)
        .generations(HEAVY_GENERATIONS)
        .population_size(48)
        .stall_generations(HEAVY_GENERATIONS)
        .seed(seed)
}

fn counter(snapshot: &mnc_runtime::MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .counter_value(name)
        .unwrap_or_else(|| panic!("counter {name} missing from the snapshot"))
}

/// Scenario 1: an injected evaluator panic answers structurally and the
/// server (and the same connection) recovers.
fn eval_panic_recovers(client: &mut WireClient, rounds: u64, scenarios: &mut Vec<Scenario>) {
    for round in 0..rounds {
        let seed = 100 + round;
        FaultPlan::arm_eval_panic(1);
        match client.submit(&quick(seed)) {
            Err(ClientError::Server(error)) => assert_eq!(
                error.code,
                ErrorCode::Internal,
                "a mid-search panic answers Internal, got {error}"
            ),
            other => panic!("panicking search gave {other:?}"),
        }
        FaultPlan::disarm_all();
        let recovered = client
            .submit(&quick(seed))
            .expect("same connection, same request succeeds after the panic");
        assert!(!recovered.pareto_front.is_empty());
    }
    scenarios.push(Scenario {
        name: "eval_panic".to_string(),
        detail: format!("{rounds} injected panic(s) answered Internal; next submit recovered"),
    });
}

/// Scenario 2: deadline semantics over the wire.
fn deadlines_end_to_end(client: &mut WireClient, scenarios: &mut Vec<Scenario>) {
    // Already expired: structured DeadlineExceeded, no search.
    match client.submit(&quick(200).deadline_ms(0)) {
        Err(ClientError::Server(error)) => assert_eq!(
            error.code,
            ErrorCode::DeadlineExceeded,
            "expired-in-queue answers DeadlineExceeded, got {error}"
        ),
        other => panic!("expired request gave {other:?}"),
    }

    // Tight deadline on a heavy search: answers partial, in bound, with
    // a non-empty best-so-far front. The bound is deadline + evaluator
    // build + one generation's slack; 15x is CI-hostile-machine slack.
    let deadline_ms = 200;
    let started = Instant::now();
    let response = client
        .submit(&heavy(201).deadline_ms(deadline_ms))
        .expect("deadlined heavy search answers");
    let elapsed = started.elapsed();
    println!(
        "chaos_smoke: deadlined heavy search: wall {elapsed:?}, server {} ms, {} generations, stages {:?}",
        response.stats.elapsed_ms, response.stats.generations_run, response.stats.stage_micros
    );
    assert!(
        response.stats.partial,
        "a {deadline_ms} ms deadline cannot fit {HEAVY_GENERATIONS} generations"
    );
    assert!(response.stats.generations_run < HEAVY_GENERATIONS);
    assert!(!response.pareto_front.is_empty(), "partial front non-empty");
    assert!(
        elapsed < Duration::from_millis(deadline_ms) + Duration::from_secs(3),
        "answer took {elapsed:?}, far past the deadline"
    );
    scenarios.push(Scenario {
        name: "deadline".to_string(),
        detail: format!(
            "expired request answered DeadlineExceeded; heavy search answered partial \
             after {} of {HEAVY_GENERATIONS} generations in {elapsed:?}",
            response.stats.generations_run
        ),
    });
}

/// Scenario 3: the watchdog's wall-clock cap cancels a no-deadline
/// search, which answers partial.
fn watchdog_caps_runaway_search(scenarios: &mut Vec<Scenario>) {
    let server = ReactorServer::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        },
        ReactorConfig {
            search_timeout: Some(Duration::from_millis(200)),
            ..ReactorConfig::default()
        },
    )
    .expect("capped reactor binds");
    let handle = server.spawn().expect("capped reactor spawns");
    let mut client = WireClient::connect(handle.addr()).expect("client connects");

    let started = Instant::now();
    let response = client
        .submit(&heavy(301))
        .expect("capped search answers instead of pinning its worker");
    let elapsed = started.elapsed();
    assert!(response.stats.partial, "the cap interrupted the search");
    assert!(!response.pareto_front.is_empty());
    assert!(
        elapsed < Duration::from_secs(5),
        "answer took {elapsed:?}, the watchdog never fired"
    );
    let metrics = client.metrics().expect("metrics");
    let cancellations = counter(&metrics.metrics, "mnc_search_cancellations_total");
    assert!(cancellations >= 1, "watchdog counted its cancellation");
    client.shutdown().expect("shutdown");
    handle.join().expect("capped reactor stopped cleanly");
    scenarios.push(Scenario {
        name: "watchdog_cap".to_string(),
        detail: format!(
            "200 ms wall-clock cap answered partial in {elapsed:?} ({cancellations} cancellation(s))"
        ),
    });
}

/// Scenario 4: a torn snapshot write quarantines on the next boot,
/// which comes up cold but serviceable.
fn torn_snapshot_quarantines(scenarios: &mut Vec<Scenario>) {
    let dir = std::env::temp_dir().join(format!("mnc_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create archive dir");
    let snapshot = dir.join(ARCHIVE_FILE_NAME);

    // First life: populate the archive, then persist through a torn write.
    let handle = spawn_reactor_on_ephemeral_port(Some(dir.clone()), RequestLimits::default())
        .expect("first server boots");
    let mut client = WireClient::connect(handle.addr()).expect("client connects");
    client.submit(&quick(400)).expect("archive-seeding submit");
    FaultPlan::arm_snapshot_truncation(24);
    let persisted = client.persist().expect("persist command itself succeeds");
    assert!(persisted.genomes > 0, "the archive had elites to write");
    FaultPlan::disarm_all();
    client.shutdown().expect("shutdown");
    handle.join().expect("first server stopped cleanly");
    assert!(snapshot.exists(), "the torn snapshot reached the disk");

    // Second life: boots cold, quarantines, serves.
    let server = ReactorServer::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            archive_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
        ReactorConfig::default(),
    )
    .expect("a corrupt snapshot must not fail the boot");
    assert_eq!(server.archive_loaded(), 0, "restart is cold");
    let quarantined = dir.join(format!("{ARCHIVE_FILE_NAME}.corrupt"));
    assert!(quarantined.exists(), "corrupt snapshot was quarantined");
    assert!(!snapshot.exists(), "the corrupt file was moved, not copied");
    let handle = server.spawn().expect("second server spawns");
    let mut client = WireClient::connect(handle.addr()).expect("client connects");
    client.ping().expect("cold server answers ping");
    let response = client.submit(&quick(401)).expect("cold server searches");
    assert!(!response.pareto_front.is_empty());
    client.shutdown().expect("shutdown");
    handle.join().expect("second server stopped cleanly");
    let _ = std::fs::remove_dir_all(&dir);
    scenarios.push(Scenario {
        name: "torn_snapshot".to_string(),
        detail: "corrupt snapshot quarantined to .corrupt; restart cold but serviceable"
            .to_string(),
    });
}

/// Scenario 5: socket-layer faults injected from outside the server.
fn socket_faults(addr: SocketAddr, client: &mut WireClient, scenarios: &mut Vec<Scenario>) {
    // 5a. Mid-frame disconnect: a client dies after half a frame.
    let half = TcpStream::connect(addr).expect("raw connect");
    (&half)
        .write_all(b"64\n{\"version\":1,\"id\":7,")
        .expect("half frame written");
    half.shutdown(Shutdown::Both).expect("abrupt disconnect");
    drop(half);

    // 5b. Unparseable frame header: answered structurally, then closed.
    let mut broken = TcpStream::connect(addr).expect("raw connect");
    broken
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout set");
    broken
        .write_all(b"not-a-length\n")
        .expect("broken header written");
    let mut answer = String::new();
    broken
        .read_to_string(&mut answer)
        .expect("server answered before closing");
    assert!(
        answer.contains("unreadable frame"),
        "desynchronised stream got a structured answer, not a silent close: {answer:?}"
    );

    // 5c. Stalled half-frame: must not block other connections.
    let stalled = TcpStream::connect(addr).expect("raw connect");
    (&stalled).write_all(b"32\n{\"st").expect("stall written");
    client
        .ping()
        .expect("reactor serves others while a frame stalls");
    let response = client
        .submit(&quick(500))
        .expect("searches run while a frame stalls");
    assert!(!response.pareto_front.is_empty());
    drop(stalled);

    scenarios.push(Scenario {
        name: "socket_faults".to_string(),
        detail: "mid-frame disconnect absorbed; broken header answered structurally; \
                 stalled frame never blocked the reactor"
            .to_string(),
    });
}

/// Scenario 6: an injected panic in a *preempting* high-priority search
/// must not take the paused low-priority search down with it.
///
/// On a one-worker reactor a long low-priority search is preempted by a
/// high-priority one; once the victim is parked (requeued, no longer
/// evaluating) the next evaluation belongs to the preemptor, so arming
/// a one-shot eval panic then kills exactly the high-priority search.
/// The contract: the preemptor answers a structured `Internal`, the
/// paused search resumes and answers its (partial) front, and the
/// server afterwards serves fresh requests with no leaked pause state.
fn preemption_under_fault(scenarios: &mut Vec<Scenario>) -> u64 {
    let server = ReactorServer::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        },
        ReactorConfig {
            search_workers: 1,
            ..ReactorConfig::default()
        },
    )
    .expect("one-worker reactor binds");
    let handle = server.spawn().expect("one-worker reactor spawns");
    let addr = handle.addr();

    let submit_frame = |id: u64, request: MappingRequest| {
        let text = mnc_wire::encode_request(&mnc_wire::WireRequest::new(
            id,
            mnc_wire::WireBody::Submit(Box::new(request)),
        ))
        .expect("request encodes");
        format!("{}\n{text}", text.len())
    };

    let stream = TcpStream::connect(addr).expect("raw connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("writer clone");
    let mut reader = std::io::BufReader::new(stream);

    // The victim: a deadline-bounded heavy search on the only worker.
    let victim = heavy(601).deadline_ms(4_000).tenant("batch");
    writer
        .write_all(submit_frame(1, victim).as_bytes())
        .expect("victim submitted");
    std::thread::sleep(Duration::from_millis(300));

    // The preemptor: higher priority, long enough to still be running
    // when the panic is armed below.
    let preemptor = heavy(602).deadline_ms(8_000).priority(9).tenant("urgent");
    writer
        .write_all(submit_frame(2, preemptor).as_bytes())
        .expect("preemptor submitted");

    // Wait until the preemption has actually fired, then give the
    // victim time to reach its generation boundary and park. From that
    // point the only thread evaluating is the preemptor's.
    let mut observer = WireClient::connect(addr).expect("observer connects");
    let preempt_deadline = Instant::now() + Duration::from_secs(5);
    let preemptions = loop {
        let snapshot = observer.metrics().expect("metrics").metrics;
        if let Some(count) =
            snapshot.labeled_counter_value("mnc_tenant_preemptions_total", "tenant", "batch")
        {
            if count >= 1 {
                break count;
            }
        }
        assert!(
            Instant::now() < preempt_deadline,
            "high-priority arrival never preempted the running search"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    std::thread::sleep(Duration::from_millis(300));
    FaultPlan::arm_eval_panic(1);

    // The preemptor dies to the panic and answers first, structurally;
    // the resumed victim answers its partial front at its deadline.
    let mut answers = std::collections::HashMap::new();
    for _ in 0..2 {
        let text = mnc_wire::frame::read_frame(&mut reader)
            .expect("read frame")
            .expect("both searches answered");
        let response = mnc_wire::decode_response(&text).expect("response decodes");
        answers.insert(response.id, response.outcome.into_result());
    }
    match answers.remove(&2).expect("preemptor answered") {
        Err(error) => {
            assert_eq!(error.code, ErrorCode::Internal, "panic answers Internal");
            assert!(error.message.contains("panic"), "{}", error.message);
        }
        Ok(_) => panic!("preemptor succeeded through an armed panic"),
    }
    match answers.remove(&1).expect("victim answered") {
        Ok(mnc_wire::WirePayload::Front(response)) => {
            assert!(
                !response.pareto_front.is_empty(),
                "resumed search answered an empty front"
            );
        }
        other => panic!("resumed victim answered {other:?}"),
    }

    // No leaked pause state: a fresh submit runs to completion.
    let recovered = observer
        .submit(&quick(603))
        .expect("server serves after the faulted preemption");
    assert!(!recovered.pareto_front.is_empty());
    observer.shutdown().expect("shutdown");
    handle.join().expect("one-worker reactor stopped cleanly");

    scenarios.push(Scenario {
        name: "preemption_under_fault".to_string(),
        detail: format!(
            "{preemptions} preemption(s); panicking preemptor answered Internal, \
             paused search resumed and answered"
        ),
    });
    preemptions
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let json_path = args
        .iter()
        .position(|arg| arg == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let panic_rounds = if smoke { 1 } else { 3 };
    let mut scenarios = Vec::new();

    let handle = spawn_reactor_on_ephemeral_port(None, RequestLimits::default())
        .expect("server boots on an ephemeral port");
    let addr = handle.addr();
    println!("chaos_smoke: server on {addr}");
    let mut client = WireClient::connect(addr).expect("client connects");

    eval_panic_recovers(&mut client, panic_rounds, &mut scenarios);
    println!("chaos_smoke: eval panic answered structurally, server recovered");
    deadlines_end_to_end(&mut client, &mut scenarios);
    println!("chaos_smoke: deadline semantics hold end-to-end");
    socket_faults(addr, &mut client, &mut scenarios);
    println!("chaos_smoke: socket faults absorbed");

    // Counters from the long-lived server before it goes down.
    let metrics = client.metrics().expect("metrics");
    let deadline_misses = counter(&metrics.metrics, "mnc_deadline_misses_total");
    let partial_responses = counter(&metrics.metrics, "mnc_partial_responses_total");
    assert!(deadline_misses >= 1, "the expired request was counted");
    assert!(partial_responses >= 1, "the partial answer was counted");
    client.shutdown().expect("shutdown");
    handle.join().expect("server stopped cleanly");

    watchdog_caps_runaway_search(&mut scenarios);
    println!("chaos_smoke: watchdog capped a runaway search");
    let preemptions = preemption_under_fault(&mut scenarios);
    println!("chaos_smoke: faulted preemptor answered Internal, paused search resumed");
    torn_snapshot_quarantines(&mut scenarios);
    println!("chaos_smoke: torn snapshot quarantined, restart serviceable");

    if let Some(path) = json_path {
        let report = ChaosReport {
            bench: "chaos_smoke".to_string(),
            scenarios,
            deadline_misses,
            partial_responses,
            // From the capped reactor's scenario; re-asserted there.
            search_cancellations: 1,
            preemptions,
        };
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).expect("write report");
        println!("chaos_smoke: report written to {path}");
    }
    println!("chaos_smoke: all fault classes recovered");
}
