//! CI round-trip smoke for the wire front-end.
//!
//! Boots a real `mnc-server` on an ephemeral port (the same
//! `Server::run` accept loop the binary uses), drives it with the
//! `WireClient`, and asserts — exiting non-zero on any violation:
//!
//! 1. a wire `Submit` returns a Pareto front **bit-identical** to
//!    in-process `MappingService::submit` for the same request;
//! 2. a duplicate-laden wire batch coalesces and matches the in-process
//!    responses bit for bit;
//! 3. every hardened error path answers structurally (malformed JSON,
//!    corrupt framing, unknown presets, over-budget requests, wrong
//!    protocol version) without closing a synchronised connection;
//! 4. persistence: after `Persist` + restart into the same
//!    `--archive-dir`, a warm-started request schedules exactly as many
//!    evaluations and returns exactly the front of the pre-restart warm
//!    request (the archive the two searches seed from is identical).
//!
//! ```text
//! cargo run --release -p mnc-server --bin wire_smoke -- --json results/wire_smoke_ci.json
//! ```

use mnc_runtime::{MappingRequest, MappingService};
use mnc_server::{spawn_on_ephemeral_port, RequestLimits, WireClient};
use mnc_wire::frame;
use mnc_wire::{ErrorCode, WireBatch, WireResult};
use serde::Serialize;
use std::io::BufReader;
use std::net::TcpStream;

/// The `--json` report tracked under `results/`.
#[derive(Debug, Serialize)]
struct SmokeReport {
    bench: String,
    roundtrip_bit_identical: bool,
    batch_requests: usize,
    batch_coalesced: usize,
    error_paths_checked: usize,
    warm_evaluations_before_restart: usize,
    warm_evaluations_after_restart: usize,
    persisted_genomes: usize,
    pipeline_searches_run: u64,
}

fn request() -> MappingRequest {
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(3)
        .population_size(8)
        .seed(7)
}

fn assert_fronts_bit_identical(
    a: &mnc_runtime::MappingResponse,
    b: &mnc_runtime::MappingResponse,
    what: &str,
) {
    assert_eq!(a.pareto_front, b.pareto_front, "{what}: fronts differ");
    assert_eq!(
        a.best_by_objective, b.best_by_objective,
        "{what}: best-by-objective differs"
    );
    for (x, y) in a.pareto_front.iter().zip(&b.pareto_front) {
        assert_eq!(x.result.objective.to_bits(), y.result.objective.to_bits());
        assert_eq!(
            x.result.average_energy_mj.to_bits(),
            y.result.average_energy_mj.to_bits()
        );
        assert_eq!(
            x.result.average_latency_ms.to_bits(),
            y.result.average_latency_ms.to_bits()
        );
    }
}

/// Sends one raw (possibly malformed) frame on a fresh connection and
/// returns the decoded response.
fn raw_exchange(addr: std::net::SocketAddr, payload: &str) -> mnc_wire::WireResponse {
    let stream = TcpStream::connect(addr).expect("connect for raw exchange");
    let mut writer = stream.try_clone().expect("clone raw stream");
    let mut reader = BufReader::new(stream);
    frame::write_frame(&mut writer, payload).expect("write raw frame");
    let text = frame::read_frame(&mut reader)
        .expect("read raw response")
        .expect("server answered the raw frame");
    mnc_wire::decode_response(&text).expect("decode raw response")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|arg| arg == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let archive_dir = std::env::temp_dir().join(format!("mnc_wire_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&archive_dir).expect("create archive dir");

    let handle = spawn_on_ephemeral_port(Some(archive_dir.clone()), RequestLimits::default())
        .expect("server boots on an ephemeral port");
    let addr = handle.addr();
    println!("wire_smoke: server on {addr}");
    let mut client = WireClient::connect(addr).expect("client connects");

    // --- liveness + catalogues -------------------------------------------
    client.ping().expect("ping");
    let models = client.models().expect("models");
    let platforms = client.platforms().expect("platforms");
    assert!(models.iter().any(|m| m == "tiny_cnn_cifar10"));
    assert!(platforms.iter().any(|p| p == "dual_test"));

    // --- 1. single-request round trip, bit-identical to in-process -------
    let wire_response = client.submit(&request()).expect("wire submit");
    let reference = MappingService::new()
        .submit(&request())
        .expect("in-process submit");
    assert_fronts_bit_identical(&wire_response, &reference, "wire vs in-process");
    assert!(!wire_response.pareto_front.is_empty());
    assert!(
        wire_response.stats.stage_micros_total() > 0.0,
        "per-stage trace crossed the wire"
    );
    println!("wire_smoke: round trip bit-identical to in-process submit");

    // --- 2. batch with duplicates coalesces and stays bit-identical ------
    let batch: Vec<MappingRequest> = vec![request(), request().seed(9), request()];
    let report = client
        .submit_batch(WireBatch {
            requests: batch.clone(),
            config: mnc_runtime::BatchConfig::new().max_concurrent(2),
        })
        .expect("wire batch");
    assert_eq!(report.stats.unique_requests, 2);
    assert_eq!(report.stats.coalesced_requests, 1);
    let in_process = MappingService::new();
    for (position, (wire_result, request)) in report.responses.iter().zip(&batch).enumerate() {
        let wire_response = match wire_result {
            WireResult::Ok(response) => response,
            WireResult::Err(error) => panic!("batch request {position} failed: {error}"),
        };
        let reference = in_process.submit(request).expect("in-process batch ref");
        assert_fronts_bit_identical(wire_response, &reference, "batch round trip");
    }
    println!(
        "wire_smoke: batch of {} ({} coalesced) bit-identical to in-process",
        report.stats.requests, report.stats.coalesced_requests
    );

    // --- 3. hardened error paths ----------------------------------------
    let mut error_paths = 0;

    // Malformed JSON in a well-formed frame: structured error, id 0.
    let response = raw_exchange(addr, "{\"version\":1,\"id\":3,\"body\":");
    match response.outcome {
        mnc_wire::WireOutcome::Err(error) => {
            assert_eq!(error.code, ErrorCode::MalformedRequest);
            assert_eq!(response.id, 0);
        }
        mnc_wire::WireOutcome::Ok(_) => panic!("malformed JSON was accepted"),
    }
    error_paths += 1;

    // Wrong protocol version.
    let response = raw_exchange(addr, "{\"version\":99,\"id\":4,\"body\":\"Ping\"}");
    match response.outcome {
        mnc_wire::WireOutcome::Err(error) => {
            assert_eq!(error.code, ErrorCode::UnsupportedVersion);
            assert_eq!(response.id, 4, "id is echoed even on version mismatch");
        }
        mnc_wire::WireOutcome::Ok(_) => panic!("version 99 was accepted"),
    }
    error_paths += 1;

    // Unknown model / platform.
    for (request, expected) in [
        (
            MappingRequest::new("resnet152_imagenet", "dual_test"),
            ErrorCode::UnknownModel,
        ),
        (
            MappingRequest::new("tiny_cnn_cifar10", "tpu_pod"),
            ErrorCode::UnknownPlatform,
        ),
    ] {
        match client.submit(&request) {
            Err(mnc_server::ClientError::Server(error)) => assert_eq!(error.code, expected),
            other => panic!("unknown preset gave {other:?}"),
        }
        error_paths += 1;
    }

    // Over-budget request.
    match client.submit(&request().generations(100_000).population_size(100_000)) {
        Err(mnc_server::ClientError::Server(error)) => {
            assert_eq!(error.code, ErrorCode::OverBudget)
        }
        other => panic!("over-budget request gave {other:?}"),
    }
    error_paths += 1;

    // Invalid request (zero validation samples).
    let mut invalid = request();
    invalid.validation_samples = 0;
    match client.submit(&invalid) {
        Err(mnc_server::ClientError::Server(error)) => {
            assert_eq!(error.code, ErrorCode::InvalidRequest)
        }
        other => panic!("invalid request gave {other:?}"),
    }
    error_paths += 1;

    // The connection survived every structured error above.
    client
        .ping()
        .expect("connection survived the error gauntlet");
    println!("wire_smoke: {error_paths} error paths answered structurally");

    // --- 4. warm-start persistence across a restart ----------------------
    // Fill the archive (the submits above already did), persist, then run
    // the pre-restart warm request.
    let persisted = client.persist().expect("persist archive");
    assert!(persisted.genomes > 0, "persisted an empty archive");
    let warm_request = request()
        .seed(4242)
        .generations(6)
        .stall_generations(2)
        .warm_start(true);
    let warm_before = client.submit(&warm_request).expect("warm before restart");
    assert!(
        warm_before.stats.warm_start_seeds > 0,
        "warm request found no seeds"
    );

    // One direct submit + two batch leaders + the warm request reached
    // the Search stage; every error-path probe above was rejected first.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.pipeline.searches_run, 4);
    assert_eq!(
        stats.pipeline.stages.len(),
        mnc_runtime::STAGE_COUNT,
        "pipeline stage counters crossed the wire"
    );
    let searches_run = stats.pipeline.searches_run;

    // `PipelineStats` is now a view derived from the telemetry registry;
    // its wire schema must not have drifted from the hand-rolled struct
    // it replaced.
    let pipeline_json =
        serde_json::to_string(&stats.pipeline).expect("pipeline stats serialize to JSON");
    for key in [
        "stages",
        "requests",
        "batches",
        "coalesced_requests",
        "evaluator_pool_hits",
        "evaluator_builds",
        "warm_seeds_gathered",
        "searches_run",
        "evaluations_scheduled",
        "evaluations_performed",
        "elites_recorded",
        // Per-stage entries keep their field names and stage identifiers.
        "stage",
        "entered",
        "errors",
        "busy_micros",
        "normalize",
        "search",
    ] {
        assert!(
            pipeline_json.contains(&format!("\"{key}\"")),
            "pipeline stats lost key `{key}`"
        );
    }
    // Round-trips through the same serde path the client used to decode it.
    let reparsed: mnc_runtime::PipelineStats =
        serde_json::from_str(&pipeline_json).expect("pipeline stats re-parse");
    assert_eq!(reparsed.searches_run, searches_run);
    println!("wire_smoke: derived pipeline stats kept the wire schema");

    client.shutdown().expect("shutdown");
    handle.join().expect("server stopped cleanly");

    // Restart into the same archive dir: the loaded archive equals the
    // persisted one (persist ran before the warm request, and `record`
    // on restore replays the snapshot verbatim), so the first warm
    // request after the restart re-runs the identical seeded search.
    let handle = spawn_on_ephemeral_port(Some(archive_dir.clone()), RequestLimits::default())
        .expect("server restarts");
    let mut client = WireClient::connect(handle.addr()).expect("client reconnects");
    let warm_after = client.submit(&warm_request).expect("warm after restart");
    assert_eq!(
        warm_after.stats.evaluations, warm_before.stats.evaluations,
        "restarted warm request scheduled a different number of evaluations"
    );
    assert_eq!(
        warm_after.stats.warm_start_seeds,
        warm_before.stats.warm_start_seeds
    );
    assert_fronts_bit_identical(&warm_after, &warm_before, "warm restart");
    println!(
        "wire_smoke: warm restart replayed {} evaluations for an identical front",
        warm_after.stats.evaluations
    );

    client.shutdown().expect("second shutdown");
    handle.join().expect("second server stopped cleanly");
    let _ = std::fs::remove_dir_all(&archive_dir);

    if let Some(path) = json_path {
        let report = SmokeReport {
            bench: "wire_smoke".to_string(),
            roundtrip_bit_identical: true,
            batch_requests: report.stats.requests,
            batch_coalesced: report.stats.coalesced_requests,
            error_paths_checked: error_paths,
            warm_evaluations_before_restart: warm_before.stats.evaluations,
            warm_evaluations_after_restart: warm_after.stats.evaluations,
            persisted_genomes: persisted.genomes,
            pipeline_searches_run: searches_run,
        };
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).expect("write report");
        println!("wire_smoke: report written to {path}");
    }
    println!("wire_smoke: all checks passed");
}
