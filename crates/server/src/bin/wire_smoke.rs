//! CI round-trip smoke for the wire front-ends.
//!
//! Runs one shared assertion suite against **both** servers — the
//! legacy blocking `Server` and the event-driven `ReactorServer` — on
//! ephemeral ports, drives them with the `WireClient`, and asserts —
//! exiting non-zero on any violation:
//!
//! 1. a wire `Submit` returns a Pareto front **bit-identical** to
//!    in-process `MappingService::submit` for the same request;
//! 2. a duplicate-laden wire batch coalesces and matches the in-process
//!    responses bit for bit;
//! 3. every hardened error path answers structurally (malformed JSON,
//!    corrupt framing, unknown presets, over-budget requests, wrong
//!    protocol version) without closing a synchronised connection;
//! 4. persistence: after `Persist` + restart into the same
//!    `--archive-dir`, a warm-started request schedules exactly as many
//!    evaluations and returns exactly the front of the pre-restart warm
//!    request (the archive the two searches seed from is identical);
//! 5. a repeated cold request is answered on the fast path (the batch
//!    leader that duplicates the first submit replays its cached
//!    response instead of searching again).
//!
//! ```text
//! cargo run --release -p mnc-server --bin wire_smoke -- --json results/wire_smoke_ci.json
//! ```

use mnc_runtime::{MappingRequest, MappingService};
use mnc_server::reactor::spawn_reactor_on_ephemeral_port;
use mnc_server::{spawn_on_ephemeral_port, ReactorHandle, RequestLimits, ServerHandle, WireClient};
use mnc_wire::frame;
use mnc_wire::{ErrorCode, WireBatch, WireResult};
use serde::Serialize;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::Path;

/// The `--json` report tracked under `results/`.
#[derive(Debug, Serialize)]
struct SmokeReport {
    bench: String,
    servers_checked: Vec<String>,
    roundtrip_bit_identical: bool,
    batch_requests: usize,
    batch_coalesced: usize,
    error_paths_checked: usize,
    warm_evaluations_before_restart: usize,
    warm_evaluations_after_restart: usize,
    persisted_genomes: usize,
    pipeline_searches_run: u64,
    fast_path_answered: u64,
}

/// Which front-end a suite run talks to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerKind {
    Blocking,
    Reactor,
}

impl ServerKind {
    fn label(self) -> &'static str {
        match self {
            ServerKind::Blocking => "blocking",
            ServerKind::Reactor => "reactor",
        }
    }
}

/// A spawned server of either kind — the suite only needs an address
/// and a join.
enum Handle {
    Blocking(ServerHandle),
    Reactor(ReactorHandle),
}

impl Handle {
    fn addr(&self) -> std::net::SocketAddr {
        match self {
            Handle::Blocking(handle) => handle.addr(),
            Handle::Reactor(handle) => handle.addr(),
        }
    }

    fn join(self) {
        match self {
            Handle::Blocking(handle) => {
                handle.join().expect("server stopped cleanly");
            }
            Handle::Reactor(handle) => {
                handle.join().expect("reactor stopped cleanly");
            }
        }
    }
}

fn spawn(kind: ServerKind, archive_dir: &Path) -> Handle {
    match kind {
        ServerKind::Blocking => Handle::Blocking(
            spawn_on_ephemeral_port(Some(archive_dir.to_path_buf()), RequestLimits::default())
                .expect("blocking server boots on an ephemeral port"),
        ),
        ServerKind::Reactor => Handle::Reactor(
            spawn_reactor_on_ephemeral_port(
                Some(archive_dir.to_path_buf()),
                RequestLimits::default(),
            )
            .expect("reactor server boots on an ephemeral port"),
        ),
    }
}

/// What one full suite run measured (consumed by the JSON report).
struct SuiteOutcome {
    batch_requests: usize,
    batch_coalesced: usize,
    error_paths: usize,
    warm_evaluations_before: usize,
    warm_evaluations_after: usize,
    persisted_genomes: usize,
    searches_run: u64,
    fast_path_answered: u64,
}

fn request() -> MappingRequest {
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(3)
        .population_size(8)
        .seed(7)
}

fn assert_fronts_bit_identical(
    a: &mnc_runtime::MappingResponse,
    b: &mnc_runtime::MappingResponse,
    what: &str,
) {
    assert_eq!(a.pareto_front, b.pareto_front, "{what}: fronts differ");
    assert_eq!(
        a.best_by_objective, b.best_by_objective,
        "{what}: best-by-objective differs"
    );
    for (x, y) in a.pareto_front.iter().zip(&b.pareto_front) {
        assert_eq!(x.result.objective.to_bits(), y.result.objective.to_bits());
        assert_eq!(
            x.result.average_energy_mj.to_bits(),
            y.result.average_energy_mj.to_bits()
        );
        assert_eq!(
            x.result.average_latency_ms.to_bits(),
            y.result.average_latency_ms.to_bits()
        );
    }
}

/// Sends one raw (possibly malformed) frame on a fresh connection and
/// returns the decoded response.
fn raw_exchange(addr: std::net::SocketAddr, payload: &str) -> mnc_wire::WireResponse {
    let stream = TcpStream::connect(addr).expect("connect for raw exchange");
    let mut writer = stream.try_clone().expect("clone raw stream");
    let mut reader = BufReader::new(stream);
    frame::write_frame(&mut writer, payload).expect("write raw frame");
    let text = frame::read_frame(&mut reader)
        .expect("read raw response")
        .expect("server answered the raw frame");
    mnc_wire::decode_response(&text).expect("decode raw response")
}

/// The shared suite: every assertion runs identically against both
/// front-ends, so the reactor cannot drift from the blocking reference
/// semantics.
fn run_suite(kind: ServerKind) -> SuiteOutcome {
    let label = kind.label();
    let archive_dir =
        std::env::temp_dir().join(format!("mnc_wire_smoke_{label}_{}", std::process::id()));
    std::fs::create_dir_all(&archive_dir).expect("create archive dir");

    let handle = spawn(kind, &archive_dir);
    let addr = handle.addr();
    println!("wire_smoke[{label}]: server on {addr}");
    let mut client = WireClient::connect(addr).expect("client connects");

    // --- liveness + catalogues -------------------------------------------
    client.ping().expect("ping");
    let models = client.models().expect("models");
    let platforms = client.platforms().expect("platforms");
    assert!(models.iter().any(|m| m == "tiny_cnn_cifar10"));
    assert!(platforms.iter().any(|p| p == "dual_test"));

    // --- 1. single-request round trip, bit-identical to in-process -------
    let wire_response = client.submit(&request()).expect("wire submit");
    let reference = MappingService::new()
        .submit(&request())
        .expect("in-process submit");
    assert_fronts_bit_identical(&wire_response, &reference, "wire vs in-process");
    assert!(!wire_response.pareto_front.is_empty());
    assert!(
        wire_response.stats.stage_micros_total() > 0.0,
        "per-stage trace crossed the wire"
    );
    println!("wire_smoke[{label}]: round trip bit-identical to in-process submit");

    // --- 2. batch with duplicates coalesces and stays bit-identical ------
    let batch: Vec<MappingRequest> = vec![request(), request().seed(9), request()];
    let report = client
        .submit_batch(WireBatch {
            requests: batch.clone(),
            config: mnc_runtime::BatchConfig::new().max_concurrent(2),
        })
        .expect("wire batch");
    assert_eq!(report.stats.unique_requests, 2);
    assert_eq!(report.stats.coalesced_requests, 1);
    let in_process = MappingService::new();
    for (position, (wire_result, request)) in report.responses.iter().zip(&batch).enumerate() {
        let wire_response = match wire_result {
            WireResult::Ok(response) => response,
            WireResult::Err(error) => panic!("batch request {position} failed: {error}"),
        };
        let reference = in_process.submit(request).expect("in-process batch ref");
        assert_fronts_bit_identical(wire_response, &reference, "batch round trip");
    }
    println!(
        "wire_smoke[{label}]: batch of {} ({} coalesced) bit-identical to in-process",
        report.stats.requests, report.stats.coalesced_requests
    );

    // --- 3. hardened error paths ----------------------------------------
    let mut error_paths = 0;

    // Malformed JSON in a well-formed frame: structured error, id 0.
    let response = raw_exchange(addr, "{\"version\":1,\"id\":3,\"body\":");
    match response.outcome {
        mnc_wire::WireOutcome::Err(error) => {
            assert_eq!(error.code, ErrorCode::MalformedRequest);
            assert_eq!(response.id, 0);
        }
        mnc_wire::WireOutcome::Ok(_) => panic!("malformed JSON was accepted"),
    }
    error_paths += 1;

    // Wrong protocol version.
    let response = raw_exchange(addr, "{\"version\":99,\"id\":4,\"body\":\"Ping\"}");
    match response.outcome {
        mnc_wire::WireOutcome::Err(error) => {
            assert_eq!(error.code, ErrorCode::UnsupportedVersion);
            assert_eq!(response.id, 4, "id is echoed even on version mismatch");
        }
        mnc_wire::WireOutcome::Ok(_) => panic!("version 99 was accepted"),
    }
    error_paths += 1;

    // Unknown model / platform.
    for (request, expected) in [
        (
            MappingRequest::new("resnet152_imagenet", "dual_test"),
            ErrorCode::UnknownModel,
        ),
        (
            MappingRequest::new("tiny_cnn_cifar10", "tpu_pod"),
            ErrorCode::UnknownPlatform,
        ),
    ] {
        match client.submit(&request) {
            Err(mnc_server::ClientError::Server(error)) => assert_eq!(error.code, expected),
            other => panic!("unknown preset gave {other:?}"),
        }
        error_paths += 1;
    }

    // Over-budget request.
    match client.submit(&request().generations(100_000).population_size(100_000)) {
        Err(mnc_server::ClientError::Server(error)) => {
            assert_eq!(error.code, ErrorCode::OverBudget)
        }
        other => panic!("over-budget request gave {other:?}"),
    }
    error_paths += 1;

    // Invalid request (zero validation samples).
    let mut invalid = request();
    invalid.validation_samples = 0;
    match client.submit(&invalid) {
        Err(mnc_server::ClientError::Server(error)) => {
            assert_eq!(error.code, ErrorCode::InvalidRequest)
        }
        other => panic!("invalid request gave {other:?}"),
    }
    error_paths += 1;

    // The connection survived every structured error above.
    client
        .ping()
        .expect("connection survived the error gauntlet");
    println!("wire_smoke[{label}]: {error_paths} error paths answered structurally");

    // --- 4. warm-start persistence across a restart ----------------------
    // Fill the archive (the submits above already did), persist, then run
    // the pre-restart warm request.
    let persisted = client.persist().expect("persist archive");
    assert!(persisted.genomes > 0, "persisted an empty archive");
    let warm_request = request()
        .seed(4242)
        .generations(6)
        .stall_generations(2)
        .warm_start(true);
    let warm_before = client.submit(&warm_request).expect("warm before restart");
    assert!(
        warm_before.stats.warm_start_seeds > 0,
        "warm request found no seeds"
    );

    // The direct submit, the seed-9 batch leader and the warm request
    // reached the Search stage. The batch leader duplicating the first
    // submit was answered on the fast path (response-cache replay), and
    // every error-path probe above was rejected before searching.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.pipeline.searches_run, 3);
    assert_eq!(
        stats.pipeline.fast_path_answered, 1,
        "the duplicate batch leader replayed the cached response"
    );
    assert_eq!(
        stats.pipeline.stages.len(),
        mnc_runtime::STAGE_COUNT,
        "pipeline stage counters crossed the wire"
    );
    let searches_run = stats.pipeline.searches_run;
    let fast_path_answered = stats.pipeline.fast_path_answered;

    // `PipelineStats` is now a view derived from the telemetry registry;
    // its wire schema must not have drifted from the hand-rolled struct
    // it replaced.
    let pipeline_json =
        serde_json::to_string(&stats.pipeline).expect("pipeline stats serialize to JSON");
    for key in [
        "stages",
        "requests",
        "batches",
        "coalesced_requests",
        "evaluator_pool_hits",
        "evaluator_builds",
        "warm_seeds_gathered",
        "searches_run",
        "fast_path_answered",
        "evaluations_scheduled",
        "evaluations_performed",
        "elites_recorded",
        // Per-stage entries keep their field names and stage identifiers.
        "stage",
        "entered",
        "errors",
        "busy_micros",
        "normalize",
        "search",
    ] {
        assert!(
            pipeline_json.contains(&format!("\"{key}\"")),
            "pipeline stats lost key `{key}`"
        );
    }
    // Round-trips through the same serde path the client used to decode it.
    let reparsed: mnc_runtime::PipelineStats =
        serde_json::from_str(&pipeline_json).expect("pipeline stats re-parse");
    assert_eq!(reparsed.searches_run, searches_run);
    println!("wire_smoke[{label}]: derived pipeline stats kept the wire schema");

    client.shutdown().expect("shutdown");
    handle.join();

    // Restart into the same archive dir: the loaded archive equals the
    // persisted one (persist ran before the warm request, and `record`
    // on restore replays the snapshot verbatim), so the first warm
    // request after the restart re-runs the identical seeded search.
    let handle = spawn(kind, &archive_dir);
    let mut client = WireClient::connect(handle.addr()).expect("client reconnects");
    let warm_after = client.submit(&warm_request).expect("warm after restart");
    assert_eq!(
        warm_after.stats.evaluations, warm_before.stats.evaluations,
        "restarted warm request scheduled a different number of evaluations"
    );
    assert_eq!(
        warm_after.stats.warm_start_seeds,
        warm_before.stats.warm_start_seeds
    );
    assert_fronts_bit_identical(&warm_after, &warm_before, "warm restart");
    println!(
        "wire_smoke[{label}]: warm restart replayed {} evaluations for an identical front",
        warm_after.stats.evaluations
    );

    client.shutdown().expect("second shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&archive_dir);

    SuiteOutcome {
        batch_requests: report.stats.requests,
        batch_coalesced: report.stats.coalesced_requests,
        error_paths,
        warm_evaluations_before: warm_before.stats.evaluations,
        warm_evaluations_after: warm_after.stats.evaluations,
        persisted_genomes: persisted.genomes,
        searches_run,
        fast_path_answered,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|arg| arg == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let blocking = run_suite(ServerKind::Blocking);
    let reactor = run_suite(ServerKind::Reactor);

    // The two front-ends answered the shared suite with identical
    // pipeline accounting — same searches, same fast-path replays.
    assert_eq!(blocking.searches_run, reactor.searches_run);
    assert_eq!(blocking.fast_path_answered, reactor.fast_path_answered);
    assert_eq!(
        blocking.warm_evaluations_before,
        reactor.warm_evaluations_before
    );

    if let Some(path) = json_path {
        let report = SmokeReport {
            bench: "wire_smoke".to_string(),
            servers_checked: vec!["blocking".to_string(), "reactor".to_string()],
            roundtrip_bit_identical: true,
            batch_requests: reactor.batch_requests,
            batch_coalesced: reactor.batch_coalesced,
            error_paths_checked: blocking.error_paths + reactor.error_paths,
            warm_evaluations_before_restart: reactor.warm_evaluations_before,
            warm_evaluations_after_restart: reactor.warm_evaluations_after,
            persisted_genomes: reactor.persisted_genomes,
            pipeline_searches_run: reactor.searches_run,
            fast_path_answered: reactor.fast_path_answered,
        };
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).expect("write report");
        println!("wire_smoke: report written to {path}");
    }
    println!("wire_smoke: all checks passed on both servers");
}
