//! The `mnc-server` binary: the mapping service behind a TCP socket.
//!
//! ```text
//! mnc-server [--addr 127.0.0.1:7477] [--archive-dir DIR]
//!            [--max-batch N] [--max-evaluations N] [--max-samples N]
//!            [--trace-capacity N] [--slow-threshold-micros N]
//!            [--max-connections N] [--queue-depth N]
//!            [--inflight-per-conn N] [--workers N]
//!            [--search-timeout-ms N] [--tenant-config FILE]
//!            [--drain-deadline-ms N] [--legacy-blocking]
//! mnc-server --metrics [HOST:PORT]       # scrape a running server (Prometheus text)
//! mnc-server --metrics-json [HOST:PORT]  # scrape a running server (JSON snapshot)
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port), prints
//! `mnc-server listening on <addr>` — scripts parse the actual port from
//! that line — and serves length-prefixed JSON wire requests until a
//! `Shutdown` command arrives. With `--archive-dir`, the elite archive
//! snapshot in that directory is loaded at startup and rewritten on every
//! wire `Persist` command, so warm-start knowledge survives restarts.
//!
//! By default the event-driven reactor front-end serves the socket:
//! one reactor thread multiplexes every connection, answers fast-path
//! requests (response-cache hits, structured rejections) inline and
//! hands searches to a bounded worker pool, shedding overload as
//! structured `Overloaded` errors per the admission-control flags.
//! With `--search-timeout-ms`, a watchdog additionally caps every
//! search's wall clock: an overrunning search is cancelled at the next
//! generation boundary and answers with its best-so-far front marked
//! partial. With `--tenant-config`, the named JSON file supplies
//! per-tenant QoS policies (weighted-fair scheduling weight, priority
//! ceiling, evaluation token-bucket budget) for requests carrying a
//! `tenant` field — see `TenantPolicyTable::from_json` for the schema.
//! `--legacy-blocking` selects the original thread-per-connection
//! server instead (same wire semantics, no admission control and no
//! tenant QoS).
//!
//! `--metrics`/`--metrics-json` turn the binary into a one-shot client:
//! it connects to the given address (default `127.0.0.1:7477`), issues
//! the wire `Metrics` command and prints the exposition to stdout — the
//! scrape path for cron jobs and Prometheus textfile collectors.

use mnc_server::{ReactorConfig, ReactorServer, RequestLimits, Server, ServerConfig, WireClient};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: mnc-server [--addr HOST:PORT] [--archive-dir DIR] \
                     [--max-batch N] [--max-evaluations N] [--max-samples N] \
                     [--trace-capacity N] [--slow-threshold-micros N] \
                     [--max-connections N] [--queue-depth N] [--inflight-per-conn N] \
                     [--workers N] [--search-timeout-ms N] [--tenant-config FILE] \
                     [--drain-deadline-ms N] [--legacy-blocking] | \
                     mnc-server --metrics|--metrics-json [HOST:PORT]";

/// What kind of one-shot metrics scrape was requested, if any.
enum MetricsMode {
    Prometheus,
    Json,
}

struct Args {
    addr: String,
    archive_dir: Option<PathBuf>,
    limits: RequestLimits,
    telemetry: mnc_runtime::TelemetryConfig,
    metrics: Option<MetricsMode>,
    reactor: ReactorConfig,
    drain_deadline_ms: u64,
    legacy_blocking: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7477".to_string(),
        archive_dir: None,
        limits: RequestLimits::default(),
        telemetry: mnc_runtime::TelemetryConfig::default(),
        metrics: None,
        reactor: ReactorConfig::default(),
        drain_deadline_ms: mnc_server::DEFAULT_DRAIN_DEADLINE_MS,
        legacy_blocking: false,
    };
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--archive-dir" => args.archive_dir = Some(PathBuf::from(value("--archive-dir")?)),
            "--max-batch" => {
                args.limits.max_batch_requests = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--max-evaluations" => {
                args.limits.max_evaluations = value("--max-evaluations")?
                    .parse()
                    .map_err(|e| format!("--max-evaluations: {e}"))?;
            }
            "--max-samples" => {
                args.limits.max_validation_samples = value("--max-samples")?
                    .parse()
                    .map_err(|e| format!("--max-samples: {e}"))?;
            }
            "--trace-capacity" => {
                args.telemetry.trace_capacity = value("--trace-capacity")?
                    .parse()
                    .map_err(|e| format!("--trace-capacity: {e}"))?;
            }
            "--slow-threshold-micros" => {
                args.telemetry.slow_threshold_micros = value("--slow-threshold-micros")?
                    .parse()
                    .map_err(|e| format!("--slow-threshold-micros: {e}"))?;
            }
            "--max-connections" => {
                args.reactor.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?;
            }
            "--queue-depth" => {
                args.reactor.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--inflight-per-conn" => {
                args.reactor.inflight_per_conn = value("--inflight-per-conn")?
                    .parse()
                    .map_err(|e| format!("--inflight-per-conn: {e}"))?;
            }
            "--workers" => {
                args.reactor.search_workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--search-timeout-ms" => {
                let millis: u64 = value("--search-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--search-timeout-ms: {e}"))?;
                if millis == 0 {
                    return Err("--search-timeout-ms must be positive".to_string());
                }
                args.reactor.search_timeout = Some(std::time::Duration::from_millis(millis));
            }
            "--tenant-config" => {
                let path = value("--tenant-config")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("--tenant-config: cannot read {path}: {e}"))?;
                args.reactor.tenants = mnc_runtime::TenantPolicyTable::from_json(&text)
                    .map_err(|e| format!("--tenant-config: {path}: {e}"))?;
            }
            "--drain-deadline-ms" => {
                args.drain_deadline_ms = value("--drain-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--drain-deadline-ms: {e}"))?;
            }
            "--legacy-blocking" => args.legacy_blocking = true,
            "--metrics" | "--metrics-json" => {
                args.metrics = Some(if flag == "--metrics" {
                    MetricsMode::Prometheus
                } else {
                    MetricsMode::Json
                });
                // An optional positional address follows.
                if let Some(next) = iter.peek() {
                    if !next.starts_with("--") {
                        args.addr = iter.next().expect("peeked");
                    }
                }
            }
            "--help" | "-h" => {
                // Help is a successful outcome: usage on stdout, exit 0
                // (scripts chain `mnc-server --help && ...`).
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// One-shot client mode: fetch the running server's telemetry snapshot
/// and print it to stdout.
fn scrape_metrics(addr: &str, mode: &MetricsMode) -> Result<(), String> {
    let mut client =
        WireClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let report = client
        .metrics()
        .map_err(|e| format!("metrics request failed: {e}"))?;
    match mode {
        MetricsMode::Prometheus => print!("{}", report.prometheus),
        MetricsMode::Json => {
            let json = serde_json::to_string_pretty(&report)
                .map_err(|e| format!("cannot render metrics report: {e}"))?;
            println!("{json}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(mode) = &args.metrics {
        return match scrape_metrics(&args.addr, mode) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(dir) = &args.archive_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create archive directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let config = ServerConfig {
        addr: args.addr,
        archive_dir: args.archive_dir,
        limits: args.limits,
        telemetry: args.telemetry,
        drain_deadline_ms: args.drain_deadline_ms,
    };
    if args.legacy_blocking {
        run_blocking(config)
    } else {
        run_reactor(config, args.reactor)
    }
}

/// Serves with the original thread-per-connection front-end.
fn run_blocking(config: ServerConfig) -> ExitCode {
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if server.archive_loaded() > 0 {
        println!(
            "loaded {} archived elite genomes for warm starts",
            server.archive_loaded()
        );
    }
    println!("mnc-server listening on {addr}");
    match server.run() {
        Ok(()) => {
            println!("mnc-server stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Serves with the event-driven reactor front-end (the default).
fn run_reactor(config: ServerConfig, reactor: ReactorConfig) -> ExitCode {
    let server = match ReactorServer::bind(config, reactor) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if server.archive_loaded() > 0 {
        println!(
            "loaded {} archived elite genomes for warm starts",
            server.archive_loaded()
        );
    }
    println!("mnc-server listening on {addr}");
    match server.run() {
        Ok(()) => {
            println!("mnc-server stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("server failed: {e}");
            ExitCode::FAILURE
        }
    }
}
