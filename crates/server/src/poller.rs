//! Readiness polling for the reactor.
//!
//! The workspace builds offline — no `mio`, no `libc` crate — so the
//! reactor's poller is hand-rolled. On Linux it talks to `epoll`
//! directly through four `extern "C"` declarations (std already links
//! libc, so the symbols resolve without any binding crate); everywhere
//! else a portable scan poller keeps the reactor *correct* by reporting
//! every registered descriptor as ready on a short cadence and letting
//! the reactor's non-blocking syscalls sort out which ones actually are.
//!
//! The interface is deliberately tiny and level-triggered: register a
//! descriptor with an [`Interest`], [`Poller::wait`] for [`Event`]s,
//! re-arm by [`Poller::modify`]. Tokens are opaque `u64`s the caller
//! maps back to connections.

use std::io;
use std::os::fd::RawFd;

/// What readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or peer-closed).
    pub readable: bool,
    /// Wake when the descriptor accepts writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };

    /// Read + write interest — a connection with a backlogged out-buffer.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable now (includes EOF/peer-reset: a read will not block).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
}

pub use sys::Poller;

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    //! The real `epoll` poller. The only unsafe in the crate lives here,
    //! confined to four thin syscall wrappers.

    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirror of `struct epoll_event`. The kernel ABI packs it on
    /// x86_64 (12 bytes); other architectures use natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// A level-triggered `epoll` instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates the epoll instance.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_create1` failure.
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes a flags word and returns a new
            // fd or -1; no pointers are involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is either null (only for EPOLL_CTL_DEL, which
            // ignores it) or points at a live, exclusively borrowed
            // EpollEvent for the duration of the call.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Registers a descriptor.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` failure.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(&mut event))
        }

        /// Re-arms a registered descriptor with a new interest set.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` failure.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest_bits(interest),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(&mut event))
        }

        /// Removes a descriptor.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_ctl` failure.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Waits for readiness, appending to `events` (cleared first).
        /// `None` blocks indefinitely. A signal interruption returns an
        /// empty event set, like a timeout.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_wait` failure.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms = timeout.map_or(-1i32, |t| {
                i32::try_from(t.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX)
            });
            // SAFETY: `raw` is a live buffer of 256 EpollEvents; the
            // kernel writes at most `maxevents` entries into it.
            let count = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), 256, timeout_ms) };
            if count < 0 {
                let error = io::Error::last_os_error();
                if error.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(error);
            }
            for entry in raw.iter().take(count as usize) {
                // Field reads copy out of the (possibly packed) struct.
                let bits = entry.events;
                let token = entry.data;
                events.push(Event {
                    token,
                    // Error/hangup conditions surface as readability so
                    // the reactor's next read observes the EOF/reset.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the fd we exclusively own.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Portable fallback: a scan poller. Without an OS readiness API it
    //! cannot *know* which descriptors are ready, so it reports every
    //! registered descriptor as ready at a short, bounded cadence; the
    //! reactor's non-blocking reads/writes then return `WouldBlock` for
    //! the quiet ones. Correct everywhere, at the cost of a ~5 ms wake
    //! cadence instead of true event-driven sleeps.

    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const SCAN_INTERVAL: Duration = Duration::from_millis(5);

    /// The portable scan poller.
    #[derive(Debug, Default)]
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
    }

    impl Poller {
        /// Creates the poller.
        ///
        /// # Errors
        ///
        /// Infallible in the portable implementation.
        pub fn new() -> io::Result<Self> {
            Ok(Poller::default())
        }

        /// Registers a descriptor.
        ///
        /// # Errors
        ///
        /// Infallible in the portable implementation.
        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller registry lock never poisoned")
                .insert(fd, (token, interest));
            Ok(())
        }

        /// Re-arms a registered descriptor with a new interest set.
        ///
        /// # Errors
        ///
        /// Infallible in the portable implementation.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        /// Removes a descriptor.
        ///
        /// # Errors
        ///
        /// Infallible in the portable implementation.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller registry lock never poisoned")
                .remove(&fd);
            Ok(())
        }

        /// Sleeps one scan interval (bounded by `timeout`) and reports
        /// every registered descriptor ready for its full interest set.
        ///
        /// # Errors
        ///
        /// Infallible in the portable implementation.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let nap = timeout.map_or(SCAN_INTERVAL, |t| t.min(SCAN_INTERVAL));
            std::thread::sleep(nap);
            let registered = self
                .registered
                .lock()
                .expect("poller registry lock never poisoned");
            for (&_fd, &(token, interest)) in registered.iter() {
                events.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                });
            }
            Ok(())
        }
    }
}

/// Convenience: the raw fd of any socket-like type, without importing
/// the trait at every call site.
pub fn raw_fd<T: std::os::fd::AsRawFd>(socket: &T) -> RawFd {
    socket.as_raw_fd()
}

/// Creates the reactor's wake channel: a connected loopback TCP pair.
/// Writing one byte to the returned sender makes the receiver (which the
/// reactor registers with its poller) readable, pulling the reactor out
/// of `wait` — the classic self-pipe trick, built from sockets so it
/// works through the same poller as everything else.
///
/// # Errors
///
/// Returns the socket failure.
pub fn wake_pair() -> io::Result<(std::net::TcpStream, std::net::TcpStream)> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let sender = std::net::TcpStream::connect(listener.local_addr()?)?;
    let (receiver, _) = listener.accept()?;
    sender.set_nonblocking(true)?;
    receiver.set_nonblocking(true)?;
    sender.set_nodelay(true)?;
    Ok((sender, receiver))
}
