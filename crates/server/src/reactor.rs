//! The event-driven wire front-end.
//!
//! One reactor thread multiplexes every connection through a
//! [`Poller`] (epoll on Linux), reading with the incremental
//! [`FrameDecoder`] so a connection never blocks the loop on a partial
//! frame. The request pipeline's fast/slow split decides where work
//! runs:
//!
//! * **Fast path, inline.** `Submit` requests go through
//!   [`RequestPipeline::fast_path`] right on the reactor thread —
//!   normalization, fingerprinting and the response-cache probe are
//!   pure, bounded-latency work. Cache hits and structured rejections
//!   are answered without ever touching the search pool.
//! * **Slow path, pooled.** A [`FastPathOutcome::NeedsSearch`] ticket is
//!   handed to a bounded search-worker pool; the worker redeems it with
//!   [`RequestPipeline::slow_path`] and posts the completion back to the
//!   reactor (woken through a loopback socket pair), which writes the
//!   response out. `SubmitBatch` runs on the pool too — batches
//!   coalesce internally and can occupy a worker for a while.
//!
//! **Admission control.** [`ReactorConfig`] bounds the damage a load
//! spike can do: a connection cap (excess connections are answered with
//! a structured [`ErrorCode::Overloaded`] error and closed), a search
//! queue depth cap and a per-connection in-flight cap (excess requests
//! are shed with `Overloaded` instead of queueing without bound). Shed
//! counts, live connections and queue depth are exported through the
//! service's metrics registry (`mnc_shed_requests_total`,
//! `mnc_server_connections`, `mnc_server_queue_depth`).
//!
//! **Multi-tenant QoS.** The search queue is not a FIFO but a
//! [`DrrQueue`]: every tenant (a request's `tenant` field; unnamed
//! requests share the `"default"` lane) gets deficit-round-robin
//! service in proportion to its configured weight, so a noisy
//! neighbour's backlog cannot starve anyone. Across tenants a strictly
//! higher-priority job is served first, and when every worker is busy a
//! higher-priority arrival *preempts*: the lowest-priority running
//! search is asked to pause at its next generation boundary
//! ([`PauseToken`]), its checkpointed state re-queued ahead of its
//! tenant's own backlog, and the freed worker picks up the urgent job.
//! A resumed search answers bit-identically to an uninterrupted one.
//! Tenants configured with an evaluation budget
//! ([`TenantPolicy::evals_per_sec`]) are metered by a token bucket:
//! an exhausted tenant's submissions are answered with a structured
//! `BudgetExhausted` error carrying a `retry_after_ms` hint — never a
//! dropped connection — and the debit is the *actual*
//! `evaluations_performed` of each answered request. Batches ride the
//! default lane unmetered (they coalesce internally and carry no single
//! tenant). Per-tenant admission, shed, preemption, budget and
//! queue-depth series are exported with a `tenant` label
//! (`mnc_tenant_*`).
//!
//! **Deadlines & the watchdog.** A request's `deadline_ms` is stamped
//! into its ticket by the fast path; a ticket that expires while queued
//! is answered `DeadlineExceeded` by the slow path without starting a
//! search. Once a search is *running*, a watchdog thread scans the
//! running-job registry and flips the ticket's cancel token when the
//! effective deadline — the earlier of the request deadline and the
//! [`ReactorConfig::search_timeout`] wall-clock cap — passes; the search
//! stops at the next generation boundary and answers with its
//! best-so-far front marked partial. Cancellations are counted in
//! `mnc_search_cancellations_total`.
//!
//! **Cross-connection coalescing.** While a search for some normalized
//! request is in flight, identical `Submit`s from *other* connections
//! join its waiter list instead of enqueueing a duplicate search
//! (collision-safe: fingerprint match is confirmed against the stored
//! normalized request). Every waiter gets the leader's response
//! verbatim, mirroring what the batch scheduler does for duplicates
//! within one batch; joins are counted in `mnc_inflight_coalesced_total`.
//!
//! **Shutdown drains.** A wire `Shutdown` (or
//! [`ReactorHandle::shutdown`]) stops admitting work, lets queued and
//! running searches finish and their responses flush, then force-closes
//! whatever is left once the configured drain deadline passes.
//!
//! [`RequestPipeline::fast_path`]: mnc_runtime::RequestPipeline::fast_path
//! [`RequestPipeline::slow_path`]: mnc_runtime::RequestPipeline::slow_path
//! [`FastPathOutcome::NeedsSearch`]: mnc_runtime::FastPathOutcome
//! [`ErrorCode::Overloaded`]: mnc_wire::ErrorCode::Overloaded
//! [`FrameDecoder`]: mnc_wire::frame::FrameDecoder
//! [`TenantPolicy::evals_per_sec`]: mnc_runtime::TenantPolicy::evals_per_sec

use crate::poller::{raw_fd, wake_pair, Interest, Poller};
use crate::{
    encode_response_or_internal, panic_error, Dispatcher, ServerConfig, ServerError,
    ARCHIVE_FILE_NAME,
};
use mnc_runtime::{
    ArchiveLoad, CancelToken, DrrQueue, FastPathOutcome, MappingRequest, MappingResponse,
    MappingService, PauseToken, PausedSearch, RuntimeError, SearchTicket, ServingMetrics,
    SlowPathRun, TenantMetrics, TenantPolicy, TenantPolicyTable, TokenBucket, DEFAULT_PRIORITY,
    DEFAULT_TENANT,
};
use mnc_wire::frame::FrameDecoder;
use mnc_wire::{WireBody, WireError, WirePayload, WireResponse};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Poller token of the accept listener.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the wake-channel receiver.
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Cap on one connection's backlogged out-buffer. A reader this slow is
/// indistinguishable from a stuck one; past the cap the connection is
/// closed rather than buffering without bound.
const MAX_OUTBUF_BYTES: usize = 16 * 1024 * 1024;

/// Admission-control knobs of the reactor front-end.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Maximum concurrently served connections; further accepts are
    /// answered with a structured `Overloaded` error and closed.
    pub max_connections: usize,
    /// Maximum queued (not yet running) search/batch jobs; further
    /// submissions are shed with `Overloaded`.
    pub queue_depth: usize,
    /// Maximum unanswered submissions per connection (queued waiters
    /// included); further submissions on that connection are shed.
    pub inflight_per_conn: usize,
    /// Search-pool threads; `0` sizes to the machine (parallelism − 1,
    /// at least 2).
    pub search_workers: usize,
    /// Per-job wall-clock cap. A search still running this long after a
    /// worker picked it up has its cancel token flipped by the watchdog
    /// and answers with its best-so-far front marked partial — one
    /// pathological request cannot pin a pool thread forever. `None`
    /// leaves searches bounded only by their own request deadlines.
    pub search_timeout: Option<Duration>,
    /// Per-tenant QoS policies (`--tenant-config`). The default table
    /// gives every tenant the default policy — weight 1, no priority
    /// ceiling, no budget — which reduces scheduling to the
    /// single-tenant FIFO behaviour.
    pub tenants: TenantPolicyTable,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_connections: 1024,
            queue_depth: 256,
            inflight_per_conn: 64,
            search_workers: 0,
            search_timeout: None,
            tenants: TenantPolicyTable::default(),
        }
    }
}

impl ReactorConfig {
    fn resolved_workers(&self) -> usize {
        if self.search_workers > 0 {
            return self.search_workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(2)
            .max(2)
    }
}

/// What a search worker executes.
enum JobKind {
    /// A fast-path miss: redeem the ticket with the resumable slow
    /// path.
    Search(Box<SearchTicket>),
    /// A preempted search, resumed from its checkpoint.
    Resume(Box<PausedSearch>),
    /// A whole batch through the coalescing scheduler.
    Batch(mnc_wire::WireBatch),
}

struct Job {
    id: u64,
    /// The owning tenant's lane in the DRR queue.
    tenant: String,
    /// Effective (ceiling-clamped) scheduling priority.
    priority: u8,
    /// DRR price: estimated evaluations (remaining, for resumes).
    cost: u64,
    kind: JobKind,
}

/// The scheduling identity a job is enqueued under.
struct Admission {
    tenant: String,
    /// Effective (ceiling-clamped) priority.
    priority: u8,
    /// Estimated evaluations — the job's DRR price.
    cost: u64,
}

/// A request's DRR price: the evaluations its search is expected to
/// schedule (initial population plus one population per generation),
/// capped by `max_evaluations`. An estimate is enough — DRR deficits
/// only need prices to be mutually comparable, and the token-bucket
/// debit uses the *actual* spend.
fn estimated_cost(request: &MappingRequest) -> u64 {
    let evaluations = request
        .population_size
        .saturating_mul(request.generations.saturating_add(1));
    let evaluations = request
        .max_evaluations
        .map_or(evaluations, |cap| evaluations.min(cap));
    evaluations.max(1) as u64
}

/// What executing one job produced.
enum JobOutcome {
    /// The job answered (or failed); deliver the completion. Boxed to
    /// keep the enum small next to the already-boxed
    /// [`JobOutcome::Paused`].
    Finished(Box<Result<WirePayload, WireError>>),
    /// The search observed its pause token and checkpointed; re-queue
    /// it (no completion — the pending entry keeps waiting).
    Paused(Box<PausedSearch>),
}

/// A finished job, posted by a worker for the reactor to deliver.
struct Completion {
    job_id: u64,
    result: Result<WirePayload, WireError>,
}

#[derive(Default)]
struct QueueState {
    jobs: DrrQueue<Job>,
    /// Workers currently executing a job — when every worker is busy, a
    /// higher-priority arrival preempts instead of waiting.
    busy_workers: usize,
    stopping: bool,
}

/// A search currently occupying a worker, as the watchdog (deadlines)
/// and the reactor (preemption) see it.
struct RunningSearch {
    cancel: CancelToken,
    /// When the watchdog flips the cancel token: the earlier of the
    /// request's own deadline and the per-job wall-clock cap (`None`
    /// when neither applies).
    cancel_at: Option<Instant>,
    /// Set once cancelled so one overrun is counted (and flipped) once.
    cancelled: bool,
    /// The search's pause token, for priority preemption.
    pause: PauseToken,
    /// Set once preempted so one search is paused (and counted) once.
    pause_fired: bool,
    tenant: String,
    priority: u8,
}

/// State shared between the reactor thread, the worker pool and
/// [`ReactorHandle`].
struct ReactorShared {
    dispatcher: Dispatcher,
    queue: Mutex<QueueState>,
    available: Condvar,
    completions: Mutex<Vec<Completion>>,
    /// Sender half of the loopback wake pair; one byte = one wake.
    waker: Mutex<TcpStream>,
    /// Handle-initiated shutdown request.
    shutdown: AtomicBool,
    metrics: ServingMetrics,
    /// Per-job wall-clock cap (see [`ReactorConfig::search_timeout`]).
    search_timeout: Option<Duration>,
    /// Searches currently on worker threads, scanned by the watchdog
    /// and by the reactor's preemption check.
    running: Mutex<HashMap<u64, RunningSearch>>,
    /// Per-tenant QoS policies.
    tenants: TenantPolicyTable,
    /// Search-pool size, for the all-workers-busy preemption check.
    workers: usize,
}

impl ReactorShared {
    /// Pulls the reactor out of `Poller::wait`. Best effort: if the wake
    /// socket's buffer is full the reactor is already drowning in wakes.
    fn wake(&self) {
        let _ = self
            .waker
            .lock()
            .expect("waker lock never poisoned")
            .write(&[1]);
    }
}

/// One worker: pop a job under priority-then-DRR order, run it outside
/// every reactor data structure, then either post the completion (and
/// wake the reactor) or — when the search was preempted — re-queue the
/// paused state ahead of its tenant's backlog.
fn worker_loop(shared: &ReactorShared) {
    loop {
        let job = {
            let mut state = shared.queue.lock().expect("work queue lock never poisoned");
            loop {
                if state.stopping {
                    return;
                }
                if let Some((tenant, job)) = state.jobs.pop() {
                    state.busy_workers += 1;
                    shared.metrics.queue_depth.set(state.jobs.len() as f64);
                    let depth = state.jobs.tenant_depth(&tenant) as f64;
                    drop(state);
                    shared
                        .dispatcher
                        .service()
                        .tenant_metrics(&tenant)
                        .queue_depth
                        .set(depth);
                    break job;
                }
                state = shared
                    .available
                    .wait(state)
                    .expect("work queue lock never poisoned");
            }
        };
        let Job {
            id,
            tenant,
            priority,
            cost,
            kind,
        } = job;
        let pause = register_running(shared, id, &tenant, priority, &kind);
        let watched = pause.is_some();
        let outcome = execute(&shared.dispatcher, kind, pause);
        if watched {
            shared
                .running
                .lock()
                .expect("running-search registry lock never poisoned")
                .remove(&id);
        }
        match outcome {
            JobOutcome::Finished(result) => {
                release_worker(shared);
                shared
                    .completions
                    .lock()
                    .expect("completion list lock never poisoned")
                    .push(Completion {
                        job_id: id,
                        result: *result,
                    });
                shared.wake();
            }
            JobOutcome::Paused(paused) => {
                requeue_paused(shared, id, tenant, priority, cost, paused);
            }
        }
    }
}

/// Marks one worker idle again.
fn release_worker(shared: &ReactorShared) {
    let mut state = shared.queue.lock().expect("work queue lock never poisoned");
    state.busy_workers = state.busy_workers.saturating_sub(1);
}

/// Puts a preempted search back in its tenant's lane, ahead of the
/// lane's FIFO tail, priced at its *remaining* estimated evaluations.
/// No completion is posted — the reactor's pending entry (and every
/// coalesced waiter on it) keeps waiting for the resumed answer.
fn requeue_paused(
    shared: &ReactorShared,
    id: u64,
    tenant: String,
    priority: u8,
    cost: u64,
    paused: Box<PausedSearch>,
) {
    let remaining = cost
        .saturating_sub(paused.evaluations_performed() as u64)
        .max(1);
    let policy = shared.tenants.policy_for(&tenant).clone();
    let metrics = shared.dispatcher.service().tenant_metrics(&tenant);
    let (depth, total) = {
        let mut state = shared.queue.lock().expect("work queue lock never poisoned");
        state.busy_workers = state.busy_workers.saturating_sub(1);
        if state.stopping {
            // Teardown raced the pause: drop the checkpoint, the drain
            // deadline has spoken.
            return;
        }
        state.jobs.push_resume(
            &tenant,
            &policy,
            priority,
            remaining,
            Job {
                id,
                tenant: tenant.clone(),
                priority,
                cost: remaining,
                kind: JobKind::Resume(paused),
            },
        );
        (state.jobs.tenant_depth(&tenant), state.jobs.len())
    };
    shared.metrics.queue_depth.set(total as f64);
    metrics.queue_depth.set(depth as f64);
    shared.available.notify_one();
}

/// Enters a just-popped search into the running-search registry, which
/// both the watchdog (deadline/timeout cancellation) and the reactor's
/// preemption check scan. Returns the pause token the search must run
/// under (`None` for batches, which coalesce internally and carry
/// neither a single cancel token nor a resumable checkpoint).
fn register_running(
    shared: &ReactorShared,
    id: u64,
    tenant: &str,
    priority: u8,
    kind: &JobKind,
) -> Option<PauseToken> {
    let (cancel, pause, deadline) = match kind {
        JobKind::Search(ticket) => (ticket.cancel_token(), PauseToken::new(), ticket.deadline()),
        // A resumed search keeps its original tokens: the pipeline
        // clears the pause flag on resume, and a later preemption
        // re-fires the same token.
        JobKind::Resume(paused) => (
            paused.cancel_token(),
            paused.pause_token(),
            paused.deadline(),
        ),
        JobKind::Batch(_) => return None,
    };
    let cap = shared
        .search_timeout
        .map(|timeout| Instant::now() + timeout);
    let cancel_at = match (deadline, cap) {
        (Some(deadline), Some(cap)) => Some(deadline.min(cap)),
        (deadline, cap) => deadline.or(cap),
    };
    shared
        .running
        .lock()
        .expect("running-search registry lock never poisoned")
        .insert(
            id,
            RunningSearch {
                cancel,
                cancel_at,
                cancelled: false,
                pause: pause.clone(),
                pause_fired: false,
                tenant: tenant.to_string(),
                priority,
            },
        );
    Some(pause)
}

/// How often the watchdog scans the running-search registry. Bounds how
/// far past its deadline a search can run before its token flips (on
/// top of the one-generation slack the search loop itself adds).
const WATCHDOG_TICK: Duration = Duration::from_millis(5);

/// The watchdog: periodically cancels searches past their effective
/// deadline so an overrunning job frees its worker at the next
/// generation boundary and answers with a partial front.
fn watchdog_loop(shared: &ReactorShared) {
    loop {
        if shared
            .queue
            .lock()
            .expect("work queue lock never poisoned")
            .stopping
        {
            return;
        }
        {
            let mut running = shared
                .running
                .lock()
                .expect("running-search registry lock never poisoned");
            let now = Instant::now();
            for entry in running.values_mut() {
                if !entry.cancelled && entry.cancel_at.is_some_and(|cancel_at| now >= cancel_at) {
                    entry.cancel.cancel();
                    entry.cancelled = true;
                    shared.metrics.search_cancellations.inc();
                }
            }
        }
        std::thread::sleep(WATCHDOG_TICK);
    }
}

/// Runs one job, converting a panic into a structured Internal error —
/// a poisoned request must never take a pool thread down. Searches run
/// the resumable slow path under `pause` so preemption can checkpoint
/// them at a generation boundary.
fn execute(dispatcher: &Dispatcher, kind: JobKind, pause: Option<PauseToken>) -> JobOutcome {
    let finished = |result: Result<MappingResponse, RuntimeError>| match result {
        Ok(response) => JobOutcome::Finished(Box::new(Ok(WirePayload::Front(response)))),
        Err(error) => JobOutcome::Finished(Box::new(Err(WireError::from(&error)))),
    };
    match catch_unwind(AssertUnwindSafe(|| match kind {
        JobKind::Search(ticket) => {
            let pause = pause.expect("searches are registered with a pause token");
            match dispatcher
                .service()
                .pipeline()
                .slow_path_resumable(*ticket, pause)
            {
                SlowPathRun::Done(result) => finished(*result),
                SlowPathRun::Paused(paused) => JobOutcome::Paused(paused),
            }
        }
        JobKind::Resume(paused) => match dispatcher.service().pipeline().resume(paused) {
            SlowPathRun::Done(result) => finished(*result),
            SlowPathRun::Paused(paused) => JobOutcome::Paused(paused),
        },
        JobKind::Batch(batch) => JobOutcome::Finished(Box::new(dispatcher.submit_batch(batch))),
    })) {
        Ok(outcome) => outcome,
        Err(panic) => JobOutcome::Finished(Box::new(Err(panic_error(panic)))),
    }
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    outbuf: Vec<u8>,
    written: usize,
    /// Unanswered submissions (search-pool leaders and coalesced
    /// waiters) — the unit the per-connection admission cap counts.
    inflight: usize,
    interest: Interest,
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            outbuf: Vec::new(),
            written: 0,
            inflight: 0,
            interest: Interest::READABLE,
            close_after_flush: false,
        }
    }

    fn backlog(&self) -> usize {
        self.outbuf.len() - self.written
    }
}

/// A search (or batch) in flight through the worker pool, with every
/// `(connection, request id)` waiting on its answer.
struct PendingJob {
    waiters: Vec<(u64, u64)>,
    fingerprint: Option<u64>,
    /// Stored normalized request, confirming fingerprint matches on
    /// coalescing joins (a collision must run its own search).
    normalized: Option<MappingRequest>,
    /// The submitting tenant (searches only) — the bucket its actual
    /// evaluation spend is debited from at completion.
    tenant: Option<String>,
}

/// A bound (but not yet serving) reactor front-end over one
/// [`MappingService`].
pub struct ReactorServer {
    listener: TcpListener,
    shared: Arc<ReactorShared>,
    config: ReactorConfig,
    drain_deadline: Duration,
    wake_receiver: TcpStream,
    archive_loaded: usize,
}

impl ReactorServer {
    /// Binds the listener, builds the service (loading the archive
    /// snapshot when configured) and prepares the wake channel.
    ///
    /// # Errors
    ///
    /// Returns an error when a socket cannot be set up or an existing
    /// archive snapshot fails to load.
    pub fn bind(config: ServerConfig, reactor: ReactorConfig) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        let service = Arc::new(MappingService::with_telemetry_config(config.telemetry));
        let archive_path = config.archive_dir.map(|dir| dir.join(ARCHIVE_FILE_NAME));
        let mut archive_loaded = 0;
        if let Some(path) = &archive_path {
            match service.restore_archive(path)? {
                ArchiveLoad::Restored(genomes) => archive_loaded = genomes,
                ArchiveLoad::Missing => {}
                ArchiveLoad::Quarantined {
                    quarantined_to,
                    reason,
                } => eprintln!(
                    "warning: archive snapshot {} is corrupt ({reason}); \
                     quarantined to {} and starting cold",
                    path.display(),
                    quarantined_to.display()
                ),
            }
        }
        let (wake_sender, wake_receiver) = wake_pair()?;
        let metrics = service.serving_metrics();
        let shared = Arc::new(ReactorShared {
            dispatcher: Dispatcher::new(service, config.limits, archive_path),
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker: Mutex::new(wake_sender),
            shutdown: AtomicBool::new(false),
            metrics,
            search_timeout: reactor.search_timeout,
            running: Mutex::new(HashMap::new()),
            tenants: reactor.tenants.clone(),
            workers: reactor.resolved_workers(),
        });
        Ok(ReactorServer {
            listener,
            shared,
            config: reactor,
            drain_deadline: Duration::from_millis(config.drain_deadline_ms),
            wake_receiver,
            archive_loaded,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    ///
    /// # Errors
    ///
    /// Returns an error when the socket is gone.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The service this front-end serves.
    pub fn service(&self) -> &Arc<MappingService> {
        self.shared.dispatcher.service()
    }

    /// Elite genomes loaded from the archive snapshot at startup.
    pub fn archive_loaded(&self) -> usize {
        self.archive_loaded
    }

    /// Runs the reactor until a wire `Shutdown` (or
    /// [`ReactorHandle::shutdown`]) drains it.
    ///
    /// # Errors
    ///
    /// Returns an error when the poller cannot be created or fails
    /// irrecoverably.
    pub fn run(&self) -> Result<(), ServerError> {
        self.listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(raw_fd(&self.listener), TOKEN_LISTENER, Interest::READABLE)?;
        poller.register(raw_fd(&self.wake_receiver), TOKEN_WAKE, Interest::READABLE)?;

        let workers: Vec<_> = (0..self.shared.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || watchdog_loop(&shared))
        };

        let mut event_loop = EventLoop {
            server: self,
            poller,
            conns: HashMap::new(),
            pending: HashMap::new(),
            inflight_index: HashMap::new(),
            buckets: HashMap::new(),
            tenant_metrics: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            next_job: 0,
            draining: None,
        };
        let result = event_loop.run();

        // Teardown: stop the pool (skipping still-queued jobs — the
        // drain deadline has spoken), join it, close what's left.
        {
            let mut state = self
                .shared
                .queue
                .lock()
                .expect("work queue lock never poisoned");
            state.stopping = true;
            state.jobs.drain();
        }
        self.shared.available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        let _ = watchdog.join();
        for (_, conn) in event_loop.conns.drain() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.shared.metrics.connections.set(0.0);
        self.shared.metrics.queue_depth.set(0.0);
        result
    }

    /// Runs the reactor on a background thread, returning a handle with
    /// the bound address.
    ///
    /// # Errors
    ///
    /// Returns an error when the bound address cannot be read back.
    pub fn spawn(self) -> Result<ReactorHandle, ServerError> {
        let addr = self.local_addr()?;
        let service = Arc::clone(self.shared.dispatcher.service());
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run());
        Ok(ReactorHandle {
            addr,
            service,
            shared,
            thread,
        })
    }
}

impl std::fmt::Debug for ReactorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorServer")
            .field("addr", &self.listener.local_addr().ok())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// A running reactor on a background thread.
pub struct ReactorHandle {
    addr: SocketAddr,
    service: Arc<MappingService>,
    shared: Arc<ReactorShared>,
    thread: std::thread::JoinHandle<Result<(), ServerError>>,
}

impl ReactorHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served [`MappingService`].
    pub fn service(&self) -> &Arc<MappingService> {
        &self.service
    }

    /// Asks the reactor to drain and stop, then joins it.
    ///
    /// # Errors
    ///
    /// Propagates the reactor's exit result.
    pub fn shutdown(self) -> Result<(), ServerError> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake();
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(ServerError::Io(std::io::Error::other(
                "reactor thread panicked",
            ))),
        }
    }

    /// Waits for the reactor to stop on its own (a wire `Shutdown`).
    ///
    /// # Errors
    ///
    /// Propagates the reactor's exit result.
    pub fn join(self) -> Result<(), ServerError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(ServerError::Io(std::io::Error::other(
                "reactor thread panicked",
            ))),
        }
    }
}

impl std::fmt::Debug for ReactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Binds and spawns a reactor server on an ephemeral port — the
/// test/demo entry point, mirroring [`crate::spawn_on_ephemeral_port`].
///
/// # Errors
///
/// See [`ReactorServer::bind`] and [`ReactorServer::spawn`].
pub fn spawn_reactor_on_ephemeral_port(
    archive_dir: Option<std::path::PathBuf>,
    limits: crate::RequestLimits,
) -> Result<ReactorHandle, ServerError> {
    ReactorServer::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            archive_dir,
            limits,
            ..ServerConfig::default()
        },
        ReactorConfig::default(),
    )?
    .spawn()
}

/// What one decoded read produced, in stream order.
enum Inbound {
    Frame(String),
    /// A framing failure answered structurally (id 0).
    Broken(Box<WireResponse>),
}

/// The reactor's single-threaded event loop: every connection, the
/// pending-job table and the coalescing index live here, so none of it
/// needs locks.
struct EventLoop<'a> {
    server: &'a ReactorServer,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    pending: HashMap<u64, PendingJob>,
    /// coalescing fingerprint → pending job id.
    inflight_index: HashMap<u64, u64>,
    /// Token buckets of metered tenants, created on first submission.
    buckets: HashMap<String, TokenBucket>,
    /// Cached per-tenant metric handles (minting hits a registry lock).
    tenant_metrics: HashMap<String, TenantMetrics>,
    next_token: u64,
    next_job: u64,
    /// `Some(deadline)` once shutdown was requested.
    draining: Option<Instant>,
}

impl EventLoop<'_> {
    fn shared(&self) -> &ReactorShared {
        &self.server.shared
    }

    fn run(&mut self) -> Result<(), ServerError> {
        let mut events = Vec::new();
        loop {
            if self.shared().shutdown.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            let timeout = self.draining.map(|deadline| {
                deadline
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(20))
            });
            self.poller.wait(&mut events, timeout)?;
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wakes(),
                    token => {
                        if event.readable {
                            self.read_ready(token);
                        }
                        if event.writable {
                            self.flush(token);
                        }
                    }
                }
            }
            self.deliver_completions();
            if let Some(deadline) = self.draining {
                let drained =
                    self.pending.is_empty() && self.conns.values().all(|conn| conn.backlog() == 0);
                if drained || Instant::now() >= deadline {
                    return Ok(());
                }
            }
        }
    }

    /// Stops admitting work and arms the drain deadline.
    fn begin_drain(&mut self) {
        if self.draining.is_none() {
            self.draining = Some(Instant::now() + self.server.drain_deadline);
        }
    }

    /// Accepts until the listener runs dry, shedding connections over
    /// the cap (or during a drain) with a structured error.
    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.server.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            let overloaded = self.conns.len() >= self.server.config.max_connections;
            if overloaded || self.draining.is_some() {
                let reason = if overloaded {
                    format!(
                        "connection limit of {} reached, try again later",
                        self.server.config.max_connections
                    )
                } else {
                    "server is shutting down".to_string()
                };
                self.shared().metrics.shed_requests.inc();
                Self::refuse(stream, &reason);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .register(raw_fd(&stream), token, Interest::READABLE)
                .is_err()
            {
                continue;
            }
            self.conns.insert(token, Conn::new(stream));
            self.shared()
                .metrics
                .connections
                .set(self.conns.len() as f64);
        }
    }

    /// Best-effort structured refusal of a connection that was never
    /// admitted: one `Overloaded` frame, then close.
    fn refuse(mut stream: TcpStream, reason: &str) {
        let text = encode_response_or_internal(&WireResponse::err(
            0,
            WireError::overloaded(reason.to_string()),
        ));
        let _ = stream.write_all(format!("{}\n{text}", text.len()).as_bytes());
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// Swallows queued wake bytes.
    fn drain_wakes(&mut self) {
        let mut buf = [0u8; 64];
        while matches!((&self.server.wake_receiver).read(&mut buf), Ok(n) if n > 0) {}
    }

    /// Reads everything the socket has, decodes complete frames and
    /// handles them in stream order.
    fn read_ready(&mut self, token: u64) {
        let mut inbound: Vec<Inbound> = Vec::new();
        let mut close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => conn.decoder.extend(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            loop {
                match conn.decoder.next_frame() {
                    Ok(Some(text)) => inbound.push(Inbound::Frame(text)),
                    Ok(None) => break,
                    Err(error) => {
                        // Mirror the blocking server: answer the framing
                        // failure structurally; only a desynchronised
                        // stream (corrupt header) forces a close.
                        let resynchronizable = error.is_resynchronizable();
                        inbound.push(Inbound::Broken(Box::new(WireResponse::err(
                            0,
                            WireError::malformed(format!("unreadable frame: {error}")),
                        ))));
                        if !resynchronizable {
                            close = true;
                            break;
                        }
                    }
                }
            }
        }
        for item in inbound {
            match item {
                Inbound::Frame(text) => self.handle_frame(token, &text),
                Inbound::Broken(response) => self.send_response(token, &response),
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    /// Decodes one frame and routes its command.
    fn handle_frame(&mut self, token: u64, text: &str) {
        match Dispatcher::decode_checked(text) {
            Err(response) => self.send_response(token, &response),
            Ok(request) => self.handle_request(token, request.id, request.body),
        }
    }

    fn handle_request(&mut self, token: u64, id: u64, body: WireBody) {
        match body {
            WireBody::Submit(request) => self.handle_submit(token, id, *request),
            WireBody::SubmitBatch(batch) => {
                if self.draining.is_some() {
                    self.shed(token, id, "server is shutting down", None);
                } else {
                    // Batches ride the default lane unmetered: they
                    // coalesce internally and carry no single tenant,
                    // but they still pay a DRR price covering every
                    // member so they cannot crowd out named lanes.
                    let cost = batch
                        .requests
                        .iter()
                        .map(estimated_cost)
                        .fold(1u64, u64::saturating_add);
                    self.enqueue(
                        token,
                        id,
                        JobKind::Batch(batch),
                        None,
                        None,
                        Admission {
                            tenant: DEFAULT_TENANT.to_string(),
                            priority: DEFAULT_PRIORITY,
                            cost,
                        },
                    );
                }
            }
            WireBody::Shutdown => {
                let response = WireResponse::ok(id, WirePayload::ShuttingDown);
                self.send_response(token, &response);
                self.begin_drain();
            }
            // Control-plane commands are cheap snapshots; answer inline.
            other => {
                let (response, _stop) = self.shared().dispatcher.dispatch_guarded(id, other);
                self.send_response(token, &response);
            }
        }
    }

    /// The fast/slow seam: run the fast path inline; meter the tenant's
    /// budget, then coalesce, admit or shed what needs a search.
    fn handle_submit(&mut self, token: u64, id: u64, request: MappingRequest) {
        let tenant = request
            .tenant
            .clone()
            .unwrap_or_else(|| DEFAULT_TENANT.to_string());
        if self.draining.is_some() {
            self.shed(token, id, "server is shutting down", Some(&tenant));
            return;
        }
        if let Err(error) = self.shared().dispatcher.limits().check(&request) {
            self.send_response(token, &WireResponse::err(id, error));
            return;
        }
        let service = Arc::clone(self.shared().dispatcher.service());
        let outcome = catch_unwind(AssertUnwindSafe(|| service.pipeline().fast_path(&request)));
        match outcome {
            Err(panic) => self.send_response(token, &WireResponse::err(id, panic_error(panic))),
            Ok(FastPathOutcome::Answered(response)) => {
                self.send_response(token, &WireResponse::ok(id, WirePayload::Front(*response)));
            }
            Ok(FastPathOutcome::Rejected(error)) => {
                self.send_response(token, &WireResponse::err(id, WireError::from(error)));
            }
            Ok(FastPathOutcome::NeedsSearch(ticket)) => {
                let policy = self.shared().tenants.policy_for(&tenant).clone();
                let priority = policy.effective_priority(request.priority);
                // Budget admission. Cache replays and structured
                // rejections above cost no evaluations, so only a
                // request about to run (or join) a search is metered;
                // the refusal is a structured answer on a healthy
                // connection, never a drop. Checked before coalescing
                // so a dry tenant is refused deterministically.
                if let Err(retry_after_ms) = self.admit_budget(&tenant, &policy) {
                    let error = RuntimeError::BudgetExhausted {
                        tenant: tenant.clone(),
                        retry_after_ms,
                    };
                    self.tenant_handles(&tenant).budget_exhausted.inc();
                    self.send_response(token, &WireResponse::err(id, WireError::from(&error)));
                    return;
                }
                if self.try_coalesce(token, id, &ticket, &tenant) {
                    return;
                }
                let fingerprint = ticket.coalescing_fingerprint();
                let normalized = ticket.normalized_request().cloned();
                let cost = estimated_cost(ticket.request());
                self.enqueue(
                    token,
                    id,
                    JobKind::Search(ticket),
                    fingerprint,
                    normalized,
                    Admission {
                        tenant,
                        priority,
                        cost,
                    },
                );
            }
        }
    }

    /// Joins an in-flight identical search if one exists. The waiter's
    /// own ticket is dropped — the leader's response answers everyone —
    /// so a join costs no queue slot and no search.
    fn try_coalesce(&mut self, token: u64, id: u64, ticket: &SearchTicket, tenant: &str) -> bool {
        let (Some(fingerprint), Some(normalized)) =
            (ticket.coalescing_fingerprint(), ticket.normalized_request())
        else {
            return false;
        };
        let Some(&job_id) = self.inflight_index.get(&fingerprint) else {
            return false;
        };
        let entry = self
            .pending
            .get_mut(&job_id)
            .expect("indexed job is pending");
        if entry.normalized.as_ref() != Some(normalized) {
            return false;
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.inflight >= self.server.config.inflight_per_conn {
                self.shed(
                    token,
                    id,
                    "per-connection in-flight limit reached",
                    Some(tenant),
                );
                return true;
            }
            conn.inflight += 1;
        }
        entry.waiters.push((token, id));
        self.shared().metrics.inflight_coalesced.inc();
        true
    }

    /// Checks the tenant's token bucket (created on first submission),
    /// refreshing the balance gauge. Unmetered tenants always pass.
    ///
    /// # Errors
    ///
    /// Returns `Err(retry_after_ms)` when the bucket is dry.
    fn admit_budget(&mut self, tenant: &str, policy: &TenantPolicy) -> Result<(), u64> {
        let now = Instant::now();
        if !self.buckets.contains_key(tenant) {
            match TokenBucket::for_policy(policy, now) {
                Some(bucket) => {
                    self.buckets.insert(tenant.to_string(), bucket);
                }
                None => return Ok(()),
            }
        }
        let bucket = self.buckets.get_mut(tenant).expect("bucket just ensured");
        let admitted = bucket.admit(now);
        let balance = bucket.balance(now);
        self.tenant_handles(tenant).tokens.set(balance);
        admitted
    }

    /// Charges an answered search's actual evaluation spend to its
    /// tenant's bucket (metered tenants only) — the bucket may go
    /// negative, so a tenant is never charged less than it used.
    fn debit_budget(&mut self, tenant: &str, evaluations: usize) {
        let now = Instant::now();
        let Some(bucket) = self.buckets.get_mut(tenant) else {
            return;
        };
        bucket.debit(evaluations, now);
        let balance = bucket.balance(now);
        self.tenant_handles(tenant).tokens.set(balance);
    }

    /// The cached per-tenant metric handles, minted on first use.
    fn tenant_handles(&mut self, tenant: &str) -> &TenantMetrics {
        if !self.tenant_metrics.contains_key(tenant) {
            let handles = self.shared().dispatcher.service().tenant_metrics(tenant);
            self.tenant_metrics.insert(tenant.to_string(), handles);
        }
        self.tenant_metrics
            .get(tenant)
            .expect("handles just minted")
    }

    /// Admission control, then hand the job to its tenant's DRR lane —
    /// preempting a lower-priority running search when every worker is
    /// busy.
    fn enqueue(
        &mut self,
        token: u64,
        id: u64,
        kind: JobKind,
        fingerprint: Option<u64>,
        normalized: Option<MappingRequest>,
        admission: Admission,
    ) {
        let Admission {
            tenant,
            priority,
            cost,
        } = admission;
        let inflight = self.conns.get(&token).map_or(0, |conn| conn.inflight);
        if inflight >= self.server.config.inflight_per_conn {
            self.shed(
                token,
                id,
                "per-connection in-flight limit reached",
                Some(&tenant),
            );
            return;
        }
        let policy = self.shared().tenants.policy_for(&tenant).clone();
        let job_id = self.next_job;
        let is_search = matches!(kind, JobKind::Search(_));
        let (depth, all_busy);
        {
            let mut state = self
                .shared()
                .queue
                .lock()
                .expect("work queue lock never poisoned");
            if state.jobs.len() >= self.server.config.queue_depth {
                drop(state);
                self.shed(
                    token,
                    id,
                    "search queue is full, try again later",
                    Some(&tenant),
                );
                return;
            }
            state.jobs.push(
                &tenant,
                &policy,
                priority,
                cost,
                Job {
                    id: job_id,
                    tenant: tenant.clone(),
                    priority,
                    cost,
                    kind,
                },
            );
            self.shared()
                .metrics
                .queue_depth
                .set(state.jobs.len() as f64);
            depth = state.jobs.tenant_depth(&tenant);
            all_busy = state.busy_workers >= self.shared().workers;
        }
        self.next_job += 1;
        self.shared().available.notify_one();
        {
            let handles = self.tenant_handles(&tenant);
            handles.admitted.inc();
            handles.queue_depth.set(depth as f64);
        }
        if all_busy {
            self.maybe_preempt(priority);
        }
        self.pending.insert(
            job_id,
            PendingJob {
                waiters: vec![(token, id)],
                fingerprint,
                normalized,
                tenant: is_search.then(|| tenant.clone()),
            },
        );
        if let Some(fingerprint) = fingerprint {
            self.inflight_index.insert(fingerprint, job_id);
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.inflight += 1;
        }
    }

    /// When every worker is busy, asks the lowest-priority running
    /// search to pause — if it is strictly below `priority` — so the
    /// freed worker picks up the more urgent arrival. The paused
    /// search's checkpoint is re-queued by its worker and resumes
    /// bit-identically later.
    fn maybe_preempt(&mut self, priority: u8) {
        let victim = {
            let mut running = self
                .shared()
                .running
                .lock()
                .expect("running-search registry lock never poisoned");
            let candidate = running
                .values_mut()
                .filter(|entry| !entry.pause_fired)
                .min_by_key(|entry| entry.priority);
            match candidate {
                Some(entry) if entry.priority < priority => {
                    entry.pause.pause();
                    entry.pause_fired = true;
                    Some(entry.tenant.clone())
                }
                _ => None,
            }
        };
        if let Some(tenant) = victim {
            self.tenant_handles(&tenant).preemptions.inc();
        }
    }

    /// Sheds one request with a structured `Overloaded` error.
    fn shed(&mut self, token: u64, id: u64, reason: &str, tenant: Option<&str>) {
        self.shared().metrics.shed_requests.inc();
        if let Some(tenant) = tenant {
            self.tenant_handles(tenant).shed.inc();
        }
        self.send_response(
            token,
            &WireResponse::err(id, WireError::overloaded(reason.to_string())),
        );
    }

    /// Delivers every posted completion to its waiters.
    fn deliver_completions(&mut self) {
        let completions = std::mem::take(
            &mut *self
                .shared()
                .completions
                .lock()
                .expect("completion list lock never poisoned"),
        );
        for completion in completions {
            let Some(job) = self.pending.remove(&completion.job_id) else {
                continue;
            };
            if let (Some(tenant), Ok(WirePayload::Front(response))) =
                (&job.tenant, &completion.result)
            {
                self.debit_budget(tenant, response.stats.evaluations_performed);
            }
            if let Some(fingerprint) = job.fingerprint {
                if self.inflight_index.get(&fingerprint) == Some(&completion.job_id) {
                    self.inflight_index.remove(&fingerprint);
                }
            }
            for (token, id) in job.waiters {
                let response = match &completion.result {
                    Ok(payload) => WireResponse::ok(id, payload.clone()),
                    Err(error) => WireResponse::err(id, error.clone()),
                };
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.inflight = conn.inflight.saturating_sub(1);
                }
                self.send_response(token, &response);
            }
        }
    }

    /// Queues one encoded response on the connection's out-buffer and
    /// flushes as much as the socket takes.
    fn send_response(&mut self, token: u64, response: &WireResponse) {
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let text = encode_response_or_internal(response);
            conn.outbuf
                .extend_from_slice(format!("{}\n", text.len()).as_bytes());
            conn.outbuf.extend_from_slice(text.as_bytes());
        }
        self.flush(token);
    }

    /// Writes the out-buffer until empty or the socket pushes back; a
    /// backlogged connection gains write interest, a drained one drops
    /// it.
    fn flush(&mut self, token: u64) {
        let mut close = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            while conn.written < conn.outbuf.len() {
                match conn.stream.write(&conn.outbuf[conn.written..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if conn.written >= conn.outbuf.len() {
                conn.outbuf.clear();
                conn.written = 0;
                if conn.interest.writable {
                    conn.interest = Interest::READABLE;
                    let _ = self
                        .poller
                        .modify(raw_fd(&conn.stream), token, conn.interest);
                }
                if conn.close_after_flush {
                    close = true;
                }
            } else {
                // Reclaim the flushed prefix once it dominates the
                // buffer, then cap what a slow reader may pin.
                if conn.written > 64 * 1024 {
                    conn.outbuf.drain(..conn.written);
                    conn.written = 0;
                }
                if conn.backlog() > MAX_OUTBUF_BYTES {
                    close = true;
                } else if !conn.interest.writable {
                    conn.interest = Interest::BOTH;
                    let _ = self
                        .poller
                        .modify(raw_fd(&conn.stream), token, conn.interest);
                }
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    /// Removes one connection. Pending jobs it was waiting on keep
    /// running; their completions simply find no one to answer.
    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(raw_fd(&conn.stream));
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.shared()
                .metrics
                .connections
                .set(self.conns.len() as f64);
        }
    }
}
