//! The TCP front-ends of the mapping service.
//!
//! Two servers share one command [`Dispatcher`] over the same
//! [`mnc_runtime::MappingService`]:
//!
//! * [`Server`] — the legacy blocking front-end: one thread per
//!   connection, frames in, frames out. Simple, and still the reference
//!   for wire semantics.
//! * [`reactor::ReactorServer`] — the event-driven front-end: one
//!   reactor thread multiplexes every connection through an epoll-style
//!   [`poller::Poller`], answers fast-path requests (response-cache
//!   hits, structured rejections) inline, and hands searches to a
//!   bounded worker pool. Admission control ([`reactor::ReactorConfig`])
//!   sheds overload as structured [`ErrorCode::Overloaded`] errors
//!   instead of queueing without bound.
//!
//! Both drive every decoded [`mnc_wire::WireRequest`] through the *same*
//! [`mnc_runtime::RequestPipeline`] that in-process
//! [`MappingService::submit`] uses — a wire round-trip therefore returns
//! a Pareto front bit-identical to the in-process answer for the same
//! request (asserted by `tests/roundtrip.rs` and the `wire_smoke` CI
//! binary, which runs its assertions against both servers).
//!
//! Failure handling is structured end to end: malformed JSON, unsupported
//! protocol versions, unknown presets, invalid requests and over-budget
//! requests ([`RequestLimits`]) each produce a [`WireError`] response —
//! a well-framed message is never answered by a closed connection, and a
//! panic in the service surfaces as an [`ErrorCode::Internal`] error
//! instead of tearing the connection down.
//!
//! Shutdown drains: both servers stop accepting, let in-flight requests
//! finish (bounded by a configurable drain deadline), and only then
//! force-close lingering idle connections — a `Shutdown` command racing
//! an active batch no longer resets that batch's connection.
//!
//! With `--archive-dir` the server loads the elite archive snapshot at
//! startup and writes it back on the wire `Persist` command, so
//! warm-start knowledge survives restarts (`Shutdown` does *not* persist
//! implicitly — persistence is an explicit, observable action).

// The reactor's poller needs raw `epoll` FFI on Linux (the workspace is
// built offline, without a libc binding crate); everything outside
// `poller::sys` stays free of unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod poller;
pub mod reactor;

pub use client::{ClientConfig, ClientError, WireClient};
pub use reactor::{spawn_reactor_on_ephemeral_port, ReactorConfig, ReactorHandle, ReactorServer};

use mnc_runtime::{ArchiveLoad, MappingRequest, MappingService, RuntimeError, TelemetryConfig};
use mnc_wire::frame::{self, FrameError};
use mnc_wire::{
    decode_request, encode_response, ErrorCode, MetricsReport, PersistReport, ServiceStats,
    WireBatch, WireBatchReport, WireBody, WireError, WirePayload, WireRequest, WireResponse,
    WireResult, PROTOCOL_VERSION,
};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// File name of the elite-archive snapshot inside `--archive-dir`.
pub const ARCHIVE_FILE_NAME: &str = "elite_archive.json";

/// Default time a stopping server waits for in-flight requests before
/// force-closing their connections.
pub const DEFAULT_DRAIN_DEADLINE_MS: u64 = 5_000;

/// Per-request budget caps the server enforces before running a search.
/// Requests beyond a cap are answered with [`ErrorCode::OverBudget`]
/// instead of tying a worker thread to an arbitrarily large search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestLimits {
    /// Maximum requests in one `SubmitBatch`.
    pub max_batch_requests: usize,
    /// Maximum evaluations one request may schedule (its explicit
    /// `max_evaluations` cap, or `generations × population_size` without
    /// one).
    pub max_evaluations: usize,
    /// Maximum synthetic validation samples per request (validation-set
    /// generation dominates cold evaluator builds).
    pub max_validation_samples: usize,
}

impl Default for RequestLimits {
    fn default() -> Self {
        RequestLimits {
            max_batch_requests: 256,
            max_evaluations: 250_000,
            max_validation_samples: 100_000,
        }
    }
}

impl RequestLimits {
    /// Checks one mapping request against the caps.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorCode::OverBudget`] error naming the violated cap.
    pub fn check(&self, request: &MappingRequest) -> Result<(), WireError> {
        if request.validation_samples > self.max_validation_samples {
            return Err(WireError::over_budget(format!(
                "validation_samples {} exceeds the server cap of {}",
                request.validation_samples, self.max_validation_samples
            )));
        }
        let scheduled = request
            .generations
            .saturating_mul(request.population_size)
            .min(request.max_evaluations.unwrap_or(usize::MAX));
        if scheduled > self.max_evaluations {
            return Err(WireError::over_budget(format!(
                "request would schedule up to {scheduled} evaluations, over the server cap of {}",
                self.max_evaluations
            )));
        }
        Ok(())
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Directory for the elite-archive snapshot: loaded at startup when
    /// present, written by the wire `Persist` command.
    pub archive_dir: Option<PathBuf>,
    /// Per-request budget caps.
    pub limits: RequestLimits,
    /// Telemetry knobs of the served [`MappingService`] (trace retention,
    /// slow-request threshold, search-generation streaming).
    pub telemetry: TelemetryConfig,
    /// How long shutdown waits for in-flight requests to finish before
    /// force-closing their connections.
    pub drain_deadline_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            archive_dir: None,
            limits: RequestLimits::default(),
            telemetry: TelemetryConfig::default(),
            drain_deadline_ms: DEFAULT_DRAIN_DEADLINE_MS,
        }
    }
}

/// Errors starting or running the server.
#[derive(Debug)]
pub enum ServerError {
    /// Socket operations failed.
    Io(std::io::Error),
    /// The archive snapshot could not be loaded at startup.
    Runtime(RuntimeError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server i/o error: {e}"),
            ServerError::Runtime(e) => write!(f, "server startup error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Runtime(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<RuntimeError> for ServerError {
    fn from(e: RuntimeError) -> Self {
        ServerError::Runtime(e)
    }
}

/// The transport-agnostic command layer shared by the blocking server
/// and the reactor: decodes wire requests, enforces [`RequestLimits`],
/// executes commands against one [`MappingService`], and owns archive
/// persistence. Keeping this in one place is what guarantees the two
/// front-ends cannot drift apart semantically.
#[derive(Debug)]
pub struct Dispatcher {
    service: Arc<MappingService>,
    limits: RequestLimits,
    archive_path: Option<PathBuf>,
}

impl Dispatcher {
    /// Builds a dispatcher over a service.
    pub fn new(
        service: Arc<MappingService>,
        limits: RequestLimits,
        archive_path: Option<PathBuf>,
    ) -> Self {
        Dispatcher {
            service,
            limits,
            archive_path,
        }
    }

    /// The served service.
    pub fn service(&self) -> &Arc<MappingService> {
        &self.service
    }

    /// The per-request budget caps.
    pub fn limits(&self) -> &RequestLimits {
        &self.limits
    }

    /// Decodes one framed payload and checks its protocol version,
    /// mapping failures to the ready-to-send error response.
    ///
    /// # Errors
    ///
    /// Returns the [`WireResponse`] to send for malformed or
    /// version-skewed requests.
    pub fn decode_checked(text: &str) -> Result<WireRequest, Box<WireResponse>> {
        let request = match decode_request(text) {
            Ok(request) => request,
            Err(error) => {
                return Err(Box::new(WireResponse::err(
                    0,
                    WireError::malformed(error.to_string()),
                )))
            }
        };
        if request.version != PROTOCOL_VERSION {
            return Err(Box::new(WireResponse::err(
                request.id,
                WireError::unsupported_version(request.version),
            )));
        }
        Ok(request)
    }

    /// Decodes one framed payload and dispatches it, returning the
    /// response plus whether the server should stop.
    pub fn respond(&self, text: &str) -> (WireResponse, bool) {
        match Self::decode_checked(text) {
            Ok(request) => self.dispatch_guarded(request.id, request.body),
            Err(response) => (*response, false),
        }
    }

    /// Dispatches one decoded command, converting a panic into an
    /// [`ErrorCode::Internal`] error response.
    ///
    /// The evaluation path is pure computation, so a panic there leaves
    /// no broken invariants behind; the residual risk is a panic *while
    /// holding* one of the service's mutexes, which poisons that lock and
    /// turns later requests on the same path into further (caught,
    /// structured) Internal errors rather than crashes.
    pub fn dispatch_guarded(&self, id: u64, body: WireBody) -> (WireResponse, bool) {
        match catch_unwind(AssertUnwindSafe(|| self.dispatch(body))) {
            Ok((Ok(payload), stop)) => (WireResponse::ok(id, payload), stop),
            Ok((Err(error), stop)) => (WireResponse::err(id, error), stop),
            Err(panic) => (WireResponse::err(id, panic_error(panic)), false),
        }
    }

    /// Executes one command against the service.
    fn dispatch(&self, body: WireBody) -> (Result<WirePayload, WireError>, bool) {
        match body {
            WireBody::Ping => (Ok(WirePayload::Pong), false),
            WireBody::ListModels => (
                Ok(WirePayload::Models(
                    self.service
                        .models()
                        .names()
                        .iter()
                        .map(|s| (*s).to_string())
                        .collect(),
                )),
                false,
            ),
            WireBody::ListPlatforms => (
                Ok(WirePayload::Platforms(
                    self.service
                        .platforms()
                        .names()
                        .iter()
                        .map(|s| (*s).to_string())
                        .collect(),
                )),
                false,
            ),
            WireBody::Submit(request) => (self.submit(&request), false),
            WireBody::SubmitBatch(batch) => (self.submit_batch(batch), false),
            WireBody::Stats => (Ok(WirePayload::Stats(self.stats())), false),
            WireBody::Metrics => (Ok(WirePayload::Metrics(self.metrics())), false),
            WireBody::Persist => (self.persist().map(WirePayload::Persisted), false),
            WireBody::Shutdown => (Ok(WirePayload::ShuttingDown), true),
        }
    }

    /// Snapshot of the service's cache/pipeline/archive counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            cache: self.service.cache_stats(),
            pipeline: self.service.pipeline_stats(),
            archive_genomes: self.service.elite_archive().len(),
        }
    }

    /// Snapshot of the service's full telemetry registry.
    pub fn metrics(&self) -> MetricsReport {
        MetricsReport {
            metrics: self.service.metrics_snapshot(),
            stage_latency: self.service.stage_latency(),
            request_latency: self.service.request_latency(),
            prometheus: self.service.prometheus_text(),
        }
    }

    /// One mapping request through the shared pipeline.
    fn submit(&self, request: &MappingRequest) -> Result<WirePayload, WireError> {
        self.limits.check(request)?;
        self.service
            .submit(request)
            .map(WirePayload::Front)
            .map_err(WireError::from)
    }

    /// A batch through the coalescing scheduler. Requests over the budget
    /// caps are answered with per-request `OverBudget` errors; the rest
    /// of the batch still runs (and still coalesces).
    pub fn submit_batch(&self, batch: WireBatch) -> Result<WirePayload, WireError> {
        if batch.requests.len() > self.limits.max_batch_requests {
            return Err(WireError::over_budget(format!(
                "batch of {} requests exceeds the server cap of {}",
                batch.requests.len(),
                self.limits.max_batch_requests
            )));
        }
        // Partition: in-budget requests run through the scheduler, the
        // rest are answered structurally without occupying a worker.
        let mut results: Vec<Option<WireResult>> = batch.requests.iter().map(|_| None).collect();
        let mut admitted: Vec<MappingRequest> = Vec::new();
        let mut admitted_positions: Vec<usize> = Vec::new();
        for (position, request) in batch.requests.iter().enumerate() {
            match self.limits.check(request) {
                Ok(()) => {
                    admitted.push(request.clone());
                    admitted_positions.push(position);
                }
                Err(error) => results[position] = Some(WireResult::Err(error)),
            }
        }
        let report = self.service.submit_batch_with(&admitted, &batch.config);
        let leader_positions: Vec<usize> = report
            .leader_positions
            .iter()
            .map(|&index| admitted_positions[index])
            .collect();
        // The scheduler only saw the admitted requests; restore the
        // batch-level view so `stats.requests` matches the response
        // vector. Budget-rejected members ran no search and coalesced
        // with nothing, so unique/coalesced stay admitted-only.
        let mut stats = report.stats;
        stats.requests = batch.requests.len();
        for (index, outcome) in report.responses.into_iter().enumerate() {
            results[admitted_positions[index]] = Some(match outcome {
                Ok(response) => WireResult::response(response),
                Err(error) => WireResult::Err(WireError::from(error)),
            });
        }
        Ok(WirePayload::Batch(WireBatchReport {
            responses: results
                .into_iter()
                .map(|slot| slot.expect("every position answered"))
                .collect(),
            leader_positions,
            stats,
        }))
    }

    /// Writes the elite archive to the configured snapshot file.
    pub fn persist(&self) -> Result<PersistReport, WireError> {
        let Some(path) = &self.archive_path else {
            return Err(WireError::new(
                ErrorCode::Persistence,
                "no archive directory configured (start the server with --archive-dir)",
            ));
        };
        let genomes = self.service.save_archive(path).map_err(WireError::from)?;
        Ok(PersistReport {
            path: path.display().to_string(),
            genomes,
        })
    }
}

/// Renders a caught panic payload as a structured wire error.
pub(crate) fn panic_error(panic: Box<dyn std::any::Any + Send>) -> WireError {
    let message = panic
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "request handler panicked".to_string());
    WireError::new(ErrorCode::Internal, format!("panic: {message}"))
}

/// Encodes one response, degrading an unserializable response (an
/// internal bug: non-finite float) to a structured Internal error rather
/// than a dropped connection.
pub(crate) fn encode_response_or_internal(response: &WireResponse) -> String {
    encode_response(response).unwrap_or_else(|e| {
        encode_response(&WireResponse::err(
            response.id,
            WireError::new(ErrorCode::Internal, format!("unserializable response: {e}")),
        ))
        .expect("error responses always serialize")
    })
}

/// Shutdown coordination shared between the accept loop, the connection
/// handlers and [`ServerHandle`]: the stop flag, the count of requests
/// currently executing, and the registry of live connections. Stopping
/// waits for the in-flight requests to drain (bounded by the configured
/// deadline), then closes every registered socket so handlers blocked in
/// `read_frame` on idle connections wake up and the accept loop's scope
/// can join them instead of deadlocking.
#[derive(Debug, Default)]
struct ServerShared {
    shutdown: AtomicBool,
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_connection: AtomicU64,
    active_requests: AtomicU64,
    drain_deadline_ms: AtomicU64,
}

impl ServerShared {
    /// Flags shutdown, waits (up to the drain deadline) for in-flight
    /// requests to finish, then force-closes every live connection.
    ///
    /// The drain is what lets a `Shutdown` command race an active batch
    /// without resetting the batch's connection: once the flag is up no
    /// handler starts a *new* request, and the one it is serving gets to
    /// send its response before the socket goes away.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let deadline =
            Instant::now() + Duration::from_millis(self.drain_deadline_ms.load(Ordering::Relaxed));
        while self.active_requests.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let connections = {
            let mut registry = self
                .connections
                .lock()
                .expect("connection registry lock never poisoned");
            std::mem::take(&mut *registry)
        };
        for stream in connections.into_values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The one shutdown protocol: flag + drain + force-close live
    /// connections, then poke the accept loop awake with a throwaway
    /// connection so it observes the flag. Shared by the wire `Shutdown`
    /// handler and [`ServerHandle::shutdown`] so the sequence cannot
    /// drift apart.
    fn stop(&self, addr: Option<SocketAddr>) {
        self.begin_shutdown();
        if let Some(addr) = addr {
            drop(TcpStream::connect(addr));
        }
    }
}

/// A bound (but not yet serving) blocking wire front-end over one
/// [`MappingService`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    dispatcher: Dispatcher,
    shared: Arc<ServerShared>,
    /// Elite genomes loaded from the archive snapshot at startup.
    archive_loaded: usize,
}

impl Server {
    /// Binds the listener and, when an archive directory is configured
    /// and holds a snapshot, loads it into the service's elite archive.
    ///
    /// # Errors
    ///
    /// Returns an error when the address cannot be bound or an existing
    /// snapshot fails to load (a *missing* snapshot is a clean cold
    /// start, not an error).
    pub fn bind(config: ServerConfig) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        let service = Arc::new(MappingService::with_telemetry_config(config.telemetry));
        let archive_path = config.archive_dir.map(|dir| dir.join(ARCHIVE_FILE_NAME));
        let mut archive_loaded = 0;
        if let Some(path) = &archive_path {
            match service.restore_archive(path)? {
                ArchiveLoad::Restored(genomes) => archive_loaded = genomes,
                ArchiveLoad::Missing => {}
                ArchiveLoad::Quarantined {
                    quarantined_to,
                    reason,
                } => eprintln!(
                    "warning: archive snapshot {} is corrupt ({reason}); \
                     quarantined to {} and starting cold",
                    path.display(),
                    quarantined_to.display()
                ),
            }
        }
        let shared = Arc::new(ServerShared::default());
        shared
            .drain_deadline_ms
            .store(config.drain_deadline_ms, Ordering::Relaxed);
        Ok(Server {
            listener,
            dispatcher: Dispatcher::new(service, config.limits, archive_path),
            shared,
            archive_loaded,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    ///
    /// # Errors
    ///
    /// Returns an error when the socket is gone.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The service this front-end serves (shared: in-process callers see
    /// the same cache, archive and pipeline counters as wire clients).
    pub fn service(&self) -> &Arc<MappingService> {
        self.dispatcher.service()
    }

    /// Elite genomes loaded from the archive snapshot at startup.
    pub fn archive_loaded(&self) -> usize {
        self.archive_loaded
    }

    /// Serves connections until a wire `Shutdown` request (or
    /// [`ServerHandle::shutdown`]) flips the stop flag. Each connection
    /// runs on its own scoped thread; the listener thread only accepts.
    ///
    /// `accept` failures never kill the server: they are all transient
    /// from the listener's point of view (`EMFILE` under fd pressure,
    /// `EINTR`, aborted handshakes), so the loop sheds the failure,
    /// backs off briefly to avoid spinning, and keeps serving — a load
    /// spike must degrade into refused connections, not a permanent
    /// outage. Only the shutdown flag ends the loop.
    ///
    /// # Errors
    ///
    /// Currently always returns `Ok` on shutdown; the `Result` is kept
    /// so callers are ready for genuinely fatal exits.
    pub fn run(&self) -> Result<(), ServerError> {
        std::thread::scope(|scope| {
            loop {
                let (stream, _) = match self.listener.accept() {
                    Ok(accepted) => accepted,
                    Err(_) => {
                        if self.shared.is_shutting_down() {
                            return Ok(());
                        }
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        continue;
                    }
                };
                if self.shared.is_shutting_down() {
                    // The wake-up connection (or any racing client) after
                    // shutdown: drop it and stop accepting. Registered
                    // connections were drained and force-closed by
                    // `begin_shutdown`, so the scope joins their handlers
                    // promptly.
                    drop(stream);
                    return Ok(());
                }
                // Small framed responses; Nagle only adds delayed-ACK
                // latency on this traffic shape.
                let _ = stream.set_nodelay(true);
                scope.spawn(move || self.handle_connection(stream));
            }
        })
    }

    /// Runs the server on a background thread, returning a handle with
    /// the bound address — the entry point for tests, the smoke binary
    /// and in-process demos.
    ///
    /// # Errors
    ///
    /// Returns an error when the bound address cannot be read back.
    pub fn spawn(self) -> Result<ServerHandle, ServerError> {
        let addr = self.local_addr()?;
        let service = Arc::clone(self.dispatcher.service());
        let shared = Arc::clone(&self.shared);
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            service,
            shared,
            thread,
        })
    }

    /// Flags shutdown, drains in-flight requests, force-closes lingering
    /// connections and pokes the accept loop awake with a throwaway
    /// connection.
    fn request_shutdown(&self) {
        self.shared.stop(self.local_addr().ok());
    }

    /// Serves one connection: frames in, frames out, until the client
    /// disconnects, framing desynchronises, or shutdown is requested.
    fn handle_connection(&self, stream: TcpStream) {
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        // Register so shutdown can interrupt a blocked read; registration
        // is racy against an in-flight `begin_shutdown`, so re-check the
        // flag afterwards and bail out if the server is already stopping.
        let connection_id = self.shared.next_connection.fetch_add(1, Ordering::Relaxed);
        if let Ok(registered) = stream.try_clone() {
            self.shared
                .connections
                .lock()
                .expect("connection registry lock never poisoned")
                .insert(connection_id, registered);
        }
        if self.shared.is_shutting_down() {
            self.unregister(connection_id);
            return;
        }
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        self.serve_frames(&mut reader, &mut writer);
        self.unregister(connection_id);
    }

    /// Removes one connection from the shutdown registry.
    fn unregister(&self, connection_id: u64) {
        self.shared
            .connections
            .lock()
            .expect("connection registry lock never poisoned")
            .remove(&connection_id);
    }

    /// The frame loop of one registered connection.
    fn serve_frames(&self, reader: &mut BufReader<TcpStream>, writer: &mut TcpStream) {
        loop {
            match frame::read_frame(reader) {
                Ok(None) => return, // clean disconnect
                Ok(Some(text)) => {
                    // Bracket the request as "active" so a concurrent
                    // shutdown drains it (response sent) instead of
                    // resetting the socket underneath it.
                    self.shared.active_requests.fetch_add(1, Ordering::SeqCst);
                    let (response, stop) = self.dispatcher.respond(&text);
                    let sent = Self::send(writer, &response);
                    self.shared.active_requests.fetch_sub(1, Ordering::SeqCst);
                    if sent.is_err() {
                        return;
                    }
                    if stop {
                        self.request_shutdown();
                        return;
                    }
                    if self.shared.is_shutting_down() {
                        return;
                    }
                }
                Err(error) => {
                    // Answer the framing failure structurally, then keep
                    // the connection only if the stream is still
                    // synchronised (payload-level failure); a corrupt
                    // header or dead socket forces a close.
                    let resynchronizable = error.is_resynchronizable();
                    let io_failure = matches!(error, FrameError::Io(_));
                    if !io_failure {
                        let response = WireResponse::err(
                            0,
                            WireError::malformed(format!("unreadable frame: {error}")),
                        );
                        let _ = Self::send(writer, &response);
                    }
                    if !resynchronizable {
                        return;
                    }
                }
            }
        }
    }

    /// Encodes and frames one response.
    fn send(writer: &mut TcpStream, response: &WireResponse) -> std::io::Result<()> {
        frame::write_frame(writer, &encode_response_or_internal(response))
    }
}

/// A running blocking server on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<MappingService>,
    shared: Arc<ServerShared>,
    thread: std::thread::JoinHandle<Result<(), ServerError>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served [`MappingService`].
    pub fn service(&self) -> &Arc<MappingService> {
        &self.service
    }

    /// Stops the accept loop (draining in-flight requests first) and
    /// joins the server thread.
    ///
    /// # Errors
    ///
    /// Propagates the server's exit result.
    pub fn shutdown(self) -> Result<(), ServerError> {
        self.shared.stop(Some(self.addr));
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(ServerError::Io(std::io::Error::other(
                "server thread panicked",
            ))),
        }
    }

    /// Waits for the server to stop on its own (a wire `Shutdown`).
    ///
    /// # Errors
    ///
    /// Propagates the server's exit result.
    pub fn join(self) -> Result<(), ServerError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(ServerError::Io(std::io::Error::other(
                "server thread panicked",
            ))),
        }
    }
}

/// Binds and spawns a blocking server in one call — the test/demo entry
/// point.
///
/// # Errors
///
/// See [`Server::bind`] and [`Server::spawn`].
pub fn spawn_on_ephemeral_port(
    archive_dir: Option<PathBuf>,
    limits: RequestLimits,
) -> Result<ServerHandle, ServerError> {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        archive_dir,
        limits,
        ..ServerConfig::default()
    })?
    .spawn()
}

/// Resolves a user-supplied address string early so the binary can report
/// bad `--addr` values before binding.
///
/// # Errors
///
/// Returns an error for unresolvable addresses.
pub fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::other(format!("address `{addr}` resolves to nothing")))
}
