//! A small blocking wire client — what the demo, the benchmarks and the
//! CI round-trip smoke use to talk to `mnc-server`.
//!
//! [`ClientConfig`] hardens the transport: a connect timeout with
//! bounded, jittered-backoff reconnect attempts, optional read/write
//! timeouts (so a stalled server surfaces as an error instead of a
//! hang), and a single transparent retry on a fresh connection for
//! *idempotent* commands (`Ping`, `ListModels`, `ListPlatforms`,
//! `Stats`, `Metrics`). `Submit`/`SubmitBatch` are never retried — a
//! lost response does not say whether the search ran, and silently
//! re-running one is exactly the surprise a deadline-bounded caller
//! cannot absorb; `Persist` and `Shutdown` mutate server state and are
//! likewise never retried.

use mnc_runtime::{MappingRequest, MappingResponse};
use mnc_wire::frame::{self, FrameError};
use mnc_wire::{
    decode_response, encode_request, MetricsReport, PersistReport, ServiceStats, WireBatch,
    WireBatchReport, WireBody, WireError, WirePayload, WireRequest, PROTOCOL_VERSION,
};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Transport-hardening knobs for [`WireClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Per-attempt TCP connect timeout; `None` blocks on the OS default.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout; `None` waits forever. Size it to the slowest
    /// answer expected on the connection — a deadline-bounded `Submit`
    /// answers within its deadline plus one generation's slack.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout; `None` waits forever.
    pub write_timeout: Option<Duration>,
    /// Total connect attempts (including the first); later attempts wait
    /// an exponentially growing, jittered backoff first.
    pub connect_attempts: u32,
    /// First backoff delay, doubled per attempt up to [`backoff_cap`]
    /// with up to 50% deterministic jitter on top.
    ///
    /// [`backoff_cap`]: ClientConfig::backoff_cap
    pub backoff_base: Duration,
    /// Cap on one backoff delay (pre-jitter).
    pub backoff_cap: Duration,
    /// Retry an idempotent command once on a fresh connection after a
    /// transport failure (I/O error, disconnect, framing desync).
    pub retry_idempotent: bool,
}

impl Default for ClientConfig {
    /// The compatible default: no timeouts, one connect attempt, no
    /// retries — exactly the pre-hardening behaviour. Opt into
    /// [`ClientConfig::hardened`] (or set fields) for the robust flavour.
    fn default() -> Self {
        ClientConfig {
            connect_timeout: None,
            read_timeout: None,
            write_timeout: None,
            connect_attempts: 1,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            retry_idempotent: false,
        }
    }
}

impl ClientConfig {
    /// A robust profile for unattended callers (smoke harnesses, cron
    /// scrapes): bounded connect/read/write timeouts, three connect
    /// attempts with jittered backoff, idempotent retry on.
    #[must_use]
    pub fn hardened() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            connect_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            retry_idempotent: true,
        }
    }
}

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// Framing failure.
    Frame(FrameError),
    /// The server closed the connection before answering.
    Disconnected,
    /// The exchange violated the protocol (bad JSON, wrong id, wrong
    /// payload kind for the command).
    Protocol(String),
    /// The server answered with a structured error.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client framing error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to one `mnc-server`, issuing one command at a
/// time and correlating responses by id.
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    /// Resolved at connect time so reconnects skip re-resolution.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
}

impl WireClient {
    /// Connects to a server with the compatible
    /// [`ClientConfig::default`] (no timeouts, no retries).
    ///
    /// # Errors
    ///
    /// Returns an error when the TCP connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server under the given transport profile.
    ///
    /// # Errors
    ///
    /// Returns an error when no connect attempt succeeds within
    /// [`ClientConfig::connect_attempts`].
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = Self::connect_stream(&addrs, &config)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(WireClient {
            reader,
            writer: stream,
            next_id: 1,
            addrs,
            config,
        })
    }

    /// One bounded-backoff connect loop over the resolved addresses.
    fn connect_stream(addrs: &[SocketAddr], config: &ClientConfig) -> std::io::Result<TcpStream> {
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            ));
        }
        let mut last_error = None;
        for attempt in 0..config.connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(config, attempt, addrs));
            }
            for addr in addrs {
                let connected = match config.connect_timeout {
                    Some(timeout) => TcpStream::connect_timeout(addr, timeout),
                    None => TcpStream::connect(addr),
                };
                match connected {
                    Ok(stream) => {
                        // Request/response framing sends small segments;
                        // Nagle only adds delayed-ACK latency here.
                        stream.set_nodelay(true)?;
                        stream.set_read_timeout(config.read_timeout)?;
                        stream.set_write_timeout(config.write_timeout)?;
                        return Ok(stream);
                    }
                    Err(e) => last_error = Some(e),
                }
            }
        }
        Err(last_error.expect("at least one attempt ran"))
    }

    /// Replaces the transport with a freshly connected stream.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = Self::connect_stream(&self.addrs, &self.config)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    /// Issues one command and returns the payload, mapping structured
    /// server errors to [`ClientError::Server`]. Under
    /// [`ClientConfig::retry_idempotent`], an idempotent command that
    /// dies on the transport is retried exactly once on a fresh
    /// connection; non-idempotent commands surface the failure directly.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn call(&mut self, body: WireBody) -> Result<WirePayload, ClientError> {
        if self.config.retry_idempotent && is_idempotent(&body) {
            return match self.call_once(body.clone()) {
                Err(error) if is_transport_failure(&error) => {
                    self.reconnect()?;
                    self.call_once(body)
                }
                outcome => outcome,
            };
        }
        self.call_once(body)
    }

    fn call_once(&mut self, body: WireBody) -> Result<WirePayload, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = WireRequest::new(id, body);
        let text = encode_request(&request).map_err(|e| ClientError::Protocol(e.to_string()))?;
        frame::write_frame(&mut self.writer, &text)?;
        let reply = frame::read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        let response = decode_response(&reply).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if response.version != PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server answered with protocol version {}",
                response.version
            )));
        }
        // id 0 marks a response the server could not correlate (it could
        // not decode the request far enough); any other mismatch is a
        // protocol violation.
        if response.id != id && response.id != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        response.outcome.into_result().map_err(ClientError::Server)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant, including unexpected payload kinds.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(WireBody::Ping)? {
            WirePayload::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// The server's registered model presets.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn models(&mut self) -> Result<Vec<String>, ClientError> {
        match self.call(WireBody::ListModels)? {
            WirePayload::Models(names) => Ok(names),
            other => Err(unexpected("Models", &other)),
        }
    }

    /// The server's registered platform presets.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn platforms(&mut self) -> Result<Vec<String>, ClientError> {
        match self.call(WireBody::ListPlatforms)? {
            WirePayload::Platforms(names) => Ok(names),
            other => Err(unexpected("Platforms", &other)),
        }
    }

    /// Submits one mapping request.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant; service-level failures arrive as
    /// [`ClientError::Server`].
    pub fn submit(&mut self, request: &MappingRequest) -> Result<MappingResponse, ClientError> {
        match self.call(WireBody::Submit(Box::new(request.clone())))? {
            WirePayload::Front(response) => Ok(response),
            other => Err(unexpected("Front", &other)),
        }
    }

    /// Submits a batch through the coalescing scheduler.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn submit_batch(&mut self, batch: WireBatch) -> Result<WireBatchReport, ClientError> {
        match self.call(WireBody::SubmitBatch(batch))? {
            WirePayload::Batch(report) => Ok(report),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Snapshots the server's cache/pipeline/archive counters.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.call(WireBody::Stats)? {
            WirePayload::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Snapshots the server's full telemetry registry: histograms with
    /// latency digests, counters, gauges and the Prometheus rendering.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(WireBody::Metrics)? {
            WirePayload::Metrics(report) => Ok(report),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Persists the server's elite archive to its `--archive-dir`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant; [`ClientError::Server`] with a
    /// persistence code when no archive directory is configured.
    pub fn persist(&mut self) -> Result<PersistReport, ClientError> {
        match self.call(WireBody::Persist)? {
            WirePayload::Persisted(report) => Ok(report),
            other => Err(unexpected("Persisted", &other)),
        }
    }

    /// Asks the server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(WireBody::Shutdown)? {
            WirePayload::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

/// Commands safe to repeat: pure reads of server state. `Submit` and
/// `SubmitBatch` run searches (a retry could run one twice and is the
/// caller's call); `Persist` writes a snapshot; `Shutdown` drains.
fn is_idempotent(body: &WireBody) -> bool {
    matches!(
        body,
        WireBody::Ping
            | WireBody::ListModels
            | WireBody::ListPlatforms
            | WireBody::Stats
            | WireBody::Metrics
    )
}

/// Failures of the transport itself — where a fresh connection can
/// plausibly help. Structured server errors and protocol violations are
/// answers, not transport failures.
fn is_transport_failure(error: &ClientError) -> bool {
    matches!(
        error,
        ClientError::Io(_) | ClientError::Frame(_) | ClientError::Disconnected
    )
}

/// Exponential backoff with a deterministic jitter (up to +50%), keyed
/// off the attempt and target so concurrent clients do not stampede in
/// lockstep yet tests stay reproducible.
fn backoff_delay(config: &ClientConfig, attempt: u32, addrs: &[SocketAddr]) -> Duration {
    let base = config
        .backoff_base
        .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
        .min(config.backoff_cap);
    let mut hasher = DefaultHasher::new();
    attempt.hash(&mut hasher);
    addrs.hash(&mut hasher);
    let jitter_micros = if base.as_micros() == 0 {
        0
    } else {
        hasher.finish() % (base.as_micros() / 2).max(1) as u64
    };
    base + Duration::from_micros(jitter_micros)
}

fn unexpected(wanted: &str, got: &WirePayload) -> ClientError {
    let kind = match got {
        WirePayload::Pong => "Pong",
        WirePayload::Models(_) => "Models",
        WirePayload::Platforms(_) => "Platforms",
        WirePayload::Front(_) => "Front",
        WirePayload::Batch(_) => "Batch",
        WirePayload::Stats(_) => "Stats",
        WirePayload::Metrics(_) => "Metrics",
        WirePayload::Persisted(_) => "Persisted",
        WirePayload::ShuttingDown => "ShuttingDown",
    };
    ClientError::Protocol(format!("expected a {wanted} payload, got {kind}"))
}
