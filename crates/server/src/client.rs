//! A small blocking wire client — what the demo, the benchmarks and the
//! CI round-trip smoke use to talk to `mnc-server`.

use mnc_runtime::{MappingRequest, MappingResponse};
use mnc_wire::frame::{self, FrameError};
use mnc_wire::{
    decode_response, encode_request, MetricsReport, PersistReport, ServiceStats, WireBatch,
    WireBatchReport, WireBody, WireError, WirePayload, WireRequest, PROTOCOL_VERSION,
};
use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// Framing failure.
    Frame(FrameError),
    /// The server closed the connection before answering.
    Disconnected,
    /// The exchange violated the protocol (bad JSON, wrong id, wrong
    /// payload kind for the command).
    Protocol(String),
    /// The server answered with a structured error.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client framing error: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Protocol(reason) => write!(f, "protocol violation: {reason}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to one `mnc-server`, issuing one command at a
/// time and correlating responses by id.
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl WireClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Returns an error when the TCP connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // Request/response framing sends small segments; Nagle only adds
        // delayed-ACK latency here.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(WireClient {
            reader,
            writer: stream,
            next_id: 1,
        })
    }

    /// Issues one command and returns the payload, mapping structured
    /// server errors to [`ClientError::Server`].
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn call(&mut self, body: WireBody) -> Result<WirePayload, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let request = WireRequest::new(id, body);
        let text = encode_request(&request).map_err(|e| ClientError::Protocol(e.to_string()))?;
        frame::write_frame(&mut self.writer, &text)?;
        let reply = frame::read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        let response = decode_response(&reply).map_err(|e| ClientError::Protocol(e.to_string()))?;
        if response.version != PROTOCOL_VERSION {
            return Err(ClientError::Protocol(format!(
                "server answered with protocol version {}",
                response.version
            )));
        }
        // id 0 marks a response the server could not correlate (it could
        // not decode the request far enough); any other mismatch is a
        // protocol violation.
        if response.id != id && response.id != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                response.id
            )));
        }
        response.outcome.into_result().map_err(ClientError::Server)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant, including unexpected payload kinds.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(WireBody::Ping)? {
            WirePayload::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// The server's registered model presets.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn models(&mut self) -> Result<Vec<String>, ClientError> {
        match self.call(WireBody::ListModels)? {
            WirePayload::Models(names) => Ok(names),
            other => Err(unexpected("Models", &other)),
        }
    }

    /// The server's registered platform presets.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn platforms(&mut self) -> Result<Vec<String>, ClientError> {
        match self.call(WireBody::ListPlatforms)? {
            WirePayload::Platforms(names) => Ok(names),
            other => Err(unexpected("Platforms", &other)),
        }
    }

    /// Submits one mapping request.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant; service-level failures arrive as
    /// [`ClientError::Server`].
    pub fn submit(&mut self, request: &MappingRequest) -> Result<MappingResponse, ClientError> {
        match self.call(WireBody::Submit(request.clone()))? {
            WirePayload::Front(response) => Ok(response),
            other => Err(unexpected("Front", &other)),
        }
    }

    /// Submits a batch through the coalescing scheduler.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn submit_batch(&mut self, batch: WireBatch) -> Result<WireBatchReport, ClientError> {
        match self.call(WireBody::SubmitBatch(batch))? {
            WirePayload::Batch(report) => Ok(report),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Snapshots the server's cache/pipeline/archive counters.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match self.call(WireBody::Stats)? {
            WirePayload::Stats(stats) => Ok(stats),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Snapshots the server's full telemetry registry: histograms with
    /// latency digests, counters, gauges and the Prometheus rendering.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(WireBody::Metrics)? {
            WirePayload::Metrics(report) => Ok(report),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Persists the server's elite archive to its `--archive-dir`.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant; [`ClientError::Server`] with a
    /// persistence code when no archive directory is configured.
    pub fn persist(&mut self) -> Result<PersistReport, ClientError> {
        match self.call(WireBody::Persist)? {
            WirePayload::Persisted(report) => Ok(report),
            other => Err(unexpected("Persisted", &other)),
        }
    }

    /// Asks the server to stop accepting connections.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`] variant.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(WireBody::Shutdown)? {
            WirePayload::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &WirePayload) -> ClientError {
    let kind = match got {
        WirePayload::Pong => "Pong",
        WirePayload::Models(_) => "Models",
        WirePayload::Platforms(_) => "Platforms",
        WirePayload::Front(_) => "Front",
        WirePayload::Batch(_) => "Batch",
        WirePayload::Stats(_) => "Stats",
        WirePayload::Metrics(_) => "Metrics",
        WirePayload::Persisted(_) => "Persisted",
        WirePayload::ShuttingDown => "ShuttingDown",
    };
    ClientError::Protocol(format!("expected a {wanted} payload, got {kind}"))
}
