//! Fault-injection regression test for the reactor's coalescing path.
//! Lives in its own integration-test binary because [`FaultPlan`] is
//! process-global and must not race the round-trip tests.

use mnc_runtime::{FaultPlan, MappingRequest};
use mnc_server::reactor::spawn_reactor_on_ephemeral_port;
use mnc_server::WireClient;
use mnc_wire::{encode_request, frame, ErrorCode, WireBody, WireRequest};
use std::io::{BufReader, Write};
use std::net::TcpStream;

fn request(seed: u64) -> MappingRequest {
    // Population 64 guarantees well over 32 unique cache-miss
    // evaluations in generation 0 alone, so the armed panic always
    // fires before the search can complete.
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(40)
        .population_size(64)
        .seed(seed)
}

/// A panic in a search leader must answer every coalesced follower with
/// a structured `Internal` error and clean the in-flight index so the
/// same request can be served again.
///
/// The two submissions are pipelined in one TCP write: the event loop
/// decodes and handles every buffered frame before it delivers worker
/// completions, so the second submit deterministically coalesces onto
/// the first while it is still pending.
#[test]
fn leader_panic_answers_coalesced_followers_and_cleans_the_index() {
    let _guard = FaultPlan::guard();
    let handle = spawn_reactor_on_ephemeral_port(None, Default::default()).unwrap();
    let addr = handle.addr();

    // One frame buffer holding two identical submits (ids 1 and 2).
    let repeated = request(9001);
    let mut pipelined = String::new();
    for id in [1u64, 2u64] {
        let text = encode_request(&WireRequest::new(
            id,
            WireBody::Submit(Box::new(repeated.clone())),
        ))
        .unwrap();
        pipelined.push_str(&format!("{}\n{text}", text.len()));
    }

    FaultPlan::arm_eval_panic(8);
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(pipelined.as_bytes()).unwrap();

    let mut answered = std::collections::HashMap::new();
    for _ in 0..2 {
        let text = frame::read_frame(&mut reader).unwrap().expect("answered");
        let response = mnc_wire::decode_response(&text).unwrap();
        answered.insert(response.id, response.outcome);
    }

    // Both the leader and the coalesced follower got the structured
    // error; nobody hung, nobody got a half-answer.
    for id in [1u64, 2u64] {
        match answered.get(&id).expect("both ids answered") {
            mnc_wire::WireOutcome::Err(error) => {
                assert_eq!(error.code, ErrorCode::Internal, "id {id}: {error}");
                assert!(
                    error.message.contains("panic"),
                    "id {id} hides the cause: {}",
                    error.message
                );
            }
            mnc_wire::WireOutcome::Ok(_) => panic!("id {id} succeeded through an armed panic"),
        }
    }

    // The follower really did coalesce (it would otherwise have run its
    // own — successful — search, failing the assertions above).
    let mut client = WireClient::connect(addr).unwrap();
    let metrics = client.metrics().unwrap();
    let coalesced = metrics
        .metrics
        .counter_value("mnc_inflight_coalesced_total")
        .expect("coalescing counter registered");
    assert!(coalesced >= 1, "the second submit never joined the leader");

    // The in-flight index entry died with the job: an identical request
    // must start a fresh search and succeed, not chain onto a ghost.
    let recovered = client.submit(&repeated).unwrap();
    assert!(!recovered.pareto_front.is_empty());

    handle.shutdown().unwrap();
}
