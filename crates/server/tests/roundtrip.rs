//! Integration tests of the wire front-end: bit-identical round trips,
//! hardened error paths, and archive persistence across a simulated
//! restart.

use mnc_runtime::{BatchConfig, MappingRequest, MappingService};
use mnc_server::reactor::spawn_reactor_on_ephemeral_port;
use mnc_server::{
    spawn_on_ephemeral_port, ClientError, ReactorConfig, ReactorServer, RequestLimits,
    ServerConfig, WireClient,
};
use mnc_wire::frame;
use mnc_wire::{ErrorCode, WireBatch, WireOutcome, WireResult};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn small_request() -> MappingRequest {
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(300)
        .generations(2)
        .population_size(8)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mnc_server_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn wire_submit_is_bit_identical_to_in_process_submit() {
    let handle = spawn_on_ephemeral_port(None, RequestLimits::default()).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();

    let request = small_request();
    let over_wire = client.submit(&request).unwrap();
    let in_process = MappingService::new().submit(&request).unwrap();

    assert_eq!(over_wire.pareto_front, in_process.pareto_front);
    assert_eq!(over_wire.best_by_objective, in_process.best_by_objective);
    for (a, b) in over_wire.pareto_front.iter().zip(&in_process.pareto_front) {
        assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
        assert_eq!(
            a.result.average_energy_mj.to_bits(),
            b.result.average_energy_mj.to_bits()
        );
        assert_eq!(
            a.result.average_latency_ms.to_bits(),
            b.result.average_latency_ms.to_bits()
        );
    }
    // The per-request pipeline trace crossed the wire intact.
    assert_eq!(over_wire.stats.evaluations, in_process.stats.evaluations);
    assert!(over_wire.stats.stage_micros_total() > 0.0);

    handle.shutdown().unwrap();
}

#[test]
fn wire_batch_coalesces_and_reports_per_request_results() {
    let handle = spawn_on_ephemeral_port(None, RequestLimits::default()).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();

    let requests = vec![
        small_request(),
        small_request(),
        MappingRequest::new("no_such_model", "dual_test"),
    ];
    let report = client
        .submit_batch(WireBatch {
            requests,
            config: BatchConfig::new().max_concurrent(2),
        })
        .unwrap();

    assert_eq!(report.responses.len(), 3);
    assert_eq!(report.stats.coalesced_requests, 1);
    let leader = match &report.responses[0] {
        WireResult::Ok(response) => response,
        WireResult::Err(error) => panic!("leader failed: {error}"),
    };
    match &report.responses[1] {
        WireResult::Ok(duplicate) => {
            assert_eq!(duplicate.pareto_front, leader.pareto_front);
            assert_eq!(duplicate.stats, leader.stats);
        }
        WireResult::Err(error) => panic!("duplicate failed: {error}"),
    }
    match &report.responses[2] {
        WireResult::Err(error) => assert_eq!(error.code, ErrorCode::UnknownModel),
        WireResult::Ok(_) => panic!("unknown model was answered"),
    }

    handle.shutdown().unwrap();
}

/// Sends a raw payload in one frame and returns the response text.
fn raw_frame_exchange(addr: SocketAddr, payload: &str) -> mnc_wire::WireResponse {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    frame::write_frame(&mut writer, payload).unwrap();
    let text = frame::read_frame(&mut reader).unwrap().expect("answered");
    mnc_wire::decode_response(&text).unwrap()
}

#[test]
fn malformed_json_gets_a_structured_error_and_keeps_the_connection() {
    let handle = spawn_on_ephemeral_port(None, RequestLimits::default()).unwrap();
    let addr = handle.addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Malformed JSON in a valid frame → MalformedRequest, id 0.
    frame::write_frame(&mut writer, "{\"version\": 1, \"id\": oops").unwrap();
    let response =
        mnc_wire::decode_response(&frame::read_frame(&mut reader).unwrap().unwrap()).unwrap();
    assert_eq!(response.id, 0);
    match response.outcome {
        WireOutcome::Err(error) => assert_eq!(error.code, ErrorCode::MalformedRequest),
        WireOutcome::Ok(_) => panic!("malformed JSON accepted"),
    }

    // A shape mismatch (valid JSON, wrong fields) is also structured.
    frame::write_frame(&mut writer, "{\"hello\": 1}").unwrap();
    let response =
        mnc_wire::decode_response(&frame::read_frame(&mut reader).unwrap().unwrap()).unwrap();
    match response.outcome {
        WireOutcome::Err(error) => assert_eq!(error.code, ErrorCode::MalformedRequest),
        WireOutcome::Ok(_) => panic!("shape mismatch accepted"),
    }

    // The same connection still serves well-formed requests.
    frame::write_frame(
        &mut writer,
        &mnc_wire::encode_request(&mnc_wire::WireRequest::new(5, mnc_wire::WireBody::Ping))
            .unwrap(),
    )
    .unwrap();
    let response =
        mnc_wire::decode_response(&frame::read_frame(&mut reader).unwrap().unwrap()).unwrap();
    assert_eq!(response.id, 5);
    assert!(matches!(
        response.outcome.into_result(),
        Ok(mnc_wire::WirePayload::Pong)
    ));

    handle.shutdown().unwrap();
}

#[test]
fn corrupt_framing_is_answered_before_the_connection_closes() {
    let handle = spawn_on_ephemeral_port(None, RequestLimits::default()).unwrap();
    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // A header that is not a number desynchronises the stream: the
    // server answers once, structurally, then closes.
    use std::io::Write;
    writer.write_all(b"not-a-length\n").unwrap();
    writer.flush().unwrap();
    let text = frame::read_frame(&mut reader).unwrap().expect("answered");
    let response = mnc_wire::decode_response(&text).unwrap();
    match response.outcome {
        WireOutcome::Err(error) => assert_eq!(error.code, ErrorCode::MalformedRequest),
        WireOutcome::Ok(_) => panic!("corrupt framing accepted"),
    }
    assert!(
        frame::read_frame(&mut reader).unwrap().is_none(),
        "desynchronised connection must close after the error"
    );

    handle.shutdown().unwrap();
}

#[test]
fn version_and_budget_violations_are_structured() {
    let limits = RequestLimits {
        max_batch_requests: 2,
        max_evaluations: 100,
        max_validation_samples: 500,
    };
    let handle = spawn_on_ephemeral_port(None, limits).unwrap();
    let addr = handle.addr();
    let mut client = WireClient::connect(addr).unwrap();

    // Unsupported protocol version (raw, the client always sends v1).
    let response = raw_frame_exchange(addr, "{\"version\": 2, \"id\": 9, \"body\": \"Ping\"}");
    assert_eq!(response.id, 9);
    match response.outcome {
        WireOutcome::Err(error) => assert_eq!(error.code, ErrorCode::UnsupportedVersion),
        WireOutcome::Ok(_) => panic!("future version accepted"),
    }

    // Over the evaluation cap (2 × 8 = 16 ≤ 100 is fine; 20 × 8 = 160 is
    // not) — unless the request's own max_evaluations caps it back.
    match client.submit(&small_request().generations(20)) {
        Err(ClientError::Server(error)) => assert_eq!(error.code, ErrorCode::OverBudget),
        other => panic!("over-budget submit gave {other:?}"),
    }
    client
        .submit(&small_request().generations(20).max_evaluations(50))
        .expect("explicitly capped request is within budget");

    // Over the validation-sample cap.
    match client.submit(&small_request().validation_samples(501)) {
        Err(ClientError::Server(error)) => assert_eq!(error.code, ErrorCode::OverBudget),
        other => panic!("over-sample submit gave {other:?}"),
    }

    // Over the batch-size cap: the whole command is rejected.
    match client.submit_batch(WireBatch {
        requests: vec![small_request(); 3],
        config: BatchConfig::default(),
    }) {
        Err(ClientError::Server(error)) => assert_eq!(error.code, ErrorCode::OverBudget),
        other => panic!("oversized batch gave {other:?}"),
    }

    // A mixed batch answers over-budget members structurally and still
    // serves the rest.
    let report = client
        .submit_batch(WireBatch {
            requests: vec![small_request(), small_request().validation_samples(501)],
            config: BatchConfig::default(),
        })
        .unwrap();
    assert!(matches!(report.responses[0], WireResult::Ok(_)));
    match &report.responses[1] {
        WireResult::Err(error) => assert_eq!(error.code, ErrorCode::OverBudget),
        WireResult::Ok(_) => panic!("over-budget batch member was served"),
    }
    // Batch accounting covers the whole batch, not just the admitted
    // members — the rejected request counts in `requests` but ran no
    // search.
    assert_eq!(report.stats.requests, report.responses.len());
    assert_eq!(report.stats.unique_requests, 1);

    handle.shutdown().unwrap();
}

#[test]
fn persisted_archive_replays_the_warm_request_after_restart() {
    let dir = temp_dir("persist");
    let limits = RequestLimits::default();

    // First life: answer two requests (filling the archive), persist,
    // then run a warm-started request.
    let handle = spawn_on_ephemeral_port(Some(dir.clone()), limits).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();
    client.submit(&small_request()).unwrap();
    client.submit(&small_request().seed(77)).unwrap();
    let persisted = client.persist().unwrap();
    assert!(persisted.genomes > 0);

    let warm_request = small_request()
        .seed(4242)
        .generations(5)
        .stall_generations(2)
        .warm_start(true);
    let warm_before = client.submit(&warm_request).unwrap();
    assert!(warm_before.stats.warm_start_seeds > 0);
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Second life: the archive loads from disk, so the same warm request
    // seeds identically — same evaluation count, bit-identical front
    // ("no more evaluations / no worse front" with equality).
    let handle = spawn_on_ephemeral_port(Some(dir.clone()), limits).unwrap();
    assert!(handle.service().elite_archive().len() >= persisted.genomes);
    let mut client = WireClient::connect(handle.addr()).unwrap();
    let warm_after = client.submit(&warm_request).unwrap();
    assert_eq!(warm_after.stats.evaluations, warm_before.stats.evaluations);
    assert_eq!(
        warm_after.stats.warm_start_seeds,
        warm_before.stats.warm_start_seeds
    );
    assert_eq!(warm_after.pareto_front, warm_before.pareto_front);
    assert_eq!(warm_after.best_by_objective, warm_before.best_by_objective);

    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_carry_cache_pipeline_and_archive_counters() {
    let handle = spawn_on_ephemeral_port(None, RequestLimits::default()).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();

    client.submit(&small_request()).unwrap();
    // A verbatim repeat replays from the response cache on the fast path
    // — no second search runs for it.
    client.submit(&small_request()).unwrap();
    // A warm-started variant is a different request: it searches, and its
    // population re-evaluates genomes the first search already scored, so
    // the evaluation cache registers hits.
    client.submit(&small_request().warm_start(true)).unwrap();
    let stats = client.stats().unwrap();

    assert_eq!(stats.pipeline.searches_run, 2);
    assert_eq!(
        stats.pipeline.fast_path_answered, 1,
        "the verbatim repeat was answered without searching"
    );
    assert_eq!(stats.pipeline.stages.len(), mnc_runtime::STAGE_COUNT);
    assert!(stats.pipeline.stages.iter().all(|s| s.errors == 0));
    assert!(
        stats.cache.hits > 0,
        "the warm search re-hit cached evaluations"
    );
    assert!(stats.archive_genomes > 0);

    // Persist without --archive-dir is a structured persistence error.
    match client.persist() {
        Err(ClientError::Server(error)) => assert_eq!(error.code, ErrorCode::Persistence),
        other => panic!("persist without archive dir gave {other:?}"),
    }

    handle.shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Reactor front-end
// ---------------------------------------------------------------------------

#[test]
fn reactor_submit_and_batch_are_bit_identical_to_in_process() {
    let handle = spawn_reactor_on_ephemeral_port(None, RequestLimits::default()).unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();

    let request = small_request();
    let over_wire = client.submit(&request).unwrap();
    let in_process = MappingService::new().submit(&request).unwrap();
    assert_eq!(over_wire.pareto_front, in_process.pareto_front);
    assert_eq!(over_wire.best_by_objective, in_process.best_by_objective);
    for (a, b) in over_wire.pareto_front.iter().zip(&in_process.pareto_front) {
        assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
    }

    // Batches run on the search-worker pool but keep the coalescing
    // semantics of the blocking server.
    let report = client
        .submit_batch(WireBatch {
            requests: vec![
                small_request().seed(5),
                small_request().seed(5),
                MappingRequest::new("no_such_model", "dual_test"),
            ],
            config: BatchConfig::new().max_concurrent(2),
        })
        .unwrap();
    assert_eq!(report.responses.len(), 3);
    assert_eq!(report.stats.coalesced_requests, 1);
    assert!(matches!(report.responses[0], WireResult::Ok(_)));
    assert!(matches!(report.responses[1], WireResult::Ok(_)));
    match &report.responses[2] {
        WireResult::Err(error) => assert_eq!(error.code, ErrorCode::UnknownModel),
        WireResult::Ok(_) => panic!("unknown model was answered"),
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn reactor_sheds_searches_with_a_structured_overloaded_error() {
    // A zero-depth queue admits no search jobs at all: every fast-path
    // miss is shed. Fast-path work (ping, catalogues) must keep flowing.
    let server = ReactorServer::bind(
        ServerConfig::default(),
        ReactorConfig {
            queue_depth: 0,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let handle = server.spawn().unwrap();
    let mut client = WireClient::connect(handle.addr()).unwrap();

    match client.submit(&small_request()) {
        Err(ClientError::Server(error)) => {
            assert_eq!(error.code, ErrorCode::Overloaded);
            assert!(!error.message.is_empty(), "shed reason travels to clients");
        }
        other => panic!("shed submit gave {other:?}"),
    }
    // Shedding is per-request, not per-connection: the same connection
    // still answers inline work.
    client.ping().expect("connection survived the shed");
    assert!(!client.models().unwrap().is_empty());

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn reactor_isolates_a_slow_reader() {
    let handle = spawn_reactor_on_ephemeral_port(None, RequestLimits::default()).unwrap();
    let addr = handle.addr();

    // The slow reader floods pings and reads none of the responses.
    let slow = TcpStream::connect(addr).unwrap();
    let mut slow_writer = slow.try_clone().unwrap();
    const FLOOD: u64 = 64;
    for id in 1..=FLOOD {
        let text =
            mnc_wire::encode_request(&mnc_wire::WireRequest::new(id, mnc_wire::WireBody::Ping))
                .unwrap();
        frame::write_frame(&mut slow_writer, &text).unwrap();
    }

    // A well-behaved client on another connection is answered promptly —
    // the reactor never blocks on the slow reader's socket.
    let mut client = WireClient::connect(addr).unwrap();
    let started = std::time::Instant::now();
    client.ping().expect("fast client answered");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "fast client stalled behind a slow reader"
    );

    // Once the slow reader drains, every buffered response is intact and
    // in order.
    let mut slow_reader = BufReader::new(slow);
    for id in 1..=FLOOD {
        let text = frame::read_frame(&mut slow_reader)
            .unwrap()
            .expect("buffered pong delivered");
        let response = mnc_wire::decode_response(&text).unwrap();
        assert_eq!(response.id, id);
        assert!(matches!(
            response.outcome.into_result(),
            Ok(mnc_wire::WirePayload::Pong)
        ));
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn reactor_shutdown_drains_an_active_batch_before_teardown() {
    // Regression: a Shutdown racing an in-flight batch used to tear the
    // connection down before the batch response was written. The drain
    // phase must deliver the queued batch first.
    let handle = spawn_reactor_on_ephemeral_port(None, RequestLimits::default()).unwrap();

    let stream = TcpStream::connect(handle.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Queue a batch, then shut down on the same connection before the
    // batch can possibly have finished.
    let batch = mnc_wire::WireRequest::new(
        1,
        mnc_wire::WireBody::SubmitBatch(WireBatch {
            requests: vec![
                small_request().seed(11),
                small_request().seed(12),
                small_request().seed(13),
            ],
            config: BatchConfig::new().max_concurrent(2),
        }),
    );
    frame::write_frame(&mut writer, &mnc_wire::encode_request(&batch).unwrap()).unwrap();
    let shutdown = mnc_wire::WireRequest::new(2, mnc_wire::WireBody::Shutdown);
    frame::write_frame(&mut writer, &mnc_wire::encode_request(&shutdown).unwrap()).unwrap();

    // The shutdown acknowledgement comes back immediately; the batch
    // report follows once the workers drain.
    let mut got_batch = false;
    let mut got_shutdown = false;
    while !(got_batch && got_shutdown) {
        let text = frame::read_frame(&mut reader)
            .unwrap()
            .expect("drain delivered every pending response");
        let response = mnc_wire::decode_response(&text).unwrap();
        match response.id {
            1 => {
                match response.outcome.into_result().expect("batch succeeded") {
                    mnc_wire::WirePayload::Batch(report) => {
                        assert_eq!(report.responses.len(), 3);
                        assert!(report
                            .responses
                            .iter()
                            .all(|r| matches!(r, WireResult::Ok(_))));
                    }
                    other => panic!("batch answered with {other:?}"),
                }
                got_batch = true;
            }
            2 => {
                assert!(matches!(
                    response.outcome.into_result(),
                    Ok(mnc_wire::WirePayload::ShuttingDown)
                ));
                got_shutdown = true;
            }
            other => panic!("unexpected response id {other}"),
        }
    }

    handle.join().unwrap();
}

#[test]
fn blocking_shutdown_drains_an_active_request_before_teardown() {
    // Same regression on the legacy blocking server: Shutdown from one
    // connection must wait for another connection's in-flight batch.
    let handle = spawn_on_ephemeral_port(None, RequestLimits::default()).unwrap();
    let addr = handle.addr();

    let batch_thread = std::thread::spawn(move || {
        let mut client = WireClient::connect(addr).unwrap();
        client.submit_batch(WireBatch {
            requests: vec![
                small_request().seed(21),
                small_request().seed(22),
                small_request().seed(23),
            ],
            config: BatchConfig::new().max_concurrent(2),
        })
    });

    // Let the batch land in a connection thread, then shut down from a
    // second connection while it is (very likely) still searching.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut shutdown_client = WireClient::connect(addr).unwrap();
    shutdown_client.shutdown().unwrap();

    let report = batch_thread
        .join()
        .expect("batch thread finished")
        .expect("in-flight batch was drained, not reset");
    assert_eq!(report.responses.len(), 3);
    assert!(report
        .responses
        .iter()
        .all(|r| matches!(r, WireResult::Ok(_))));

    handle.join().unwrap();
}
