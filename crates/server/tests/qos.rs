//! Integration tests of the reactor's multi-tenant QoS layer:
//! starvation-proof weighted-fair queueing, structured budget
//! exhaustion, and priority preemption with bit-identical resume.

use mnc_runtime::{MappingRequest, MappingService, TenantPolicy, TenantPolicyTable};
use mnc_server::{ClientError, ReactorConfig, ReactorServer, ServerConfig, WireClient};
use mnc_wire::{encode_request, frame, ErrorCode, WireBody, WireRequest};
use std::io::{BufReader, Write};
use std::net::TcpStream;

/// Spawns a one-worker reactor with the given tenant policy table on an
/// ephemeral port.
fn spawn_qos_reactor(tenants: TenantPolicyTable) -> mnc_server::reactor::ReactorHandle {
    ReactorServer::bind(
        ServerConfig::default(),
        ReactorConfig {
            search_workers: 1,
            tenants,
            ..ReactorConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap()
}

/// Encodes a run of submits as one pipelined frame buffer, so every job
/// is queued before the single worker can drain more than the first.
fn pipelined(submits: &[(u64, MappingRequest)]) -> String {
    let mut buffer = String::new();
    for (id, request) in submits {
        let text = encode_request(&WireRequest::new(
            *id,
            WireBody::Submit(Box::new(request.clone())),
        ))
        .unwrap();
        buffer.push_str(&format!("{}\n{text}", text.len()));
    }
    buffer
}

/// A weight-8 flood of 20 jobs must not starve a weight-1 tenant: DRR
/// serves the weight-1 job after a bounded number of flood jobs, well
/// before the backlog drains. Estimated cost per job is
/// population × (generations + 1) = 8 × 64 = 512 evaluations, i.e. two
/// weight-1 quanta — the victim's deficit covers it on the second full
/// rotation.
#[test]
fn weighted_fair_queueing_bounds_a_weight_1_tenants_wait() {
    let mut tenants = TenantPolicyTable::default();
    tenants.insert(
        "flood",
        TenantPolicy {
            weight: 8,
            ..TenantPolicy::default()
        },
    );
    let handle = spawn_qos_reactor(tenants);

    // Jobs with distinct seeds (no coalescing): ids 1..=20 belong to the
    // flood, id 21 to the weight-1 victim, all submitted in one write so
    // completion order on the single worker is exactly DRR pop order.
    const FLOOD: u64 = 20;
    let mut submits = Vec::new();
    for id in 1..=FLOOD {
        submits.push((
            id,
            MappingRequest::new("tiny_cnn_cifar10", "dual_test")
                .validation_samples(300)
                .generations(63)
                .population_size(8)
                .seed(id)
                .tenant("flood"),
        ));
    }
    let victim_id = FLOOD + 1;
    submits.push((
        victim_id,
        MappingRequest::new("tiny_cnn_cifar10", "dual_test")
            .validation_samples(300)
            .generations(63)
            .population_size(8)
            .seed(9999)
            .tenant("victim"),
    ));

    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(pipelined(&submits).as_bytes()).unwrap();

    let mut completion_order = Vec::new();
    for _ in 0..submits.len() {
        let text = frame::read_frame(&mut reader).unwrap().expect("answered");
        let response = mnc_wire::decode_response(&text).unwrap();
        response.outcome.into_result().expect("every job succeeds");
        completion_order.push(response.id);
    }

    let victim_position = completion_order
        .iter()
        .position(|&id| id == victim_id)
        .expect("victim answered");
    assert!(
        victim_position < FLOOD as usize,
        "victim answered dead last: FIFO behaviour, not weighted-fair"
    );
    assert!(
        victim_position <= 16,
        "victim waited behind {victim_position} flood jobs — DRR bound is ~12"
    );

    handle.shutdown().unwrap();
}

/// An exhausted evaluation budget answers a structured `BudgetExhausted`
/// with a usable `retry_after_ms` on a connection that stays open — and
/// after paying the overdraft off, the tenant is admitted again.
#[test]
fn budget_exhaustion_is_a_structured_answer_on_a_live_connection() {
    let mut tenants = TenantPolicyTable::default();
    tenants.insert(
        "metered",
        TenantPolicy {
            // One burst token admits the first search; its real spend
            // (~tens of evaluations) overdraws the bucket, which then
            // refills at 500 evaluations/s — an overdraft the test can
            // pay off in well under a second.
            evals_per_sec: Some(500.0),
            burst: 1.0,
            ..TenantPolicy::default()
        },
    );
    let handle = spawn_qos_reactor(tenants);
    let mut client = WireClient::connect(handle.addr()).unwrap();

    let request = |seed: u64| {
        MappingRequest::new("tiny_cnn_cifar10", "dual_test")
            .validation_samples(300)
            .generations(2)
            .population_size(8)
            .seed(seed)
            .tenant("metered")
    };

    // The full bucket admits the first search; the debit is its actual
    // evaluation count, overdrawing the one-token burst.
    let first = client.submit(&request(1)).unwrap();
    assert!(first.stats.evaluations_performed > 1);

    // The overdrawn bucket refuses the next search — structurally, with
    // a retry hint, on a connection that keeps serving.
    let error = match client.submit(&request(2)) {
        Err(ClientError::Server(error)) => error,
        other => panic!("overdrawn submit gave {other:?}"),
    };
    assert_eq!(error.code, ErrorCode::BudgetExhausted);
    assert!(error.message.contains("metered"), "{}", error.message);
    let retry_after = error.retry_after_ms.expect("retry hint travels the wire");
    assert!(retry_after >= 1);
    client
        .ping()
        .expect("budget refusal never drops the connection");

    // Honouring the hint gets the tenant admitted again. Loop because
    // the hint is an estimate against a refilling bucket.
    let mut waited = std::time::Duration::ZERO;
    let mut next_wait = retry_after;
    loop {
        std::thread::sleep(std::time::Duration::from_millis(next_wait));
        waited += std::time::Duration::from_millis(next_wait);
        match client.submit(&request(3)) {
            Ok(_) => break,
            Err(ClientError::Server(error)) if error.code == ErrorCode::BudgetExhausted => {
                assert!(
                    waited < std::time::Duration::from_secs(10),
                    "bucket never recovered: {error}"
                );
                next_wait = error.retry_after_ms.unwrap_or(50).max(1);
            }
            other => panic!("retry after hinted wait gave {other:?}"),
        }
    }

    // The refusals are visible per tenant in the metrics.
    let metrics = client.metrics().unwrap();
    let refused = metrics
        .metrics
        .labeled_counter_value("mnc_tenant_budget_exhausted_total", "tenant", "metered")
        .expect("budget-exhausted counter registered");
    assert!(refused >= 1);

    handle.shutdown().unwrap();
}

/// A higher-priority arrival preempts the running search: the paused
/// search resumes after the urgent one answers, and its final front is
/// bit-identical to an uninterrupted in-process run of the same request
/// — preemption changes *when* a search runs, never *what* it answers.
#[test]
fn priority_preemption_pauses_and_resumes_bit_identically() {
    // Sized so the low-priority search runs long enough (hundreds of
    // milliseconds) that the urgent submit lands mid-flight. The
    // reference run below measures the actual duration and the test
    // sleeps a quarter of it, so the window tracks machine speed.
    let low_request = MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(400)
        .generations(900)
        .population_size(64)
        .seed(31);
    let high_request = MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(300)
        .generations(2)
        .population_size(8)
        .seed(32)
        .priority(9);

    // The uninterrupted reference: what the preempted search must still
    // answer, and how long it runs.
    let reference_started = std::time::Instant::now();
    let reference = MappingService::new().submit(&low_request).unwrap();
    let reference_duration = reference_started.elapsed();

    let handle = spawn_qos_reactor(TenantPolicyTable::default());
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Start the long low-priority search, let it occupy the only
    // worker, then submit the urgent request.
    writer
        .write_all(pipelined(&[(1, low_request.clone())]).as_bytes())
        .unwrap();
    std::thread::sleep(reference_duration / 4);
    writer
        .write_all(pipelined(&[(2, high_request)]).as_bytes())
        .unwrap();

    // The urgent answer overtakes the long search it preempted.
    let mut order = Vec::new();
    let mut low_response = None;
    for _ in 0..2 {
        let text = frame::read_frame(&mut reader).unwrap().expect("answered");
        let response = mnc_wire::decode_response(&text).unwrap();
        order.push(response.id);
        let payload = response.outcome.into_result().expect("both succeed");
        if response.id == 1 {
            match payload {
                mnc_wire::WirePayload::Front(answer) => low_response = Some(answer),
                other => panic!("submit answered with {other:?}"),
            }
        }
    }
    assert_eq!(order, vec![2, 1], "the urgent request was not served first");

    // The preemption really happened (not just queue-order luck) …
    let mut client = WireClient::connect(handle.addr()).unwrap();
    let metrics = client.metrics().unwrap();
    let preemptions = metrics
        .metrics
        .labeled_counter_value("mnc_tenant_preemptions_total", "tenant", "default")
        .expect("preemption counter registered");
    assert!(preemptions >= 1, "low-priority search was never paused");

    // … and the paused-then-resumed search still answers bit-for-bit
    // what the uninterrupted run answers.
    let low_response = low_response.expect("low-priority search answered");
    assert_eq!(low_response.pareto_front, reference.pareto_front);
    assert_eq!(low_response.best_by_objective, reference.best_by_objective);
    for (a, b) in low_response
        .pareto_front
        .iter()
        .zip(&reference.pareto_front)
    {
        assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
        assert_eq!(
            a.result.average_energy_mj.to_bits(),
            b.result.average_energy_mj.to_bits()
        );
        assert_eq!(
            a.result.average_latency_ms.to_bits(),
            b.result.average_latency_ms.to_bits()
        );
    }
    assert_eq!(
        low_response.stats.evaluations_performed, reference.stats.evaluations_performed,
        "preemption changed how much work the search did"
    );

    handle.shutdown().unwrap();
}
