//! Workload classes: how compute units specialise per layer type.
//!
//! Heterogeneous accelerators do not execute all layer types equally well —
//! the AGX Xavier DLA, for instance, is a convolution engine that handles
//! attention-style batched matrix multiplications far less efficiently than
//! the GPU, while pooling layers are memory-bound everywhere. The hardware
//! model therefore maps every layer onto a coarse [`WorkloadClass`] for
//! which each compute unit declares an efficiency and a utilisation factor.

use mnc_nn::{Layer, LayerKind};
use serde::{Deserialize, Serialize};

/// Coarse class of computation a layer performs, used to index per-compute-
/// unit efficiency/utilisation factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Dense 2-D convolutions (including strided patch embeddings).
    Convolution,
    /// Multi-head self-attention blocks.
    Attention,
    /// Transformer MLP / feed-forward blocks.
    Mlp,
    /// Fully-connected layers (classifier heads, VGG FC layers).
    Dense,
    /// Memory-bound reshuffling: pooling, global pooling.
    MemoryBound,
}

impl WorkloadClass {
    /// All workload classes, in a stable order.
    pub const ALL: [WorkloadClass; 5] = [
        WorkloadClass::Convolution,
        WorkloadClass::Attention,
        WorkloadClass::Mlp,
        WorkloadClass::Dense,
        WorkloadClass::MemoryBound,
    ];

    /// Classifies a layer.
    pub fn from_layer(layer: &Layer) -> Self {
        match layer.kind {
            LayerKind::ConvBlock { .. } | LayerKind::PatchEmbed { .. } => {
                WorkloadClass::Convolution
            }
            LayerKind::AttentionBlock { .. } => WorkloadClass::Attention,
            LayerKind::MlpBlock { .. } => WorkloadClass::Mlp,
            LayerKind::Dense { .. } | LayerKind::Classifier { .. } => WorkloadClass::Dense,
            LayerKind::Pool { .. } | LayerKind::GlobalPool => WorkloadClass::MemoryBound,
        }
    }

    /// Stable index of the class inside [`WorkloadClass::ALL`]; used by the
    /// surrogate predictor's feature encoding.
    pub fn index(&self) -> usize {
        WorkloadClass::ALL
            .iter()
            .position(|c| c == self)
            .expect("every class is listed in ALL")
    }

    /// Short lowercase tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            WorkloadClass::Convolution => "conv",
            WorkloadClass::Attention => "attention",
            WorkloadClass::Mlp => "mlp",
            WorkloadClass::Dense => "dense",
            WorkloadClass::MemoryBound => "memory",
        }
    }
}

/// Per-workload-class multipliers describing how well a compute unit runs
/// each class of layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Fraction of the peak throughput achieved per class, in `(0, 1]`.
    efficiency: [f64; 5],
    /// Fraction of the dynamic power envelope drawn while running each
    /// class, in `(0, 1]`.
    utilization: [f64; 5],
}

impl WorkloadProfile {
    /// Creates a profile from `(efficiency, utilization)` pairs indexed as
    /// [`WorkloadClass::ALL`].
    ///
    /// # Panics
    ///
    /// Panics if any factor is outside `(0, 1]` or not finite.
    pub fn new(efficiency: [f64; 5], utilization: [f64; 5]) -> Self {
        for v in efficiency.iter().chain(utilization.iter()) {
            assert!(
                v.is_finite() && *v > 0.0 && *v <= 1.0,
                "workload factors must be in (0, 1], got {v}"
            );
        }
        WorkloadProfile {
            efficiency,
            utilization,
        }
    }

    /// A neutral profile (every class runs at full efficiency and draws the
    /// full dynamic power).
    pub fn uniform() -> Self {
        WorkloadProfile::new([1.0; 5], [1.0; 5])
    }

    /// Efficiency factor for a class.
    pub fn efficiency(&self, class: WorkloadClass) -> f64 {
        self.efficiency[class.index()]
    }

    /// Utilisation (dynamic-power) factor for a class.
    pub fn utilization(&self, class: WorkloadClass) -> f64 {
        self.utilization[class.index()]
    }
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::Layer;

    #[test]
    fn classification_covers_all_layer_kinds() {
        let cases = [
            (
                LayerKind::ConvBlock {
                    in_channels: 3,
                    out_channels: 8,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                WorkloadClass::Convolution,
            ),
            (
                LayerKind::PatchEmbed {
                    in_channels: 3,
                    embed_dim: 96,
                    patch: 4,
                },
                WorkloadClass::Convolution,
            ),
            (
                LayerKind::AttentionBlock {
                    embed_dim: 96,
                    heads: 4,
                },
                WorkloadClass::Attention,
            ),
            (
                LayerKind::MlpBlock {
                    embed_dim: 96,
                    hidden_dim: 384,
                },
                WorkloadClass::Mlp,
            ),
            (
                LayerKind::Pool {
                    kernel: 2,
                    stride: 2,
                },
                WorkloadClass::MemoryBound,
            ),
            (LayerKind::GlobalPool, WorkloadClass::MemoryBound),
            (
                LayerKind::Dense {
                    in_features: 10,
                    out_features: 10,
                },
                WorkloadClass::Dense,
            ),
            (
                LayerKind::Classifier {
                    in_features: 10,
                    classes: 10,
                },
                WorkloadClass::Dense,
            ),
        ];
        for (kind, expected) in cases {
            assert_eq!(WorkloadClass::from_layer(&Layer::new("l", kind)), expected);
        }
    }

    #[test]
    fn indices_match_all_order() {
        for (i, class) in WorkloadClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn tags_are_unique() {
        let mut tags: Vec<&str> = WorkloadClass::ALL.iter().map(|c| c.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 5);
    }

    #[test]
    fn profile_lookup_uses_class_index() {
        let profile = WorkloadProfile::new([0.9, 0.4, 0.5, 0.6, 0.2], [0.8, 0.3, 0.4, 0.5, 0.1]);
        assert_eq!(profile.efficiency(WorkloadClass::Convolution), 0.9);
        assert_eq!(profile.efficiency(WorkloadClass::Attention), 0.4);
        assert_eq!(profile.utilization(WorkloadClass::MemoryBound), 0.1);
    }

    #[test]
    fn uniform_profile_is_all_ones() {
        let p = WorkloadProfile::uniform();
        for class in WorkloadClass::ALL {
            assert_eq!(p.efficiency(class), 1.0);
            assert_eq!(p.utilization(class), 1.0);
        }
        assert_eq!(WorkloadProfile::default(), p);
    }

    #[test]
    #[should_panic(expected = "workload factors")]
    fn zero_efficiency_panics() {
        let _ = WorkloadProfile::new([0.0, 1.0, 1.0, 1.0, 1.0], [1.0; 5]);
    }
}
