//! Whole-platform descriptions and the AGX Xavier preset.

use crate::compute_unit::{ComputeUnit, CuId, CuKind};
use crate::dvfs::DvfsTable;
use crate::error::MpsocError;
use crate::interconnect::Interconnect;
use crate::memory::SharedMemory;
use crate::power::PowerModel;
use crate::workload::{WorkloadClass, WorkloadProfile};
use mnc_nn::{Layer, SliceCost};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A heterogeneous MPSoC: a set of compute units sharing memory and an
/// interconnect.
///
/// ```
/// use mnc_mpsoc::Platform;
///
/// let platform = Platform::agx_xavier();
/// assert_eq!(platform.num_compute_units(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    compute_units: Vec<ComputeUnit>,
    interconnect: Interconnect,
    shared_memory: SharedMemory,
}

impl Platform {
    /// Assembles a platform from parts.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::InvalidParameter`] when no compute unit is
    /// provided or when compute-unit identifiers do not match their
    /// position in the list.
    pub fn new(
        name: impl Into<String>,
        compute_units: Vec<ComputeUnit>,
        interconnect: Interconnect,
        shared_memory: SharedMemory,
    ) -> Result<Self, MpsocError> {
        if compute_units.is_empty() {
            return Err(MpsocError::InvalidParameter {
                what: "platform needs at least one compute unit".to_string(),
            });
        }
        for (index, cu) in compute_units.iter().enumerate() {
            if cu.id() != CuId(index) {
                return Err(MpsocError::InvalidParameter {
                    what: format!(
                        "compute unit at position {index} has id {}, expected {}",
                        cu.id(),
                        CuId(index)
                    ),
                });
            }
        }
        Ok(Platform {
            name: name.into(),
            compute_units,
            interconnect,
            shared_memory,
        })
    }

    /// Platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All compute units, indexed by [`CuId`].
    pub fn compute_units(&self) -> &[ComputeUnit] {
        &self.compute_units
    }

    /// Number of compute units (the `M` of the paper).
    pub fn num_compute_units(&self) -> usize {
        self.compute_units.len()
    }

    /// The compute unit with the given identifier.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::UnknownComputeUnit`] for out-of-range ids.
    pub fn compute_unit(&self, id: CuId) -> Result<&ComputeUnit, MpsocError> {
        self.compute_units
            .get(id.0)
            .ok_or(MpsocError::UnknownComputeUnit {
                index: id.0,
                available: self.compute_units.len(),
            })
    }

    /// The first compute unit of the given kind, if any.
    pub fn first_of_kind(&self, kind: CuKind) -> Option<&ComputeUnit> {
        self.compute_units.iter().find(|cu| cu.kind() == kind)
    }

    /// The interconnect between compute units.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// The shared system memory.
    pub fn shared_memory(&self) -> &SharedMemory {
        &self.shared_memory
    }

    /// Total number of per-compute-unit DVFS combinations (the `|ϑ|` term
    /// of the search-space size in paper §V-A).
    pub fn dvfs_combinations(&self) -> usize {
        self.compute_units
            .iter()
            .map(|cu| cu.dvfs().num_levels())
            .product()
    }

    /// Latency and energy of running an entire network on a single compute
    /// unit at its maximum frequency — the GPU-only / DLA-only baselines of
    /// the paper's Table II. Returns `(latency_ms, energy_mj)`.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown compute unit or if the network's
    /// shapes cannot be resolved (never for a validated [`mnc_nn::Network`]).
    pub fn single_cu_baseline(
        &self,
        network: &mnc_nn::Network,
        id: CuId,
    ) -> Result<(f64, f64), MpsocError> {
        let cu = self.compute_unit(id)?;
        let mut latency_ms = 0.0;
        let mut energy_mj = 0.0;
        for (layer_id, layer) in network.iter() {
            let input = network
                .input_shape_of(layer_id)
                .expect("validated network has shapes for every layer");
            let cost = layer
                .full_cost(&input)
                .expect("validated network layers have computable costs");
            let sample = cu.execute(&cost, WorkloadClass::from_layer(layer), cu.max_dvfs());
            latency_ms += sample.latency_ms;
            energy_mj += sample.energy_mj;
        }
        Ok((latency_ms, energy_mj))
    }

    /// Convenience wrapper: executes one layer slice on a compute unit at a
    /// DVFS level, returning the execution sample.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown compute units or DVFS levels.
    pub fn execute_slice(
        &self,
        id: CuId,
        layer: &Layer,
        cost: &SliceCost,
        dvfs_level: usize,
    ) -> Result<crate::compute_unit::ExecutionSample, MpsocError> {
        let cu = self.compute_unit(id)?;
        let point = cu.dvfs().point(dvfs_level)?;
        Ok(cu.execute(cost, WorkloadClass::from_layer(layer), point))
    }

    /// The NVIDIA Jetson AGX Xavier preset used throughout the paper: one
    /// Volta-class GPU and two DLAs sharing 16 GiB of LPDDR4x.
    ///
    /// The throughput, efficiency and power constants are calibrated so the
    /// single-CU baselines of Table II (Visformer: GPU ≈ 15 ms / 197 mJ,
    /// DLA ≈ 54 ms / 69 mJ; VGG-19: GPU ≈ 25 ms / 630 mJ, DLA ≈ 114 ms /
    /// 165 mJ) are reproduced by [`Platform::single_cu_baseline`].
    pub fn agx_xavier() -> Self {
        Self::agx_xavier_parts(false)
    }

    /// AGX Xavier preset extended with the Carmel CPU cluster as a fourth
    /// mappable compute unit (not used by the paper's experiments, provided
    /// for what-if studies).
    pub fn agx_xavier_with_cpu() -> Self {
        Self::agx_xavier_parts(true)
    }

    fn agx_xavier_parts(with_cpu: bool) -> Self {
        // GPU: fast on every class, power hungry. Efficiency factors are
        // fractions of the effective batch-1 throughput; utilisation factors
        // drive the dynamic power term.
        let gpu = ComputeUnit::builder(CuId(0), "gpu", CuKind::Gpu)
            .peak_gflops(62.0)
            .memory_bandwidth_gbps(110.0)
            .launch_overhead_ms(0.06)
            .memory_scale_floor(0.55)
            .dvfs(
                DvfsTable::new(vec![
                    318.75, 522.75, 675.75, 828.75, 905.25, 1032.75, 1122.0, 1236.75, 1300.5,
                    1377.0,
                ])
                .expect("static frequency table is valid"),
            )
            .power(PowerModel::new(3.8, 23.5).expect("static power constants are valid"))
            .profile(WorkloadProfile::new(
                // conv, attention, mlp, dense, memory-bound
                [0.58, 0.46, 0.52, 0.50, 0.30],
                [0.92, 0.35, 0.42, 0.60, 0.25],
            ))
            .build()
            .expect("AGX Xavier GPU preset is valid");

        let dla = |index: usize, name: &str| {
            ComputeUnit::builder(CuId(index), name, CuKind::Dla)
                .peak_gflops(13.0)
                .memory_bandwidth_gbps(24.0)
                .launch_overhead_ms(0.18)
                .memory_scale_floor(0.6)
                .dvfs(
                    DvfsTable::new(vec![
                        115.2, 371.2, 563.2, 755.2, 947.2, 1062.4, 1203.2, 1331.2, 1395.2,
                    ])
                    .expect("static frequency table is valid"),
                )
                .power(PowerModel::new(0.62, 1.0).expect("static power constants are valid"))
                .profile(WorkloadProfile::new(
                    [0.62, 0.62, 0.66, 0.50, 0.35],
                    [0.82, 0.65, 0.68, 0.70, 0.30],
                ))
                .build()
                .expect("AGX Xavier DLA preset is valid")
        };

        let mut compute_units = vec![gpu, dla(1, "dla0"), dla(2, "dla1")];
        if with_cpu {
            let cpu = ComputeUnit::builder(CuId(3), "cpu", CuKind::Cpu)
                .peak_gflops(2.4)
                .memory_bandwidth_gbps(16.0)
                .launch_overhead_ms(0.01)
                .memory_scale_floor(0.5)
                .dvfs(DvfsTable::linear(422.4, 2265.6, 8).expect("static frequency table is valid"))
                .power(PowerModel::new(1.2, 4.6).expect("static power constants are valid"))
                .profile(WorkloadProfile::new(
                    [0.5, 0.45, 0.5, 0.55, 0.6],
                    [0.85, 0.80, 0.80, 0.85, 0.5],
                ))
                .build()
                .expect("AGX Xavier CPU preset is valid");
            compute_units.push(cpu);
        }

        Platform::new(
            if with_cpu {
                "agx_xavier_with_cpu"
            } else {
                "agx_xavier"
            },
            compute_units,
            Interconnect::new(18.0, 0.045, 0.12).expect("static interconnect preset is valid"),
            SharedMemory::from_mib(16 * 1024).expect("static memory preset is valid"),
        )
        .expect("AGX Xavier preset is always consistent")
    }

    /// A deliberately small two-unit platform (one GPU-like, one DLA-like
    /// unit with three DVFS levels each) for fast tests and doc examples.
    pub fn dual_test() -> Self {
        let fast = ComputeUnit::builder(CuId(0), "fast", CuKind::Gpu)
            .peak_gflops(40.0)
            .memory_bandwidth_gbps(60.0)
            .launch_overhead_ms(0.05)
            .dvfs(DvfsTable::linear(400.0, 1200.0, 3).expect("static table"))
            .power(PowerModel::new(2.0, 12.0).expect("static power"))
            .profile(WorkloadProfile::new(
                [0.6, 0.4, 0.5, 0.5, 0.3],
                [0.9, 0.5, 0.6, 0.6, 0.3],
            ))
            .build()
            .expect("test preset is valid");
        let frugal = ComputeUnit::builder(CuId(1), "frugal", CuKind::Dla)
            .peak_gflops(10.0)
            .memory_bandwidth_gbps(20.0)
            .launch_overhead_ms(0.1)
            .dvfs(DvfsTable::linear(300.0, 900.0, 3).expect("static table"))
            .power(PowerModel::new(0.5, 1.0).expect("static power"))
            .profile(WorkloadProfile::new(
                [0.8, 0.35, 0.5, 0.55, 0.35],
                [0.9, 0.55, 0.6, 0.65, 0.3],
            ))
            .build()
            .expect("test preset is valid");
        Platform::new(
            "dual_test",
            vec![fast, frugal],
            Interconnect::new(10.0, 0.05, 0.1).expect("static interconnect"),
            SharedMemory::from_mib(512).expect("static memory"),
        )
        .expect("test platform is always consistent")
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} compute units)",
            self.name,
            self.compute_units.len()
        )?;
        for cu in &self.compute_units {
            writeln!(f, "  {cu}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_nn::models::{tiny_cnn, vgg19, visformer, ModelPreset};

    #[test]
    fn agx_xavier_has_gpu_and_two_dlas() {
        let p = Platform::agx_xavier();
        assert_eq!(p.num_compute_units(), 3);
        assert_eq!(p.compute_unit(CuId(0)).unwrap().kind(), CuKind::Gpu);
        assert_eq!(p.compute_unit(CuId(1)).unwrap().kind(), CuKind::Dla);
        assert_eq!(p.compute_unit(CuId(2)).unwrap().kind(), CuKind::Dla);
        assert!(p.compute_unit(CuId(3)).is_err());
        assert!(p.first_of_kind(CuKind::Cpu).is_none());
    }

    #[test]
    fn agx_xavier_with_cpu_has_four_units() {
        let p = Platform::agx_xavier_with_cpu();
        assert_eq!(p.num_compute_units(), 4);
        assert!(p.first_of_kind(CuKind::Cpu).is_some());
    }

    #[test]
    fn mismatched_cu_ids_are_rejected() {
        let cu = ComputeUnit::builder(CuId(5), "x", CuKind::Cpu)
            .peak_gflops(1.0)
            .build()
            .unwrap();
        let err = Platform::new(
            "bad",
            vec![cu],
            Interconnect::new(1.0, 0.0, 0.0).unwrap(),
            SharedMemory::from_mib(1).unwrap(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn empty_platform_is_rejected() {
        assert!(Platform::new(
            "empty",
            vec![],
            Interconnect::new(1.0, 0.0, 0.0).unwrap(),
            SharedMemory::from_mib(1).unwrap(),
        )
        .is_err());
    }

    #[test]
    fn gpu_is_faster_but_hungrier_than_dla() {
        let p = Platform::agx_xavier();
        let net = visformer(ModelPreset::cifar100());
        let (gpu_lat, gpu_energy) = p.single_cu_baseline(&net, CuId(0)).unwrap();
        let (dla_lat, dla_energy) = p.single_cu_baseline(&net, CuId(1)).unwrap();
        assert!(gpu_lat < dla_lat, "gpu {gpu_lat} ms vs dla {dla_lat} ms");
        assert!(
            gpu_energy > dla_energy,
            "gpu {gpu_energy} mJ vs dla {dla_energy} mJ"
        );
    }

    #[test]
    fn visformer_baselines_match_paper_within_tolerance() {
        // Table II baseline rows: GPU 15.01 ms / 197.35 mJ, DLA 53.71 ms / 69.22 mJ.
        let p = Platform::agx_xavier();
        let net = visformer(ModelPreset::cifar100());
        let (gpu_lat, gpu_energy) = p.single_cu_baseline(&net, CuId(0)).unwrap();
        let (dla_lat, dla_energy) = p.single_cu_baseline(&net, CuId(1)).unwrap();
        let close = |measured: f64, paper: f64, tol: f64| (measured - paper).abs() / paper < tol;
        assert!(close(gpu_lat, 15.01, 0.25), "gpu latency {gpu_lat}");
        assert!(close(gpu_energy, 197.35, 0.25), "gpu energy {gpu_energy}");
        assert!(close(dla_lat, 53.71, 0.25), "dla latency {dla_lat}");
        assert!(close(dla_energy, 69.22, 0.25), "dla energy {dla_energy}");
    }

    #[test]
    fn vgg19_baselines_match_paper_within_tolerance() {
        // Table II baseline rows: GPU 25.23 ms / 630.11 mJ, DLA 114.41 ms / 164.89 mJ.
        let p = Platform::agx_xavier();
        let net = vgg19(ModelPreset::cifar100());
        let (gpu_lat, gpu_energy) = p.single_cu_baseline(&net, CuId(0)).unwrap();
        let (dla_lat, dla_energy) = p.single_cu_baseline(&net, CuId(1)).unwrap();
        let close = |measured: f64, paper: f64, tol: f64| (measured - paper).abs() / paper < tol;
        assert!(close(gpu_lat, 25.23, 0.30), "gpu latency {gpu_lat}");
        assert!(close(gpu_energy, 630.11, 0.30), "gpu energy {gpu_energy}");
        assert!(close(dla_lat, 114.41, 0.30), "dla latency {dla_lat}");
        assert!(close(dla_energy, 164.89, 0.30), "dla energy {dla_energy}");
    }

    #[test]
    fn execute_slice_checks_ids_and_levels() {
        let p = Platform::dual_test();
        let net = tiny_cnn(ModelPreset::cifar10());
        let (id, layer) = net.iter().next().unwrap();
        let cost = layer.full_cost(&net.input_shape_of(id).unwrap()).unwrap();
        assert!(p.execute_slice(CuId(0), layer, &cost, 0).is_ok());
        assert!(p.execute_slice(CuId(9), layer, &cost, 0).is_err());
        assert!(p.execute_slice(CuId(0), layer, &cost, 99).is_err());
    }

    #[test]
    fn dvfs_combinations_multiply_levels() {
        let p = Platform::dual_test();
        assert_eq!(p.dvfs_combinations(), 9);
        let xavier = Platform::agx_xavier();
        assert_eq!(xavier.dvfs_combinations(), 10 * 9 * 9);
    }

    #[test]
    fn display_lists_compute_units() {
        let text = Platform::agx_xavier().to_string();
        assert!(text.contains("gpu"));
        assert!(text.contains("dla0"));
        assert!(text.contains("dla1"));
    }

    #[test]
    fn serde_round_trip() {
        let p = Platform::dual_test();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
