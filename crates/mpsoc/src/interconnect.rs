//! Inter-compute-unit data movement.
//!
//! When a stage mapped on one compute unit consumes feature maps produced
//! by a stage on another unit, the data travels through the shared system
//! memory. The transfer overhead `u_{k→i}` of eq. 8 is modelled as a fixed
//! software/DMA latency plus a bandwidth-limited term, and an energy cost
//! proportional to the bytes moved (DRAM access energy).

use crate::error::MpsocError;
use serde::{Deserialize, Serialize};

/// Shared-memory interconnect between compute units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Sustained transfer bandwidth in GB/s.
    bandwidth_gbps: f64,
    /// Fixed per-transfer latency in milliseconds (driver + DMA setup).
    base_latency_ms: f64,
    /// Energy cost of moving one megabyte, in millijoules.
    energy_per_mb_mj: f64,
}

impl Interconnect {
    /// Creates an interconnect model.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::InvalidParameter`] for non-positive bandwidth
    /// or negative latency/energy parameters.
    pub fn new(
        bandwidth_gbps: f64,
        base_latency_ms: f64,
        energy_per_mb_mj: f64,
    ) -> Result<Self, MpsocError> {
        if !bandwidth_gbps.is_finite() || bandwidth_gbps <= 0.0 {
            return Err(MpsocError::InvalidParameter {
                what: format!("interconnect bandwidth {bandwidth_gbps} GB/s"),
            });
        }
        if !base_latency_ms.is_finite() || base_latency_ms < 0.0 {
            return Err(MpsocError::InvalidParameter {
                what: format!("interconnect base latency {base_latency_ms} ms"),
            });
        }
        if !energy_per_mb_mj.is_finite() || energy_per_mb_mj < 0.0 {
            return Err(MpsocError::InvalidParameter {
                what: format!("interconnect energy {energy_per_mb_mj} mJ/MB"),
            });
        }
        Ok(Interconnect {
            bandwidth_gbps,
            base_latency_ms,
            energy_per_mb_mj,
        })
    }

    /// Sustained bandwidth in GB/s.
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }

    /// Fixed per-transfer latency in milliseconds.
    pub fn base_latency_ms(&self) -> f64 {
        self.base_latency_ms
    }

    /// Energy per megabyte moved, in millijoules.
    pub fn energy_per_mb_mj(&self) -> f64 {
        self.energy_per_mb_mj
    }

    /// Latency in milliseconds of moving `bytes` between two compute units
    /// (the `u_{k→i}` term of eq. 8). Zero bytes cost nothing.
    pub fn transfer_ms(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.base_latency_ms + bytes / (self.bandwidth_gbps * 1e9) * 1e3
    }

    /// Energy in millijoules of moving `bytes` through shared memory.
    pub fn transfer_energy_mj(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.energy_per_mb_mj * bytes / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transfer_time_has_base_plus_bandwidth_term() {
        let ic = Interconnect::new(10.0, 0.1, 0.2).unwrap();
        // 10 MB at 10 GB/s = 1 ms, plus 0.1 ms base.
        assert!((ic.transfer_ms(10e6) - 1.1).abs() < 1e-9);
        assert_eq!(ic.transfer_ms(0.0), 0.0);
        assert_eq!(ic.transfer_ms(-5.0), 0.0);
    }

    #[test]
    fn transfer_energy_scales_with_megabytes() {
        let ic = Interconnect::new(10.0, 0.1, 0.2).unwrap();
        assert!((ic.transfer_energy_mj(5e6) - 1.0).abs() < 1e-9);
        assert_eq!(ic.transfer_energy_mj(0.0), 0.0);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Interconnect::new(0.0, 0.1, 0.1).is_err());
        assert!(Interconnect::new(10.0, -0.1, 0.1).is_err());
        assert!(Interconnect::new(10.0, 0.1, -0.1).is_err());
        assert!(Interconnect::new(f64::NAN, 0.1, 0.1).is_err());
    }

    proptest! {
        #[test]
        fn prop_transfer_monotone_in_bytes(b1 in 0.0f64..1e9, b2 in 0.0f64..1e9) {
            let ic = Interconnect::new(20.0, 0.05, 0.15).unwrap();
            let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
            prop_assert!(ic.transfer_ms(lo) <= ic.transfer_ms(hi) + 1e-12);
            prop_assert!(ic.transfer_energy_mj(lo) <= ic.transfer_energy_mj(hi) + 1e-12);
        }
    }
}
