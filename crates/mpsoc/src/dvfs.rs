//! Dynamic voltage and frequency scaling (DVFS) tables.
//!
//! Every compute unit exposes a discrete list of operating frequencies.
//! The paper folds DVFS into the optimisation through the scaling factor
//! `ϑ_m ∈ (0, 1]` — the selected frequency normalised by the maximum — that
//! parameterises both the dynamic power (eq. 10) and the achievable
//! throughput.

use crate::error::MpsocError;
use serde::{Deserialize, Serialize};

/// One selectable DVFS operating point of a compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsPoint {
    /// Index of the point inside its [`DvfsTable`].
    pub level: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Scaling factor `ϑ` = frequency / max frequency, in `(0, 1]`.
    pub scale: f64,
}

/// The ordered list of operating frequencies supported by a compute unit.
///
/// Frequencies are stored in increasing order; the last entry is the
/// maximum frequency and has `scale == 1.0`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    frequencies_mhz: Vec<f64>,
}

impl DvfsTable {
    /// Creates a table from a list of frequencies (MHz). The list is sorted
    /// and deduplicated.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::InvalidParameter`] if the list is empty or
    /// contains a non-positive or non-finite frequency.
    pub fn new(mut frequencies_mhz: Vec<f64>) -> Result<Self, MpsocError> {
        if frequencies_mhz.is_empty() {
            return Err(MpsocError::InvalidParameter {
                what: "dvfs table must contain at least one frequency".to_string(),
            });
        }
        if frequencies_mhz.iter().any(|f| !f.is_finite() || *f <= 0.0) {
            return Err(MpsocError::InvalidParameter {
                what: "dvfs frequencies must be positive and finite".to_string(),
            });
        }
        frequencies_mhz.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        frequencies_mhz.dedup();
        Ok(DvfsTable { frequencies_mhz })
    }

    /// A single-frequency table (no DVFS choice).
    pub fn fixed(frequency_mhz: f64) -> Self {
        DvfsTable::new(vec![frequency_mhz]).expect("single positive frequency is valid")
    }

    /// Evenly spaced table from `min_mhz` to `max_mhz` with `levels` points.
    ///
    /// # Errors
    ///
    /// Returns an error if `levels` is zero or the bounds are not positive
    /// and increasing.
    pub fn linear(min_mhz: f64, max_mhz: f64, levels: usize) -> Result<Self, MpsocError> {
        if levels == 0 {
            return Err(MpsocError::InvalidParameter {
                what: "dvfs table needs at least one level".to_string(),
            });
        }
        if !(min_mhz > 0.0 && max_mhz >= min_mhz) {
            return Err(MpsocError::InvalidParameter {
                what: format!("invalid dvfs bounds {min_mhz}..{max_mhz}"),
            });
        }
        if levels == 1 {
            return Ok(DvfsTable::fixed(max_mhz));
        }
        let step = (max_mhz - min_mhz) / (levels - 1) as f64;
        DvfsTable::new((0..levels).map(|i| min_mhz + step * i as f64).collect())
    }

    /// Number of selectable levels.
    pub fn num_levels(&self) -> usize {
        self.frequencies_mhz.len()
    }

    /// Maximum frequency in MHz.
    pub fn max_frequency_mhz(&self) -> f64 {
        *self
            .frequencies_mhz
            .last()
            .expect("table is never empty by construction")
    }

    /// The operating point at `level`.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::InvalidDvfsLevel`] if `level` is out of range.
    pub fn point(&self, level: usize) -> Result<DvfsPoint, MpsocError> {
        let frequency_mhz =
            *self
                .frequencies_mhz
                .get(level)
                .ok_or(MpsocError::InvalidDvfsLevel {
                    level,
                    available: self.frequencies_mhz.len(),
                })?;
        Ok(DvfsPoint {
            level,
            frequency_mhz,
            scale: frequency_mhz / self.max_frequency_mhz(),
        })
    }

    /// The highest-frequency operating point.
    pub fn max_point(&self) -> DvfsPoint {
        self.point(self.frequencies_mhz.len() - 1)
            .expect("last level always exists")
    }

    /// The lowest-frequency operating point.
    pub fn min_point(&self) -> DvfsPoint {
        self.point(0).expect("first level always exists")
    }

    /// Iterator over all operating points, lowest frequency first.
    pub fn iter(&self) -> impl Iterator<Item = DvfsPoint> + '_ {
        (0..self.frequencies_mhz.len()).map(move |level| {
            self.point(level)
                .expect("levels produced by range are valid")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_sorts_and_dedups() {
        let t = DvfsTable::new(vec![900.0, 300.0, 900.0, 600.0]).unwrap();
        assert_eq!(t.num_levels(), 3);
        assert_eq!(t.max_frequency_mhz(), 900.0);
        assert_eq!(t.min_point().frequency_mhz, 300.0);
    }

    #[test]
    fn scale_is_relative_to_max() {
        let t = DvfsTable::new(vec![250.0, 500.0, 1000.0]).unwrap();
        assert!((t.point(0).unwrap().scale - 0.25).abs() < 1e-12);
        assert!((t.point(1).unwrap().scale - 0.5).abs() < 1e-12);
        assert!((t.max_point().scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_invalid_tables_are_rejected() {
        assert!(DvfsTable::new(vec![]).is_err());
        assert!(DvfsTable::new(vec![0.0]).is_err());
        assert!(DvfsTable::new(vec![-5.0, 100.0]).is_err());
        assert!(DvfsTable::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn linear_table_has_requested_levels() {
        let t = DvfsTable::linear(100.0, 1000.0, 10).unwrap();
        assert_eq!(t.num_levels(), 10);
        assert!((t.min_point().frequency_mhz - 100.0).abs() < 1e-9);
        assert!((t.max_frequency_mhz() - 1000.0).abs() < 1e-9);
        assert!(DvfsTable::linear(100.0, 1000.0, 0).is_err());
        assert!(DvfsTable::linear(0.0, 1000.0, 5).is_err());
        assert!(DvfsTable::linear(1000.0, 100.0, 5).is_err());
    }

    #[test]
    fn out_of_range_level_is_an_error() {
        let t = DvfsTable::fixed(1000.0);
        assert!(t.point(0).is_ok());
        assert_eq!(
            t.point(3),
            Err(MpsocError::InvalidDvfsLevel {
                level: 3,
                available: 1
            })
        );
    }

    #[test]
    fn iter_visits_all_levels_in_order() {
        let t = DvfsTable::linear(200.0, 800.0, 4).unwrap();
        let freqs: Vec<f64> = t.iter().map(|p| p.frequency_mhz).collect();
        assert_eq!(freqs.len(), 4);
        assert!(freqs.windows(2).all(|w| w[0] < w[1]));
    }

    proptest! {
        #[test]
        fn prop_scales_are_in_unit_interval(freqs in proptest::collection::vec(1.0f64..3000.0, 1..20)) {
            let t = DvfsTable::new(freqs).unwrap();
            for p in t.iter() {
                prop_assert!(p.scale > 0.0 && p.scale <= 1.0 + 1e-12);
            }
            prop_assert!((t.max_point().scale - 1.0).abs() < 1e-12);
        }
    }
}
