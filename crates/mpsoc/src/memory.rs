//! Shared system memory model.
//!
//! All compute units of the MPSoC share the same DRAM. Intermediate
//! feature maps that later stages may reuse (selected by the indicator
//! matrix `I`) must be kept resident for the duration of the inference, and
//! the paper bounds their total size by the shared-memory capacity
//! (`size_Π(F, I) < M` in eq. 15). [`SharedMemory`] describes the capacity;
//! [`MemoryBudget`] tracks allocations against it.

use crate::error::MpsocError;
use serde::{Deserialize, Serialize};

/// Capacity description of the MPSoC's shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMemory {
    capacity_bytes: u64,
}

impl SharedMemory {
    /// Creates a shared memory of the given capacity in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::InvalidParameter`] for a zero capacity.
    pub fn new(capacity_bytes: u64) -> Result<Self, MpsocError> {
        if capacity_bytes == 0 {
            return Err(MpsocError::InvalidParameter {
                what: "shared memory capacity of zero bytes".to_string(),
            });
        }
        Ok(SharedMemory { capacity_bytes })
    }

    /// Convenience constructor from mebibytes.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero capacity.
    pub fn from_mib(mib: u64) -> Result<Self, MpsocError> {
        SharedMemory::new(mib * 1024 * 1024)
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Starts a fresh allocation budget against this memory, optionally
    /// reserving a fraction for the OS / weights (0.0 reserves nothing).
    pub fn budget(&self, reserved_fraction: f64) -> MemoryBudget {
        let reserved_fraction = reserved_fraction.clamp(0.0, 1.0);
        let reserved = (self.capacity_bytes as f64 * reserved_fraction) as u64;
        MemoryBudget {
            capacity: self.capacity_bytes.saturating_sub(reserved),
            used: 0,
        }
    }
}

/// Tracks feature-map allocations against a fixed byte budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryBudget {
    capacity: u64,
    used: u64,
}

impl MemoryBudget {
    /// Creates a budget with an explicit capacity in bytes.
    pub fn with_capacity(capacity: u64) -> Self {
        MemoryBudget { capacity, used: 0 }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Fraction of the capacity in use, in `[0, 1]` (1.0 when full or when
    /// the capacity is zero).
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        (self.used as f64 / self.capacity as f64).min(1.0)
    }

    /// Attempts to allocate `bytes`; the budget is unchanged on failure.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::OutOfSharedMemory`] when the allocation would
    /// exceed the capacity.
    pub fn allocate(&mut self, bytes: u64) -> Result<(), MpsocError> {
        if bytes > self.free() {
            return Err(MpsocError::OutOfSharedMemory {
                requested: bytes,
                free: self.free(),
            });
        }
        self.used += bytes;
        Ok(())
    }

    /// Whether `bytes` additional bytes would fit without allocating them.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.free()
    }

    /// Releases `bytes` (saturating at zero).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Releases everything.
    pub fn clear(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shared_memory_rejects_zero_capacity() {
        assert!(SharedMemory::new(0).is_err());
        assert!(SharedMemory::from_mib(0).is_err());
        assert_eq!(
            SharedMemory::from_mib(16).unwrap().capacity_bytes(),
            16 * 1024 * 1024
        );
    }

    #[test]
    fn budget_reserves_a_fraction() {
        let mem = SharedMemory::new(1000).unwrap();
        let budget = mem.budget(0.25);
        assert_eq!(budget.capacity(), 750);
        let full = mem.budget(0.0);
        assert_eq!(full.capacity(), 1000);
        // Out-of-range reservation is clamped.
        assert_eq!(mem.budget(2.0).capacity(), 0);
    }

    #[test]
    fn allocate_and_release_round_trip() {
        let mut budget = MemoryBudget::with_capacity(100);
        assert!(budget.allocate(60).is_ok());
        assert_eq!(budget.used(), 60);
        assert_eq!(budget.free(), 40);
        assert!(budget.fits(40));
        assert!(!budget.fits(41));
        assert!(budget.allocate(41).is_err());
        // Failed allocation leaves the budget untouched.
        assert_eq!(budget.used(), 60);
        budget.release(10);
        assert_eq!(budget.used(), 50);
        budget.clear();
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut budget = MemoryBudget::with_capacity(10);
        assert_eq!(budget.utilization(), 0.0);
        budget.allocate(5).unwrap();
        assert!((budget.utilization() - 0.5).abs() < 1e-12);
        budget.allocate(5).unwrap();
        assert_eq!(budget.utilization(), 1.0);
        let empty = MemoryBudget::with_capacity(0);
        assert_eq!(empty.utilization(), 1.0);
    }

    #[test]
    fn release_saturates() {
        let mut budget = MemoryBudget::with_capacity(10);
        budget.allocate(4).unwrap();
        budget.release(100);
        assert_eq!(budget.used(), 0);
    }

    proptest! {
        #[test]
        fn prop_used_never_exceeds_capacity(allocs in proptest::collection::vec(0u64..200, 0..50)) {
            let mut budget = MemoryBudget::with_capacity(1000);
            for a in allocs {
                let _ = budget.allocate(a);
                prop_assert!(budget.used() <= budget.capacity());
            }
        }
    }
}
