//! Error types for the MPSoC hardware model.

use std::error::Error;
use std::fmt;

/// Errors produced by the MPSoC model.
#[derive(Debug, Clone, PartialEq)]
pub enum MpsocError {
    /// A compute-unit identifier does not exist on the platform.
    UnknownComputeUnit {
        /// The requested identifier.
        index: usize,
        /// Number of compute units on the platform.
        available: usize,
    },
    /// A DVFS level index is out of range for a compute unit.
    InvalidDvfsLevel {
        /// The requested level.
        level: usize,
        /// Number of levels supported.
        available: usize,
    },
    /// A stored feature allocation would exceed the shared-memory capacity.
    OutOfSharedMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        free: u64,
    },
    /// A hardware parameter is invalid (zero throughput, empty DVFS table, ...).
    InvalidParameter {
        /// Which parameter is invalid.
        what: String,
    },
    /// A platform preset name is not in the registry.
    UnknownPlatform {
        /// The requested preset name.
        name: String,
        /// Comma-separated list of registered names.
        available: String,
    },
}

impl fmt::Display for MpsocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpsocError::UnknownComputeUnit { index, available } => {
                write!(f, "unknown compute unit {index}, platform has {available}")
            }
            MpsocError::InvalidDvfsLevel { level, available } => {
                write!(
                    f,
                    "invalid dvfs level {level}, compute unit supports {available}"
                )
            }
            MpsocError::OutOfSharedMemory { requested, free } => {
                write!(
                    f,
                    "out of shared memory: requested {requested} bytes, {free} free"
                )
            }
            MpsocError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            MpsocError::UnknownPlatform { name, available } => {
                write!(
                    f,
                    "unknown platform preset `{name}`; available: {available}"
                )
            }
        }
    }
}

impl Error for MpsocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MpsocError::UnknownComputeUnit {
            index: 5,
            available: 3,
        };
        assert!(e.to_string().contains('5'));
        let e = MpsocError::OutOfSharedMemory {
            requested: 100,
            free: 10,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<MpsocError>();
    }
}
