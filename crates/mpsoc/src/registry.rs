//! Named platform presets and the registry the mapping service consults.
//!
//! The paper evaluates one board (the AGX Xavier). A mapping *service*
//! answers queries for many boards, so this module widens the hardware
//! catalogue with three additional MPSoC classes and gives every preset a
//! stable name:
//!
//! | name | class | compute units |
//! |---|---|---|
//! | `agx_xavier` | the paper's board | GPU + 2×DLA |
//! | `agx_xavier_with_cpu` | what-if variant | GPU + 2×DLA + CPU cluster |
//! | `orin_agx` | Orin-class successor | Ampere GPU + 2×DLA + CPU cluster |
//! | `edge_biglittle` | CPU-only edge board | big cluster + LITTLE cluster |
//! | `server_class` | many-core inference server | 2×GPU + 2×CPU socket |
//! | `dual_test` | tiny CI board | GPU-like + DLA-like |
//!
//! Presets are constructed on demand (a [`Platform`] is cheap to build), so
//! the registry itself is a stateless name → constructor table.

use crate::compute_unit::{ComputeUnit, CuId, CuKind};
use crate::dvfs::DvfsTable;
use crate::error::MpsocError;
use crate::interconnect::Interconnect;
use crate::memory::SharedMemory;
use crate::platform::Platform;
use crate::power::PowerModel;
use crate::workload::WorkloadProfile;

/// A named platform constructor.
type PresetFn = fn() -> Platform;

/// The built-in platform presets, in a stable order.
const PRESETS: &[(&str, PresetFn)] = &[
    ("agx_xavier", Platform::agx_xavier),
    ("agx_xavier_with_cpu", Platform::agx_xavier_with_cpu),
    ("orin_agx", Platform::orin_agx),
    ("edge_biglittle", Platform::edge_biglittle),
    ("server_class", Platform::server_class),
    ("dual_test", Platform::dual_test),
];

/// Name-indexed catalogue of the built-in platform presets.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlatformRegistry;

impl PlatformRegistry {
    /// Creates the registry.
    pub fn new() -> Self {
        PlatformRegistry
    }

    /// Names of every registered preset, in a stable order.
    pub fn names(&self) -> Vec<&'static str> {
        PRESETS.iter().map(|(name, _)| *name).collect()
    }

    /// Whether `name` is a registered preset.
    pub fn contains(&self, name: &str) -> bool {
        PRESETS.iter().any(|(n, _)| *n == name)
    }

    /// Builds the preset with the given name.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::UnknownPlatform`] for unregistered names.
    pub fn build(&self, name: &str) -> Result<Platform, MpsocError> {
        PRESETS
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, build)| build())
            .ok_or_else(|| MpsocError::UnknownPlatform {
                name: name.to_string(),
                available: self.names().join(", "),
            })
    }
}

impl Platform {
    /// An Orin-class successor to the AGX Xavier: a faster Ampere-style
    /// GPU, two second-generation DLAs and a mappable 8-core CPU cluster
    /// behind a wider LPDDR5 memory system.
    ///
    /// Relative to [`Platform::agx_xavier`], every unit is faster and the
    /// interconnect has roughly twice the bandwidth, but the GPU also draws
    /// more power — so energy-oriented searches still trade work off to the
    /// DLAs and the CPU cluster rather than collapsing onto the GPU.
    pub fn orin_agx() -> Self {
        let gpu = ComputeUnit::builder(CuId(0), "ampere_gpu", CuKind::Gpu)
            .peak_gflops(170.0)
            .memory_bandwidth_gbps(204.0)
            .launch_overhead_ms(0.05)
            .memory_scale_floor(0.55)
            .dvfs(
                DvfsTable::new(vec![
                    306.0, 408.0, 510.0, 612.0, 714.0, 816.0, 918.0, 1020.0, 1122.0, 1224.0, 1300.5,
                ])
                .expect("static frequency table is valid"),
            )
            .power(PowerModel::new(5.5, 36.0).expect("static power constants are valid"))
            .profile(WorkloadProfile::new(
                [0.60, 0.50, 0.55, 0.52, 0.32],
                [0.92, 0.40, 0.46, 0.62, 0.26],
            ))
            .build()
            .expect("Orin GPU preset is valid");

        let dla = |index: usize, name: &str| {
            ComputeUnit::builder(CuId(index), name, CuKind::Dla)
                .peak_gflops(26.0)
                .memory_bandwidth_gbps(34.0)
                .launch_overhead_ms(0.14)
                .memory_scale_floor(0.6)
                .dvfs(
                    DvfsTable::new(vec![
                        153.6, 380.8, 614.4, 848.0, 1081.6, 1254.4, 1408.0, 1536.0,
                    ])
                    .expect("static frequency table is valid"),
                )
                .power(PowerModel::new(0.85, 1.6).expect("static power constants are valid"))
                .profile(WorkloadProfile::new(
                    [0.64, 0.62, 0.66, 0.52, 0.36],
                    [0.84, 0.66, 0.68, 0.72, 0.32],
                ))
                .build()
                .expect("Orin DLA preset is valid")
        };

        let cpu = ComputeUnit::builder(CuId(3), "cortex_a78ae", CuKind::Cpu)
            .peak_gflops(6.4)
            .memory_bandwidth_gbps(30.0)
            .launch_overhead_ms(0.008)
            .memory_scale_floor(0.5)
            .dvfs(DvfsTable::linear(729.6, 2201.6, 9).expect("static frequency table is valid"))
            .power(PowerModel::new(1.6, 6.8).expect("static power constants are valid"))
            .profile(WorkloadProfile::new(
                [0.52, 0.48, 0.52, 0.58, 0.62],
                [0.86, 0.80, 0.80, 0.86, 0.52],
            ))
            .build()
            .expect("Orin CPU preset is valid");

        Platform::new(
            "orin_agx",
            vec![gpu, dla(1, "dla0"), dla(2, "dla1"), cpu],
            Interconnect::new(34.0, 0.035, 0.10).expect("static interconnect preset is valid"),
            SharedMemory::from_mib(32 * 1024).expect("static memory preset is valid"),
        )
        .expect("Orin preset is always consistent")
    }

    /// A CPU-only big.LITTLE edge board (think Cortex-A76 + Cortex-A55
    /// clusters sharing LPDDR4): no accelerator at all, so the interesting
    /// trade-off is purely big-vs-LITTLE placement and DVFS.
    pub fn edge_biglittle() -> Self {
        let big = ComputeUnit::builder(CuId(0), "big_a76", CuKind::Cpu)
            .peak_gflops(3.2)
            .memory_bandwidth_gbps(14.0)
            .launch_overhead_ms(0.006)
            .memory_scale_floor(0.5)
            .dvfs(DvfsTable::linear(500.0, 2400.0, 10).expect("static frequency table is valid"))
            .power(PowerModel::new(0.9, 3.9).expect("static power constants are valid"))
            .profile(WorkloadProfile::new(
                [0.54, 0.46, 0.52, 0.58, 0.60],
                [0.88, 0.80, 0.82, 0.86, 0.50],
            ))
            .build()
            .expect("big-cluster preset is valid");
        let little = ComputeUnit::builder(CuId(1), "little_a55", CuKind::Cpu)
            .peak_gflops(1.1)
            .memory_bandwidth_gbps(8.0)
            .launch_overhead_ms(0.004)
            .memory_scale_floor(0.5)
            .dvfs(DvfsTable::linear(400.0, 1800.0, 8).expect("static frequency table is valid"))
            .power(PowerModel::new(0.18, 0.75).expect("static power constants are valid"))
            .profile(WorkloadProfile::new(
                [0.50, 0.42, 0.48, 0.55, 0.62],
                [0.86, 0.78, 0.80, 0.84, 0.52],
            ))
            .build()
            .expect("LITTLE-cluster preset is valid");
        Platform::new(
            "edge_biglittle",
            vec![big, little],
            Interconnect::new(6.0, 0.02, 0.06).expect("static interconnect preset is valid"),
            SharedMemory::from_mib(4 * 1024).expect("static memory preset is valid"),
        )
        .expect("big.LITTLE preset is always consistent")
    }

    /// A server-class inference node: two discrete-class GPUs and two
    /// many-core CPU sockets behind a high-bandwidth fabric. Mapping
    /// network stages across four fast units stresses the search's
    /// permutation and partitioning genes far more than the embedded
    /// boards do.
    pub fn server_class() -> Self {
        let gpu = |index: usize, name: &str| {
            ComputeUnit::builder(CuId(index), name, CuKind::Gpu)
                .peak_gflops(900.0)
                .memory_bandwidth_gbps(1200.0)
                .launch_overhead_ms(0.03)
                .memory_scale_floor(0.55)
                .dvfs(
                    DvfsTable::linear(810.0, 1980.0, 12).expect("static frequency table is valid"),
                )
                .power(PowerModel::new(38.0, 212.0).expect("static power constants are valid"))
                .profile(WorkloadProfile::new(
                    [0.62, 0.55, 0.58, 0.55, 0.34],
                    [0.94, 0.45, 0.50, 0.65, 0.28],
                ))
                .build()
                .expect("server GPU preset is valid")
        };
        let cpu = |index: usize, name: &str| {
            ComputeUnit::builder(CuId(index), name, CuKind::Cpu)
                .peak_gflops(96.0)
                .memory_bandwidth_gbps(200.0)
                .launch_overhead_ms(0.004)
                .memory_scale_floor(0.5)
                .dvfs(
                    DvfsTable::linear(1200.0, 3600.0, 10).expect("static frequency table is valid"),
                )
                .power(PowerModel::new(42.0, 128.0).expect("static power constants are valid"))
                .profile(WorkloadProfile::new(
                    [0.55, 0.50, 0.54, 0.60, 0.62],
                    [0.88, 0.82, 0.82, 0.88, 0.55],
                ))
                .build()
                .expect("server CPU preset is valid")
        };
        Platform::new(
            "server_class",
            vec![
                gpu(0, "gpu0"),
                gpu(1, "gpu1"),
                cpu(2, "cpu_socket0"),
                cpu(3, "cpu_socket1"),
            ],
            Interconnect::new(64.0, 0.012, 0.20).expect("static interconnect preset is valid"),
            SharedMemory::from_mib(256 * 1024).expect("static memory preset is valid"),
        )
        .expect("server preset is always consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_and_builds_every_preset() {
        let registry = PlatformRegistry::new();
        let names = registry.names();
        assert!(names.len() >= 6);
        for name in names {
            assert!(registry.contains(name));
            let platform = registry.build(name).unwrap();
            assert_eq!(platform.name(), name);
            assert!(platform.num_compute_units() >= 2);
        }
    }

    #[test]
    fn unknown_preset_is_reported_with_alternatives() {
        let registry = PlatformRegistry::new();
        let err = registry.build("tpu_pod").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("tpu_pod"));
        assert!(text.contains("agx_xavier"));
    }

    #[test]
    fn orin_outperforms_xavier_per_unit() {
        let xavier = Platform::agx_xavier();
        let orin = Platform::orin_agx();
        assert_eq!(orin.num_compute_units(), 4);
        for (old, new) in xavier.compute_units().iter().zip(orin.compute_units()) {
            assert!(new.peak_gflops() > old.peak_gflops());
        }
    }

    #[test]
    fn biglittle_is_cpu_only_and_asymmetric() {
        let board = Platform::edge_biglittle();
        assert_eq!(board.num_compute_units(), 2);
        assert!(board
            .compute_units()
            .iter()
            .all(|cu| cu.kind() == CuKind::Cpu));
        let big = &board.compute_units()[0];
        let little = &board.compute_units()[1];
        assert!(big.peak_gflops() > little.peak_gflops());
    }

    #[test]
    fn server_class_has_four_fast_units() {
        let server = Platform::server_class();
        assert_eq!(server.num_compute_units(), 4);
        assert!(server
            .compute_units()
            .iter()
            .all(|cu| cu.peak_gflops() > 50.0));
        assert_eq!(server.dvfs_combinations(), 12 * 12 * 10 * 10);
    }

    #[test]
    fn new_presets_run_a_network_end_to_end() {
        use mnc_nn::models::{tiny_cnn, ModelPreset};
        let net = tiny_cnn(ModelPreset::cifar10());
        for platform in [
            Platform::orin_agx(),
            Platform::edge_biglittle(),
            Platform::server_class(),
        ] {
            let (latency, energy) = platform.single_cu_baseline(&net, CuId(0)).unwrap();
            assert!(latency > 0.0 && latency.is_finite());
            assert!(energy > 0.0 && energy.is_finite());
        }
    }
}
