//! Compute units: the processing elements of the MPSoC.
//!
//! A [`ComputeUnit`] combines a roofline throughput model (peak throughput
//! and memory bandwidth, derated per [`WorkloadClass`]), a DVFS table and
//! the affine power model of eq. 10. Its [`ComputeUnit::execute`] method is
//! the single point through which the rest of the framework obtains the
//! latency and energy of running a layer slice — the role TensorRT
//! profiling plays in the paper.

use crate::dvfs::{DvfsPoint, DvfsTable};
use crate::error::MpsocError;
use crate::power::PowerModel;
use crate::workload::{WorkloadClass, WorkloadProfile};
use mnc_nn::SliceCost;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a compute unit within a [`crate::Platform`] (its index in
/// the platform's compute-unit list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CuId(pub usize);

impl fmt::Display for CuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CU{}", self.0)
    }
}

/// Broad class of a compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CuKind {
    /// A general-purpose GPU: fast, power-hungry.
    Gpu,
    /// A fixed-function deep-learning accelerator: slower but frugal.
    Dla,
    /// A CPU cluster: slowest, moderate power.
    Cpu,
}

impl CuKind {
    /// Short lowercase tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            CuKind::Gpu => "gpu",
            CuKind::Dla => "dla",
            CuKind::Cpu => "cpu",
        }
    }
}

impl fmt::Display for CuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Latency/energy outcome of executing one layer slice on a compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSample {
    /// End-to-end latency in milliseconds (max of compute and memory time
    /// plus kernel-launch overhead).
    pub latency_ms: f64,
    /// Energy in millijoules over that latency.
    pub energy_mj: f64,
    /// Average power in watts while executing.
    pub power_w: f64,
    /// Compute-bound component of the latency.
    pub compute_ms: f64,
    /// Memory-bound component of the latency.
    pub memory_ms: f64,
}

impl ExecutionSample {
    /// A zero-cost sample (nothing executed).
    pub fn zero() -> Self {
        ExecutionSample {
            latency_ms: 0.0,
            energy_mj: 0.0,
            power_w: 0.0,
            compute_ms: 0.0,
            memory_ms: 0.0,
        }
    }

    /// Whether the sample was limited by memory bandwidth rather than
    /// compute throughput.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_ms > self.compute_ms
    }
}

/// Fully-resolved roofline/power coefficients of one compute unit at one
/// (workload class, DVFS point) combination: everything
/// [`ComputeUnit::execute`] needs that does not depend on the slice cost.
///
/// Evaluation hot paths precompute these per (unit, level, class) so a
/// slice estimate is two divisions, a max and a multiply — no profile,
/// DVFS-table or power-model lookups.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionCoefficients {
    /// Denominator of the compute roofline: `peak·efficiency·ϑ` in FLOP/s.
    pub compute_denom: f64,
    /// Denominator of the memory roofline: effective bandwidth in B/s.
    pub memory_denom: f64,
    /// Fixed per-layer launch/driver overhead in milliseconds.
    pub launch_overhead_ms: f64,
    /// Busy power `α + β·ϑ·u` in watts.
    pub power_w: f64,
}

impl ExecutionCoefficients {
    /// Executes one slice cost under these coefficients (the body of
    /// [`ComputeUnit::execute`]).
    pub fn execute(&self, cost: &SliceCost) -> ExecutionSample {
        if cost.flops <= 0.0 && cost.total_bytes() <= 0.0 {
            return ExecutionSample::zero();
        }
        let compute_ms = cost.flops / self.compute_denom * 1e3;
        let memory_ms = cost.total_bytes() / self.memory_denom * 1e3;
        let latency_ms = compute_ms.max(memory_ms) + self.launch_overhead_ms;
        ExecutionSample {
            latency_ms,
            energy_mj: self.power_w * latency_ms,
            power_w: self.power_w,
            compute_ms,
            memory_ms,
        }
    }

    /// Latency and energy only — the pair the evaluator's inner loop
    /// consumes. Delegates to [`ExecutionCoefficients::execute`] so there
    /// is exactly one copy of the roofline formula (the bit-identity
    /// contract of the fast path rests on that); the intermediate
    /// [`ExecutionSample`] is elided by the optimiser.
    pub fn latency_energy(&self, cost: &SliceCost) -> (f64, f64) {
        let sample = self.execute(cost);
        (sample.latency_ms, sample.energy_mj)
    }
}

/// One processing element of the MPSoC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeUnit {
    id: CuId,
    name: String,
    kind: CuKind,
    peak_gflops: f64,
    memory_bandwidth_gbps: f64,
    launch_overhead_ms: f64,
    /// Fraction of the memory bandwidth retained at the lowest DVFS point
    /// (memory clocks scale less aggressively than compute clocks).
    memory_scale_floor: f64,
    dvfs: DvfsTable,
    power: PowerModel,
    profile: WorkloadProfile,
}

impl ComputeUnit {
    /// Starts building a compute unit.
    pub fn builder(id: CuId, name: impl Into<String>, kind: CuKind) -> ComputeUnitBuilder {
        ComputeUnitBuilder::new(id, name, kind)
    }

    /// Identifier within the platform.
    pub fn id(&self) -> CuId {
        self.id
    }

    /// Human-readable name (e.g. `"gpu"`, `"dla0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Broad class of the unit.
    pub fn kind(&self) -> CuKind {
        self.kind
    }

    /// Peak throughput in GFLOP/s at maximum frequency.
    pub fn peak_gflops(&self) -> f64 {
        self.peak_gflops
    }

    /// Memory bandwidth in GB/s at maximum frequency.
    pub fn memory_bandwidth_gbps(&self) -> f64 {
        self.memory_bandwidth_gbps
    }

    /// Fixed per-layer launch/driver overhead in milliseconds.
    pub fn launch_overhead_ms(&self) -> f64 {
        self.launch_overhead_ms
    }

    /// The unit's DVFS table.
    pub fn dvfs(&self) -> &DvfsTable {
        &self.dvfs
    }

    /// The highest-frequency DVFS operating point.
    pub fn max_dvfs(&self) -> DvfsPoint {
        self.dvfs.max_point()
    }

    /// The unit's power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The unit's per-workload efficiency/utilisation profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Latency and energy of executing `cost` (one layer slice) of the
    /// given workload class at the DVFS point `dvfs`.
    ///
    /// The latency follows a roofline: the maximum of the compute time
    /// (`FLOPs / (peak·efficiency·ϑ)`) and the memory time
    /// (`bytes / (bandwidth·memory-scale)`), plus the launch overhead.
    /// Energy is that latency times the busy power `α + β·ϑ·u`.
    pub fn execute(
        &self,
        cost: &SliceCost,
        class: WorkloadClass,
        dvfs: DvfsPoint,
    ) -> ExecutionSample {
        self.execution_coefficients(class, dvfs).execute(cost)
    }

    /// The roofline/power coefficients of this unit at one
    /// (workload class, DVFS point) combination.
    ///
    /// [`ComputeUnit::execute`] is defined as
    /// `execution_coefficients(class, dvfs).execute(cost)`, so coefficients
    /// precomputed once (see `mnc_core`'s cost tables) reproduce a fresh
    /// `execute` call bit for bit — there is only one formula.
    pub fn execution_coefficients(
        &self,
        class: WorkloadClass,
        dvfs: DvfsPoint,
    ) -> ExecutionCoefficients {
        let efficiency = self.profile.efficiency(class);
        let utilization = self.profile.utilization(class);
        let scale = dvfs.scale.clamp(0.0, 1.0).max(1e-6);

        let effective_gflops = self.peak_gflops * efficiency * scale;
        let memory_scale = self.memory_scale_floor + (1.0 - self.memory_scale_floor) * scale;
        let effective_bandwidth = self.memory_bandwidth_gbps * memory_scale;

        ExecutionCoefficients {
            compute_denom: effective_gflops * 1e9,
            memory_denom: effective_bandwidth * 1e9,
            launch_overhead_ms: self.launch_overhead_ms,
            power_w: self.power.busy_w(scale, utilization),
        }
    }

    /// Idle power in watts (static component only).
    pub fn idle_power_w(&self) -> f64 {
        self.power.idle_w()
    }
}

impl fmt::Display for ComputeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {:.1} GFLOP/s, {:.1} GB/s, {} DVFS levels",
            self.name,
            self.kind,
            self.peak_gflops,
            self.memory_bandwidth_gbps,
            self.dvfs.num_levels()
        )
    }
}

/// Builder for [`ComputeUnit`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct ComputeUnitBuilder {
    id: CuId,
    name: String,
    kind: CuKind,
    peak_gflops: f64,
    memory_bandwidth_gbps: f64,
    launch_overhead_ms: f64,
    memory_scale_floor: f64,
    dvfs: DvfsTable,
    power: PowerModel,
    profile: WorkloadProfile,
}

impl ComputeUnitBuilder {
    fn new(id: CuId, name: impl Into<String>, kind: CuKind) -> Self {
        ComputeUnitBuilder {
            id,
            name: name.into(),
            kind,
            peak_gflops: 1.0,
            memory_bandwidth_gbps: 1.0,
            launch_overhead_ms: 0.0,
            memory_scale_floor: 0.5,
            dvfs: DvfsTable::fixed(1000.0),
            power: PowerModel::new(1.0, 1.0).expect("default power model is valid"),
            profile: WorkloadProfile::uniform(),
        }
    }

    /// Sets the peak throughput in GFLOP/s at maximum frequency.
    #[must_use]
    pub fn peak_gflops(mut self, value: f64) -> Self {
        self.peak_gflops = value;
        self
    }

    /// Sets the memory bandwidth in GB/s at maximum frequency.
    #[must_use]
    pub fn memory_bandwidth_gbps(mut self, value: f64) -> Self {
        self.memory_bandwidth_gbps = value;
        self
    }

    /// Sets the fixed per-layer launch overhead in milliseconds.
    #[must_use]
    pub fn launch_overhead_ms(mut self, value: f64) -> Self {
        self.launch_overhead_ms = value;
        self
    }

    /// Sets the fraction of memory bandwidth retained at the lowest DVFS
    /// point (0.0–1.0).
    #[must_use]
    pub fn memory_scale_floor(mut self, value: f64) -> Self {
        self.memory_scale_floor = value;
        self
    }

    /// Sets the DVFS table.
    #[must_use]
    pub fn dvfs(mut self, table: DvfsTable) -> Self {
        self.dvfs = table;
        self
    }

    /// Sets the power model.
    #[must_use]
    pub fn power(mut self, model: PowerModel) -> Self {
        self.power = model;
        self
    }

    /// Sets the per-workload efficiency/utilisation profile.
    #[must_use]
    pub fn profile(mut self, profile: WorkloadProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Validates the parameters and builds the [`ComputeUnit`].
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::InvalidParameter`] when throughput, bandwidth
    /// or overheads are non-positive/negative or not finite.
    pub fn build(self) -> Result<ComputeUnit, MpsocError> {
        if !self.peak_gflops.is_finite() || self.peak_gflops <= 0.0 {
            return Err(MpsocError::InvalidParameter {
                what: format!("peak throughput {} GFLOP/s", self.peak_gflops),
            });
        }
        if !self.memory_bandwidth_gbps.is_finite() || self.memory_bandwidth_gbps <= 0.0 {
            return Err(MpsocError::InvalidParameter {
                what: format!("memory bandwidth {} GB/s", self.memory_bandwidth_gbps),
            });
        }
        if !self.launch_overhead_ms.is_finite() || self.launch_overhead_ms < 0.0 {
            return Err(MpsocError::InvalidParameter {
                what: format!("launch overhead {} ms", self.launch_overhead_ms),
            });
        }
        if !(0.0..=1.0).contains(&self.memory_scale_floor) {
            return Err(MpsocError::InvalidParameter {
                what: format!("memory scale floor {}", self.memory_scale_floor),
            });
        }
        Ok(ComputeUnit {
            id: self.id,
            name: self.name,
            kind: self.kind,
            peak_gflops: self.peak_gflops,
            memory_bandwidth_gbps: self.memory_bandwidth_gbps,
            launch_overhead_ms: self.launch_overhead_ms,
            memory_scale_floor: self.memory_scale_floor,
            dvfs: self.dvfs,
            power: self.power,
            profile: self.profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn test_cu() -> ComputeUnit {
        ComputeUnit::builder(CuId(0), "gpu", CuKind::Gpu)
            .peak_gflops(100.0)
            .memory_bandwidth_gbps(50.0)
            .launch_overhead_ms(0.05)
            .dvfs(DvfsTable::linear(200.0, 1000.0, 5).unwrap())
            .power(PowerModel::new(2.0, 10.0).unwrap())
            .build()
            .unwrap()
    }

    fn compute_heavy_cost() -> SliceCost {
        SliceCost {
            macs: 5e8,
            flops: 1e9,
            weight_bytes: 1e6,
            input_bytes: 1e5,
            output_bytes: 1e5,
        }
    }

    fn memory_heavy_cost() -> SliceCost {
        SliceCost {
            macs: 1e5,
            flops: 2e5,
            weight_bytes: 5e8,
            input_bytes: 1e8,
            output_bytes: 1e8,
        }
    }

    #[test]
    fn compute_bound_latency_matches_roofline() {
        let cu = test_cu();
        let sample = cu.execute(
            &compute_heavy_cost(),
            WorkloadClass::Convolution,
            cu.max_dvfs(),
        );
        // 1e9 FLOPs at 100 GFLOP/s = 10 ms + 0.05 ms overhead.
        assert!((sample.compute_ms - 10.0).abs() < 1e-9);
        assert!((sample.latency_ms - 10.05).abs() < 1e-9);
        assert!(!sample.is_memory_bound());
    }

    #[test]
    fn memory_bound_latency_uses_bandwidth() {
        let cu = test_cu();
        let sample = cu.execute(
            &memory_heavy_cost(),
            WorkloadClass::MemoryBound,
            cu.max_dvfs(),
        );
        assert!(sample.is_memory_bound());
        // 7e8 bytes at 50 GB/s = 14 ms.
        assert!((sample.memory_ms - 14.0).abs() < 1e-6);
    }

    #[test]
    fn lower_dvfs_is_slower_but_lower_power() {
        let cu = test_cu();
        let fast = cu.execute(
            &compute_heavy_cost(),
            WorkloadClass::Convolution,
            cu.max_dvfs(),
        );
        let slow_point = cu.dvfs().point(0).unwrap();
        let slow = cu.execute(
            &compute_heavy_cost(),
            WorkloadClass::Convolution,
            slow_point,
        );
        assert!(slow.latency_ms > fast.latency_ms);
        assert!(slow.power_w < fast.power_w);
    }

    #[test]
    fn precomputed_coefficients_reproduce_execute_bit_for_bit() {
        let cu = test_cu();
        for class in WorkloadClass::ALL {
            for level in 0..cu.dvfs().num_levels() {
                let point = cu.dvfs().point(level).unwrap();
                let coeffs = cu.execution_coefficients(class, point);
                for cost in [compute_heavy_cost(), memory_heavy_cost(), SliceCost::zero()] {
                    let fresh = cu.execute(&cost, class, point);
                    let tabled = coeffs.execute(&cost);
                    assert_eq!(fresh.latency_ms.to_bits(), tabled.latency_ms.to_bits());
                    assert_eq!(fresh.energy_mj.to_bits(), tabled.energy_mj.to_bits());
                    let (lat, energy) = coeffs.latency_energy(&cost);
                    assert_eq!(lat.to_bits(), fresh.latency_ms.to_bits());
                    assert_eq!(energy.to_bits(), fresh.energy_mj.to_bits());
                }
            }
        }
    }

    #[test]
    fn zero_cost_executes_for_free() {
        let cu = test_cu();
        let sample = cu.execute(&SliceCost::zero(), WorkloadClass::Dense, cu.max_dvfs());
        assert_eq!(sample, ExecutionSample::zero());
    }

    #[test]
    fn energy_equals_power_times_latency() {
        let cu = test_cu();
        let s = cu.execute(
            &compute_heavy_cost(),
            WorkloadClass::Convolution,
            cu.max_dvfs(),
        );
        assert!((s.energy_mj - s.power_w * s.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn builder_rejects_invalid_parameters() {
        assert!(ComputeUnit::builder(CuId(0), "x", CuKind::Cpu)
            .peak_gflops(0.0)
            .build()
            .is_err());
        assert!(ComputeUnit::builder(CuId(0), "x", CuKind::Cpu)
            .peak_gflops(10.0)
            .memory_bandwidth_gbps(-1.0)
            .build()
            .is_err());
        assert!(ComputeUnit::builder(CuId(0), "x", CuKind::Cpu)
            .peak_gflops(10.0)
            .launch_overhead_ms(-0.1)
            .build()
            .is_err());
        assert!(ComputeUnit::builder(CuId(0), "x", CuKind::Cpu)
            .peak_gflops(10.0)
            .memory_scale_floor(1.5)
            .build()
            .is_err());
    }

    #[test]
    fn display_mentions_name_and_kind() {
        let cu = test_cu();
        let s = cu.to_string();
        assert!(s.contains("gpu"));
        assert!(s.contains("GFLOP/s"));
    }

    #[test]
    fn cu_kind_tags_are_distinct() {
        assert_ne!(CuKind::Gpu.tag(), CuKind::Dla.tag());
        assert_ne!(CuKind::Dla.tag(), CuKind::Cpu.tag());
    }

    proptest! {
        #[test]
        fn prop_latency_monotone_in_flops(flops1 in 1e6f64..1e10, flops2 in 1e6f64..1e10) {
            let cu = test_cu();
            let mk = |flops: f64| SliceCost { flops, macs: flops / 2.0, ..Default::default() };
            let (lo, hi) = if flops1 <= flops2 { (flops1, flops2) } else { (flops2, flops1) };
            let a = cu.execute(&mk(lo), WorkloadClass::Convolution, cu.max_dvfs());
            let b = cu.execute(&mk(hi), WorkloadClass::Convolution, cu.max_dvfs());
            prop_assert!(a.latency_ms <= b.latency_ms + 1e-12);
        }

        #[test]
        fn prop_latency_monotone_in_dvfs(level in 0usize..5) {
            let cu = test_cu();
            let cost = compute_heavy_cost();
            let point = cu.dvfs().point(level).unwrap();
            let slower = cu.execute(&cost, WorkloadClass::Convolution, point);
            let fastest = cu.execute(&cost, WorkloadClass::Convolution, cu.max_dvfs());
            prop_assert!(fastest.latency_ms <= slower.latency_ms + 1e-12);
        }
    }
}
