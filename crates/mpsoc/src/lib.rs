//! Heterogeneous MPSoC hardware model for Map-and-Conquer.
//!
//! The paper evaluates on an NVIDIA Jetson AGX Xavier: one Volta GPU, two
//! deep-learning accelerators (DLAs) and a Carmel CPU cluster sharing LPDDR4
//! system memory, all with DVFS. That hardware is not available here, so
//! this crate provides an *analytic substitute* exposing exactly the
//! quantities the Map-and-Conquer optimisation consumes:
//!
//! * per-compute-unit, per-layer-slice **latency** (a roofline model with
//!   per-workload-class efficiency factors and kernel-launch overhead),
//! * per-compute-unit **power** following the paper's affine DVFS model
//!   `P_m = α + β·ϑ_m` (eq. 10), from which per-layer **energy** follows,
//! * **DVFS** frequency tables per compute unit,
//! * a shared-memory capacity model for intermediate feature storage, and
//! * an interconnect model for the inter-stage feature transfers
//!   `u_{k→i}` of eq. 8.
//!
//! The [`Platform::agx_xavier`] preset is calibrated so that the GPU-only /
//! DLA-only baseline rows of the paper's Table II (latency and energy of
//! Visformer and VGG-19) are reproduced to within a few percent; see the
//! `calibration` integration test and `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use mnc_mpsoc::{Platform, CuKind, WorkloadClass};
//! use mnc_nn::models::{visformer, ModelPreset};
//!
//! let platform = Platform::agx_xavier();
//! let net = visformer(ModelPreset::cifar100());
//! let gpu = platform.compute_units().iter().find(|cu| cu.kind() == CuKind::Gpu).unwrap();
//!
//! // Latency and energy of the whole network mapped to the GPU at max DVFS.
//! let mut latency_ms = 0.0;
//! let mut energy_mj = 0.0;
//! for (id, layer) in net.iter() {
//!     let cost = layer.full_cost(&net.input_shape_of(id).unwrap()).unwrap();
//!     let sample = gpu.execute(&cost, WorkloadClass::from_layer(layer), gpu.max_dvfs());
//!     latency_ms += sample.latency_ms;
//!     energy_mj += sample.energy_mj;
//! }
//! assert!(latency_ms > 1.0 && energy_mj > 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute_unit;
pub mod dvfs;
pub mod error;
pub mod interconnect;
pub mod memory;
pub mod platform;
pub mod power;
pub mod registry;
pub mod workload;

pub use compute_unit::{
    ComputeUnit, ComputeUnitBuilder, CuId, CuKind, ExecutionCoefficients, ExecutionSample,
};
pub use dvfs::{DvfsPoint, DvfsTable};
pub use error::MpsocError;
pub use interconnect::Interconnect;
pub use memory::{MemoryBudget, SharedMemory};
pub use platform::Platform;
pub use power::PowerModel;
pub use registry::PlatformRegistry;
pub use workload::WorkloadClass;
