//! Compute-unit power model.
//!
//! The paper characterises every compute unit `CU_m` with the affine model
//! of eq. 10:
//!
//! ```text
//! P_m = P_s_m + P_d_m(ϑ_m) ≈ α + β·ϑ_m
//! ```
//!
//! where `α` is the static component, `β` the dynamic envelope and `ϑ_m`
//! the DVFS scaling factor. On real silicon the dynamic draw also depends
//! on how saturated the unit is, so the model here additionally accepts a
//! per-workload utilisation factor (1.0 reproduces the paper's expression
//! exactly).

use crate::error::MpsocError;
use serde::{Deserialize, Serialize};

/// Affine power model `P = α + β·ϑ·u` of one compute unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static power `α` in watts, drawn whenever the unit is powered.
    static_w: f64,
    /// Dynamic power envelope `β` in watts at maximum frequency and full
    /// utilisation.
    dynamic_w: f64,
}

impl PowerModel {
    /// Creates a power model from the static (`α`) and dynamic (`β`)
    /// components in watts.
    ///
    /// # Errors
    ///
    /// Returns [`MpsocError::InvalidParameter`] for negative or non-finite
    /// values.
    pub fn new(static_w: f64, dynamic_w: f64) -> Result<Self, MpsocError> {
        if !static_w.is_finite() || static_w < 0.0 {
            return Err(MpsocError::InvalidParameter {
                what: format!("static power {static_w} W"),
            });
        }
        if !dynamic_w.is_finite() || dynamic_w < 0.0 {
            return Err(MpsocError::InvalidParameter {
                what: format!("dynamic power {dynamic_w} W"),
            });
        }
        Ok(PowerModel {
            static_w,
            dynamic_w,
        })
    }

    /// Static component `α` in watts.
    pub fn static_w(&self) -> f64 {
        self.static_w
    }

    /// Dynamic envelope `β` in watts.
    pub fn dynamic_w(&self) -> f64 {
        self.dynamic_w
    }

    /// Power drawn while idling at any frequency (only the static
    /// component).
    pub fn idle_w(&self) -> f64 {
        self.static_w
    }

    /// Power drawn while executing a workload with DVFS scale `ϑ` and
    /// utilisation `u` (both clamped to `[0, 1]`): `α + β·ϑ·u`.
    pub fn busy_w(&self, scale: f64, utilization: f64) -> f64 {
        let scale = scale.clamp(0.0, 1.0);
        let utilization = utilization.clamp(0.0, 1.0);
        self.static_w + self.dynamic_w * scale * utilization
    }

    /// Energy in millijoules of running for `latency_ms` milliseconds at
    /// the given DVFS scale and utilisation.
    pub fn energy_mj(&self, latency_ms: f64, scale: f64, utilization: f64) -> f64 {
        self.busy_w(scale, utilization) * latency_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn busy_power_matches_affine_model() {
        let p = PowerModel::new(2.0, 10.0).unwrap();
        assert_eq!(p.idle_w(), 2.0);
        assert!((p.busy_w(1.0, 1.0) - 12.0).abs() < 1e-12);
        assert!((p.busy_w(0.5, 1.0) - 7.0).abs() < 1e-12);
        assert!((p.busy_w(0.5, 0.5) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn energy_is_power_times_time() {
        let p = PowerModel::new(1.0, 9.0).unwrap();
        // 10 W for 5 ms = 50 mJ.
        assert!((p.energy_mj(5.0, 1.0, 1.0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(PowerModel::new(-1.0, 5.0).is_err());
        assert!(PowerModel::new(1.0, -5.0).is_err());
        assert!(PowerModel::new(f64::NAN, 5.0).is_err());
        assert!(PowerModel::new(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn out_of_range_scale_is_clamped() {
        let p = PowerModel::new(1.0, 10.0).unwrap();
        assert_eq!(p.busy_w(2.0, 1.0), p.busy_w(1.0, 1.0));
        assert_eq!(p.busy_w(-1.0, 1.0), p.idle_w());
    }

    proptest! {
        #[test]
        fn prop_power_monotone_in_scale(alpha in 0.0f64..10.0, beta in 0.0f64..50.0,
                                        s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
            let p = PowerModel::new(alpha, beta).unwrap();
            let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            prop_assert!(p.busy_w(lo, 1.0) <= p.busy_w(hi, 1.0) + 1e-12);
        }

        #[test]
        fn prop_busy_at_least_idle(alpha in 0.0f64..10.0, beta in 0.0f64..50.0,
                                   s in 0.0f64..1.0, u in 0.0f64..1.0) {
            let p = PowerModel::new(alpha, beta).unwrap();
            prop_assert!(p.busy_w(s, u) >= p.idle_w() - 1e-12);
        }
    }
}
