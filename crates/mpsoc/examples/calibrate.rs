//! Calibration check for the AGX Xavier preset: prints the single-CU
//! baseline latency/energy of Visformer and VGG-19 so the hardware
//! constants can be compared against the paper's Table II baseline rows
//! (GPU 15.01 ms / 197.35 mJ and DLA 53.71 ms / 69.22 mJ for Visformer;
//! GPU 25.23 ms / 630.11 mJ and DLA 114.41 ms / 164.89 mJ for VGG-19).
//!
//! ```text
//! cargo run -p mnc-mpsoc --example calibrate
//! ```

use mnc_mpsoc::{CuId, Platform};
use mnc_nn::models::{vgg19, visformer, ModelPreset};

fn main() -> Result<(), mnc_mpsoc::MpsocError> {
    let platform = Platform::agx_xavier();
    let workloads = [
        ("visformer", visformer(ModelPreset::cifar100())),
        ("vgg19", vgg19(ModelPreset::cifar100())),
    ];
    for (name, network) in workloads {
        let cost = network.total_cost();
        println!(
            "{name}: {:.1} MMACs, {:.1} MFLOPs, {:.1} MB weights, {:.2} MB activations",
            cost.macs / 1e6,
            cost.flops / 1e6,
            cost.weight_bytes / 1e6,
            cost.output_bytes / 1e6
        );
        for cu in [CuId(0), CuId(1)] {
            let unit = platform.compute_unit(cu)?;
            let (latency_ms, energy_mj) = platform.single_cu_baseline(&network, cu)?;
            println!(
                "  {:<5} {:>8.2} ms  {:>8.2} mJ  ({:.2} W average)",
                unit.name(),
                latency_ms,
                energy_mj,
                energy_mj / latency_ms
            );
        }
    }
    Ok(())
}
