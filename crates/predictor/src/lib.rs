//! Surrogate performance predictors for Map-and-Conquer.
//!
//! The paper (§V-E) trains an XGBoost regressor on a dataset of layer-wise
//! TensorRT measurements (layer specification × compute unit × DVFS
//! setting) and then uses it to estimate the latency `τ^j_i` and energy
//! `e^j_i` of every candidate layer slice during the evolutionary search.
//!
//! This crate reproduces that component from scratch:
//!
//! * [`tree`] — CART-style regression trees,
//! * [`gbt`] — gradient-boosted tree ensembles (squared loss),
//! * [`features`] — the feature encoding of a (layer slice, compute unit,
//!   DVFS point) query,
//! * [`dataset`] — benchmark-dataset generation; lacking TensorRT and the
//!   physical board, measurements are sampled from the [`mnc_mpsoc`]
//!   analytic model with multiplicative measurement noise,
//! * [`surrogate`] — the [`PerformancePredictor`] bundling a latency and an
//!   energy model plus accuracy metrics (MAPE, R²).
//!
//! # Example
//!
//! ```
//! use mnc_mpsoc::Platform;
//! use mnc_predictor::{DatasetConfig, GbtConfig, PerformancePredictor};
//!
//! # fn main() -> Result<(), mnc_predictor::PredictorError> {
//! let platform = Platform::dual_test();
//! let config = DatasetConfig { samples: 400, seed: 7, ..DatasetConfig::default() };
//! let predictor = PerformancePredictor::train(&platform, &config, &GbtConfig::fast())?;
//! assert!(predictor.validation_report().latency_mape < 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod features;
pub mod gbt;
pub mod metrics;
pub mod surrogate;
pub mod tree;

pub use dataset::{BenchmarkDataset, BenchmarkRecord, DatasetConfig};
pub use error::PredictorError;
pub use features::{FeatureVector, QueryFeatures, FEATURE_DIM};
pub use gbt::{GbtConfig, GradientBoostedTrees};
pub use metrics::{mean_absolute_percentage_error, r_squared, root_mean_squared_error};
pub use surrogate::{PerformancePredictor, ValidationReport};
pub use tree::{RegressionTree, TreeConfig};
