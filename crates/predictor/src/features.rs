//! Feature encoding of a hardware-performance query.
//!
//! The surrogate predicts latency/energy from the same information the
//! paper feeds XGBoost: the layer-slice workload description, the compute
//! unit it runs on and the DVFS state. Workload magnitudes are encoded in
//! `log1p` space because they span many orders of magnitude.

use mnc_mpsoc::{ComputeUnit, CuKind, DvfsPoint, WorkloadClass};
use mnc_nn::SliceCost;
use serde::{Deserialize, Serialize};

/// Number of features produced by [`QueryFeatures::to_vector`].
///
/// 6 workload magnitudes + 1 arithmetic intensity + 1 DVFS scale +
/// 3 compute-unit capability scalars + 3 CU-kind one-hot + 5 workload-class
/// one-hot.
pub const FEATURE_DIM: usize = 19;

/// A fixed-size feature vector consumed by the regression models.
pub type FeatureVector = [f64; FEATURE_DIM];

/// The raw description of one performance query, before encoding.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryFeatures {
    /// Workload of the layer slice.
    pub cost: SliceCost,
    /// Workload class of the layer.
    pub class: WorkloadClass,
    /// Kind of compute unit the slice runs on.
    pub cu_kind: CuKind,
    /// Peak throughput of the unit in GFLOP/s.
    pub peak_gflops: f64,
    /// Memory bandwidth of the unit in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Per-layer launch overhead of the unit in milliseconds.
    pub launch_overhead_ms: f64,
    /// DVFS scaling factor `ϑ` in `(0, 1]`.
    pub dvfs_scale: f64,
}

impl QueryFeatures {
    /// Builds a query from a layer slice, a compute unit and a DVFS point.
    pub fn new(cost: SliceCost, class: WorkloadClass, cu: &ComputeUnit, dvfs: DvfsPoint) -> Self {
        QueryFeatures {
            cost,
            class,
            cu_kind: cu.kind(),
            peak_gflops: cu.peak_gflops(),
            memory_bandwidth_gbps: cu.memory_bandwidth_gbps(),
            launch_overhead_ms: cu.launch_overhead_ms(),
            dvfs_scale: dvfs.scale,
        }
    }

    /// Encodes the query into the fixed-size numeric vector used by the
    /// regression trees.
    pub fn to_vector(&self) -> FeatureVector {
        let mut features = [0.0; FEATURE_DIM];
        features[0] = (1.0 + self.cost.macs).ln();
        features[1] = (1.0 + self.cost.flops).ln();
        features[2] = (1.0 + self.cost.weight_bytes).ln();
        features[3] = (1.0 + self.cost.input_bytes).ln();
        features[4] = (1.0 + self.cost.output_bytes).ln();
        features[5] = (1.0 + self.cost.total_bytes()).ln();
        features[6] = self.cost.arithmetic_intensity();
        features[7] = self.dvfs_scale;
        features[8] = self.peak_gflops;
        features[9] = self.memory_bandwidth_gbps;
        features[10] = self.launch_overhead_ms;
        let kind_offset = 11
            + match self.cu_kind {
                CuKind::Gpu => 0,
                CuKind::Dla => 1,
                CuKind::Cpu => 2,
            };
        features[kind_offset] = 1.0;
        features[14 + self.class.index()] = 1.0;
        features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_mpsoc::Platform;

    fn sample_cost() -> SliceCost {
        SliceCost {
            macs: 1e6,
            flops: 2e6,
            weight_bytes: 4e5,
            input_bytes: 1e5,
            output_bytes: 2e5,
        }
    }

    #[test]
    fn vector_has_declared_dimension() {
        let platform = Platform::dual_test();
        let cu = &platform.compute_units()[0];
        let q = QueryFeatures::new(sample_cost(), WorkloadClass::Convolution, cu, cu.max_dvfs());
        let v = q.to_vector();
        assert_eq!(v.len(), FEATURE_DIM);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn one_hot_encodings_are_exclusive() {
        let platform = Platform::dual_test();
        let gpu = &platform.compute_units()[0];
        let dla = &platform.compute_units()[1];
        let q_gpu =
            QueryFeatures::new(sample_cost(), WorkloadClass::Attention, gpu, gpu.max_dvfs());
        let q_dla = QueryFeatures::new(sample_cost(), WorkloadClass::Mlp, dla, dla.max_dvfs());
        let v_gpu = q_gpu.to_vector();
        let v_dla = q_dla.to_vector();
        // CU kind one-hot occupies indices 11..14.
        assert_eq!(v_gpu[11..14].iter().sum::<f64>(), 1.0);
        assert_eq!(v_dla[11..14].iter().sum::<f64>(), 1.0);
        assert_ne!(v_gpu[11..14], v_dla[11..14]);
        // Workload class one-hot occupies indices 14..19.
        assert_eq!(v_gpu[14..19].iter().sum::<f64>(), 1.0);
        assert_ne!(v_gpu[14..19], v_dla[14..19]);
    }

    #[test]
    fn magnitudes_are_log_encoded() {
        let platform = Platform::dual_test();
        let cu = &platform.compute_units()[0];
        let small = QueryFeatures::new(SliceCost::zero(), WorkloadClass::Dense, cu, cu.max_dvfs())
            .to_vector();
        let big =
            QueryFeatures::new(sample_cost(), WorkloadClass::Dense, cu, cu.max_dvfs()).to_vector();
        assert_eq!(small[0], 0.0);
        assert!(big[0] > 10.0 && big[0] < 20.0);
    }

    #[test]
    fn dvfs_scale_is_passed_through() {
        let platform = Platform::dual_test();
        let cu = &platform.compute_units()[0];
        let slow = cu.dvfs().point(0).unwrap();
        let q = QueryFeatures::new(sample_cost(), WorkloadClass::Convolution, cu, slow);
        assert!((q.to_vector()[7] - slow.scale).abs() < 1e-12);
    }
}
