//! Gradient-boosted regression-tree ensembles.
//!
//! A from-scratch stand-in for the XGBoost regressor of paper §V-E:
//! least-squares boosting where each tree fits the residual of the current
//! ensemble, with shrinkage and optional row subsampling.

use crate::error::PredictorError;
use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the boosted ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbtConfig {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) per round, in
    /// `(0, 1]`.
    pub subsample: f64,
    /// Configuration of each individual tree.
    pub tree: TreeConfig,
    /// RNG seed for row subsampling.
    pub seed: u64,
}

impl GbtConfig {
    /// A small, fast configuration for tests and examples.
    pub fn fast() -> Self {
        GbtConfig {
            n_trees: 30,
            learning_rate: 0.2,
            subsample: 0.9,
            tree: TreeConfig {
                max_depth: 4,
                min_samples_leaf: 4,
                candidate_thresholds: 8,
            },
            seed: 17,
        }
    }

    /// Validates the hyper-parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidConfig`] for zero trees, a
    /// non-positive learning rate or an out-of-range subsample fraction.
    pub fn validate(&self) -> Result<(), PredictorError> {
        if self.n_trees == 0 {
            return Err(PredictorError::InvalidConfig {
                what: "number of trees must be at least 1".to_string(),
            });
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(PredictorError::InvalidConfig {
                what: format!("learning rate {}", self.learning_rate),
            });
        }
        if !self.subsample.is_finite() || self.subsample <= 0.0 || self.subsample > 1.0 {
            return Err(PredictorError::InvalidConfig {
                what: format!("subsample fraction {}", self.subsample),
            });
        }
        Ok(())
    }
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            n_trees: 120,
            learning_rate: 0.1,
            subsample: 0.85,
            tree: TreeConfig::default(),
            seed: 17,
        }
    }
}

/// A fitted gradient-boosted ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostedTrees {
    base_prediction: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

impl GradientBoostedTrees {
    /// Fits the ensemble.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid hyper-parameters, an empty dataset or
    /// inconsistent feature dimensions.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        config: &GbtConfig,
    ) -> Result<Self, PredictorError> {
        config.validate()?;
        if features.is_empty() || targets.is_empty() {
            return Err(PredictorError::EmptyDataset);
        }
        if features.len() != targets.len() {
            return Err(PredictorError::DimensionMismatch {
                expected: features.len(),
                actual: targets.len(),
            });
        }

        let base_prediction = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut predictions = vec![base_prediction; targets.len()];
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let all_rows: Vec<usize> = (0..targets.len()).collect();
        let sample_size =
            ((targets.len() as f64 * config.subsample).round() as usize).clamp(1, targets.len());

        for _ in 0..config.n_trees {
            let rows: Vec<usize> = if sample_size == targets.len() {
                all_rows.clone()
            } else {
                let mut shuffled = all_rows.clone();
                shuffled.shuffle(&mut rng);
                shuffled.truncate(sample_size);
                shuffled
            };
            let sub_features: Vec<Vec<f64>> = rows.iter().map(|&i| features[i].clone()).collect();
            let residuals: Vec<f64> = rows.iter().map(|&i| targets[i] - predictions[i]).collect();
            let tree = RegressionTree::fit(&sub_features, &residuals, &config.tree)?;
            for (i, feature_row) in features.iter().enumerate() {
                predictions[i] += config.learning_rate
                    * tree
                        .predict(feature_row)
                        .expect("training rows have the fitted dimension");
            }
            trees.push(tree);
        }
        Ok(GradientBoostedTrees {
            base_prediction,
            learning_rate: config.learning_rate,
            trees,
        })
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Predicts the target for one feature row.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::DimensionMismatch`] when the row length
    /// differs from the training data.
    pub fn predict(&self, features: &[f64]) -> Result<f64, PredictorError> {
        let mut value = self.base_prediction;
        for tree in &self.trees {
            value += self.learning_rate * tree.predict(features)?;
        }
        Ok(value)
    }

    /// Predicts targets for a batch of rows.
    ///
    /// # Errors
    ///
    /// Returns the first dimension mismatch encountered.
    pub fn predict_batch(&self, features: &[Vec<f64>]) -> Result<Vec<f64>, PredictorError> {
        features.iter().map(|row| self.predict(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mean_absolute_percentage_error, r_squared};

    /// y = 3·x0 + x1² with x in [0,1]².
    fn synthetic_dataset(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut features = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = (i % 37) as f64 / 37.0;
            let x1 = (i % 11) as f64 / 11.0;
            features.push(vec![x0, x1]);
            targets.push(3.0 * x0 + x1 * x1 + 0.5);
        }
        (features, targets)
    }

    #[test]
    fn fits_a_smooth_function_well() {
        let (features, targets) = synthetic_dataset(500);
        let model = GradientBoostedTrees::fit(&features, &targets, &GbtConfig::fast()).unwrap();
        let preds = model.predict_batch(&features).unwrap();
        assert!(r_squared(&preds, &targets) > 0.95);
        assert!(mean_absolute_percentage_error(&preds, &targets) < 0.1);
    }

    #[test]
    fn boosting_improves_over_a_single_tree() {
        let (features, targets) = synthetic_dataset(400);
        let single = GbtConfig {
            n_trees: 1,
            learning_rate: 1.0,
            ..GbtConfig::fast()
        };
        let many = GbtConfig {
            n_trees: 60,
            ..GbtConfig::fast()
        };
        let m1 = GradientBoostedTrees::fit(&features, &targets, &single).unwrap();
        let m2 = GradientBoostedTrees::fit(&features, &targets, &many).unwrap();
        let r1 = r_squared(&m1.predict_batch(&features).unwrap(), &targets);
        let r2 = r_squared(&m2.predict_batch(&features).unwrap(), &targets);
        assert!(r2 > r1);
    }

    #[test]
    fn constant_targets_predict_the_constant() {
        let features = vec![vec![0.0], vec![1.0], vec![2.0]];
        let targets = vec![7.0, 7.0, 7.0];
        let model = GradientBoostedTrees::fit(&features, &targets, &GbtConfig::fast()).unwrap();
        assert!((model.predict(&[0.5]).unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad_trees = GbtConfig {
            n_trees: 0,
            ..GbtConfig::fast()
        };
        assert!(bad_trees.validate().is_err());
        let bad_lr = GbtConfig {
            learning_rate: 0.0,
            ..GbtConfig::fast()
        };
        assert!(bad_lr.validate().is_err());
        let bad_sub = GbtConfig {
            subsample: 1.5,
            ..GbtConfig::fast()
        };
        assert!(bad_sub.validate().is_err());
        let (features, targets) = synthetic_dataset(10);
        assert!(GradientBoostedTrees::fit(&features, &targets, &bad_trees).is_err());
    }

    #[test]
    fn empty_dataset_is_rejected() {
        assert_eq!(
            GradientBoostedTrees::fit(&[], &[], &GbtConfig::fast()),
            Err(PredictorError::EmptyDataset)
        );
    }

    #[test]
    fn prediction_dimension_is_checked() {
        let (features, targets) = synthetic_dataset(50);
        let model = GradientBoostedTrees::fit(&features, &targets, &GbtConfig::fast()).unwrap();
        assert!(model.predict(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let (features, targets) = synthetic_dataset(200);
        let a = GradientBoostedTrees::fit(&features, &targets, &GbtConfig::fast()).unwrap();
        let b = GradientBoostedTrees::fit(&features, &targets, &GbtConfig::fast()).unwrap();
        assert_eq!(a, b);
    }
}
