//! Benchmark-dataset generation for surrogate training.
//!
//! The paper builds its training set by profiling layers of diverse
//! specifications on the AGX Xavier with TensorRT, across compute units and
//! DVFS settings. Without the board, this module samples the same kind of
//! records from the [`mnc_mpsoc`] analytic model and perturbs them with
//! multiplicative measurement noise, so the surrogate still has to *learn*
//! the latency/energy surface rather than memorise an exact formula.

use crate::error::PredictorError;
use crate::features::QueryFeatures;
use mnc_mpsoc::{Platform, WorkloadClass};
use mnc_nn::{FeatureShape, Layer, LayerKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the benchmark-dataset generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of records to generate.
    pub samples: usize,
    /// RNG seed (layer specs, compute unit / DVFS choice and noise).
    pub seed: u64,
    /// Standard deviation of the multiplicative log-normal measurement
    /// noise (0.0 disables noise).
    pub noise_std: f64,
    /// Fraction of records used for training, the rest for validation.
    pub train_fraction: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            samples: 4000,
            seed: 42,
            noise_std: 0.05,
            train_fraction: 0.8,
        }
    }
}

impl DatasetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::InvalidConfig`] for zero samples, negative
    /// noise or an out-of-range train fraction.
    pub fn validate(&self) -> Result<(), PredictorError> {
        if self.samples == 0 {
            return Err(PredictorError::InvalidConfig {
                what: "dataset needs at least one sample".to_string(),
            });
        }
        if !self.noise_std.is_finite() || self.noise_std < 0.0 {
            return Err(PredictorError::InvalidConfig {
                what: format!("noise standard deviation {}", self.noise_std),
            });
        }
        if !(0.0 < self.train_fraction && self.train_fraction <= 1.0) {
            return Err(PredictorError::InvalidConfig {
                what: format!("train fraction {}", self.train_fraction),
            });
        }
        Ok(())
    }
}

/// One profiled (layer slice, compute unit, DVFS) record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkRecord {
    /// The query (workload + hardware description).
    pub query: QueryFeatures,
    /// Measured latency in milliseconds (analytic model + noise).
    pub latency_ms: f64,
    /// Measured energy in millijoules (analytic model + noise).
    pub energy_mj: f64,
}

/// A generated benchmark dataset, split into training and validation parts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkDataset {
    records: Vec<BenchmarkRecord>,
    train_count: usize,
}

impl BenchmarkDataset {
    /// Generates a dataset by sampling random layer slices and profiling
    /// them on random compute units / DVFS points of `platform`.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration.
    pub fn generate(platform: &Platform, config: &DatasetConfig) -> Result<Self, PredictorError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut records = Vec::with_capacity(config.samples);
        while records.len() < config.samples {
            let (layer, input) = random_layer(&mut rng);
            let out_frac =
                [0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0][rng.random_range(0..8usize)];
            let in_frac = [0.25, 0.5, 0.75, 1.0][rng.random_range(0..4usize)];
            let Ok(cost) = layer.slice_cost(&input, out_frac, in_frac) else {
                continue;
            };
            let cu_index = rng.random_range(0..platform.num_compute_units());
            let cu = &platform.compute_units()[cu_index];
            let level = rng.random_range(0..cu.dvfs().num_levels());
            let point = cu.dvfs().point(level).expect("level sampled in range");
            let class = WorkloadClass::from_layer(&layer);
            let sample = cu.execute(&cost, class, point);
            if sample.latency_ms <= 0.0 {
                continue;
            }
            let latency_noise = lognormal_factor(&mut rng, config.noise_std);
            let energy_noise = lognormal_factor(&mut rng, config.noise_std);
            records.push(BenchmarkRecord {
                query: QueryFeatures::new(cost, class, cu, point),
                latency_ms: sample.latency_ms * latency_noise,
                energy_mj: sample.energy_mj * energy_noise,
            });
        }
        let train_count = ((records.len() as f64) * config.train_fraction).round() as usize;
        Ok(BenchmarkDataset {
            records,
            train_count: train_count.clamp(1, config.samples),
        })
    }

    /// All records.
    pub fn records(&self) -> &[BenchmarkRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset contains no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The training partition.
    pub fn training(&self) -> &[BenchmarkRecord] {
        &self.records[..self.train_count]
    }

    /// The validation partition (empty when `train_fraction == 1.0`).
    pub fn validation(&self) -> &[BenchmarkRecord] {
        &self.records[self.train_count..]
    }

    /// Encodes a slice of records into feature rows.
    pub fn feature_rows(records: &[BenchmarkRecord]) -> Vec<Vec<f64>> {
        records
            .iter()
            .map(|r| r.query.to_vector().to_vec())
            .collect()
    }

    /// Latency targets of a slice of records, in milliseconds.
    pub fn latency_targets(records: &[BenchmarkRecord]) -> Vec<f64> {
        records.iter().map(|r| r.latency_ms).collect()
    }

    /// Energy targets of a slice of records, in millijoules.
    pub fn energy_targets(records: &[BenchmarkRecord]) -> Vec<f64> {
        records.iter().map(|r| r.energy_mj).collect()
    }
}

/// Multiplicative log-normal noise factor with the given log-std.
fn lognormal_factor(rng: &mut StdRng, std: f64) -> f64 {
    if std <= 0.0 {
        return 1.0;
    }
    // Box-Muller transform for a standard normal draw.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (std * normal).exp()
}

/// Samples a random layer specification and a compatible input shape,
/// mirroring the diversity of the paper's profiling sweep.
fn random_layer(rng: &mut StdRng) -> (Layer, FeatureShape) {
    match rng.random_range(0..6) {
        0 => {
            let in_channels = 1usize << rng.random_range(2..9); // 4..256
            let out_channels = 1usize << rng.random_range(4..10); // 16..512
            let kernel = [1usize, 3, 5][rng.random_range(0..3)];
            let size = 1usize << rng.random_range(2..6); // 4..32
            (
                Layer::new(
                    "bench_conv",
                    LayerKind::ConvBlock {
                        in_channels,
                        out_channels,
                        kernel,
                        stride: 1,
                        padding: kernel / 2,
                    },
                ),
                FeatureShape::spatial(in_channels, size, size),
            )
        }
        1 => {
            let heads = [2usize, 4, 6, 8, 12][rng.random_range(0..5)];
            let head_dim = [16usize, 32, 64][rng.random_range(0..3)];
            let embed_dim = heads * head_dim;
            let tokens = 1usize << rng.random_range(4..9); // 16..256
            (
                Layer::new("bench_attn", LayerKind::AttentionBlock { embed_dim, heads }),
                FeatureShape::tokens(tokens, embed_dim),
            )
        }
        2 => {
            let embed_dim = [96usize, 192, 384, 768][rng.random_range(0..4)];
            let hidden_dim = embed_dim * [2usize, 4][rng.random_range(0..2)];
            let tokens = 1usize << rng.random_range(4..9);
            (
                Layer::new(
                    "bench_mlp",
                    LayerKind::MlpBlock {
                        embed_dim,
                        hidden_dim,
                    },
                ),
                FeatureShape::tokens(tokens, embed_dim),
            )
        }
        3 => {
            let in_features = 1usize << rng.random_range(6..13); // 64..4096
            let out_features = 1usize << rng.random_range(6..13);
            (
                Layer::new(
                    "bench_dense",
                    LayerKind::Dense {
                        in_features,
                        out_features,
                    },
                ),
                FeatureShape::vector(in_features),
            )
        }
        4 => {
            let channels = 1usize << rng.random_range(4..10);
            let size = 1usize << rng.random_range(2..6);
            (
                Layer::new(
                    "bench_pool",
                    LayerKind::Pool {
                        kernel: 2,
                        stride: 2,
                    },
                ),
                FeatureShape::spatial(channels, size.max(2), size.max(2)),
            )
        }
        _ => {
            let in_channels = [3usize, 16, 32, 64][rng.random_range(0..4)];
            let embed_dim = [96usize, 192, 384][rng.random_range(0..3)];
            let patch = [2usize, 4, 8][rng.random_range(0..3)];
            let size = patch * (1usize << rng.random_range(1..4));
            (
                Layer::new(
                    "bench_patch",
                    LayerKind::PatchEmbed {
                        in_channels,
                        embed_dim,
                        patch,
                    },
                ),
                FeatureShape::spatial(in_channels, size, size),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_records() {
        let platform = Platform::dual_test();
        let config = DatasetConfig {
            samples: 200,
            seed: 3,
            ..DatasetConfig::default()
        };
        let dataset = BenchmarkDataset::generate(&platform, &config).unwrap();
        assert_eq!(dataset.len(), 200);
        assert!(!dataset.is_empty());
        assert_eq!(dataset.training().len() + dataset.validation().len(), 200);
        assert!(dataset.training().len() >= 150);
    }

    #[test]
    fn records_have_positive_measurements() {
        let platform = Platform::dual_test();
        let config = DatasetConfig {
            samples: 100,
            seed: 11,
            ..DatasetConfig::default()
        };
        let dataset = BenchmarkDataset::generate(&platform, &config).unwrap();
        for r in dataset.records() {
            assert!(r.latency_ms > 0.0);
            assert!(r.energy_mj > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let platform = Platform::dual_test();
        let config = DatasetConfig {
            samples: 64,
            seed: 5,
            ..DatasetConfig::default()
        };
        let a = BenchmarkDataset::generate(&platform, &config).unwrap();
        let b = BenchmarkDataset::generate(&platform, &config).unwrap();
        assert_eq!(a, b);
        let c =
            BenchmarkDataset::generate(&platform, &DatasetConfig { seed: 6, ..config }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_noise_matches_analytic_model_exactly() {
        let platform = Platform::dual_test();
        let config = DatasetConfig {
            samples: 50,
            seed: 9,
            noise_std: 0.0,
            ..DatasetConfig::default()
        };
        let dataset = BenchmarkDataset::generate(&platform, &config).unwrap();
        for r in dataset.records() {
            // Re-evaluate the analytic model from the stored query.
            let cu = platform
                .compute_units()
                .iter()
                .find(|cu| cu.kind() == r.query.cu_kind)
                .unwrap();
            let point = cu
                .dvfs()
                .iter()
                .find(|p| (p.scale - r.query.dvfs_scale).abs() < 1e-9)
                .unwrap();
            let sample = cu.execute(&r.query.cost, r.query.class, point);
            assert!((sample.latency_ms - r.latency_ms).abs() < 1e-9);
            assert!((sample.energy_mj - r.energy_mj).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let platform = Platform::dual_test();
        for bad in [
            DatasetConfig {
                samples: 0,
                ..DatasetConfig::default()
            },
            DatasetConfig {
                noise_std: -1.0,
                ..DatasetConfig::default()
            },
            DatasetConfig {
                train_fraction: 0.0,
                ..DatasetConfig::default()
            },
            DatasetConfig {
                train_fraction: 1.5,
                ..DatasetConfig::default()
            },
        ] {
            assert!(BenchmarkDataset::generate(&platform, &bad).is_err());
        }
    }

    #[test]
    fn feature_rows_match_record_count() {
        let platform = Platform::dual_test();
        let config = DatasetConfig {
            samples: 32,
            seed: 2,
            ..DatasetConfig::default()
        };
        let dataset = BenchmarkDataset::generate(&platform, &config).unwrap();
        let rows = BenchmarkDataset::feature_rows(dataset.records());
        assert_eq!(rows.len(), 32);
        assert!(rows.iter().all(|r| r.len() == crate::FEATURE_DIM));
        assert_eq!(
            BenchmarkDataset::latency_targets(dataset.records()).len(),
            32
        );
        assert_eq!(
            BenchmarkDataset::energy_targets(dataset.records()).len(),
            32
        );
    }
}
