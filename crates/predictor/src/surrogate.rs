//! The latency/energy surrogate used by the mapping search.
//!
//! [`PerformancePredictor`] bundles two gradient-boosted ensembles — one for
//! latency, one for energy — trained on a [`crate::BenchmarkDataset`], plus
//! the validation metrics that tell the user how much to trust it. Both
//! targets are modelled in log space because layer latencies span several
//! orders of magnitude.

use crate::dataset::{BenchmarkDataset, DatasetConfig};
use crate::error::PredictorError;
use crate::features::QueryFeatures;
use crate::gbt::{GbtConfig, GradientBoostedTrees};
use crate::metrics::{mean_absolute_percentage_error, r_squared};
use mnc_mpsoc::Platform;
use serde::{Deserialize, Serialize};

/// Held-out accuracy of a trained [`PerformancePredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Mean absolute percentage error of latency predictions.
    pub latency_mape: f64,
    /// Mean absolute percentage error of energy predictions.
    pub energy_mape: f64,
    /// R² of latency predictions.
    pub latency_r2: f64,
    /// R² of energy predictions.
    pub energy_r2: f64,
    /// Number of training records.
    pub train_size: usize,
    /// Number of validation records.
    pub validation_size: usize,
}

/// Surrogate predictor for per-layer latency and energy on the MPSoC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformancePredictor {
    latency_model: GradientBoostedTrees,
    energy_model: GradientBoostedTrees,
    report: ValidationReport,
}

impl PerformancePredictor {
    /// Generates a benchmark dataset from `platform` and trains the
    /// surrogate on it.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid configurations or an empty dataset.
    pub fn train(
        platform: &Platform,
        dataset_config: &DatasetConfig,
        gbt_config: &GbtConfig,
    ) -> Result<Self, PredictorError> {
        let dataset = BenchmarkDataset::generate(platform, dataset_config)?;
        Self::from_dataset(&dataset, gbt_config)
    }

    /// Trains the surrogate on an existing benchmark dataset.
    ///
    /// # Errors
    ///
    /// Returns an error if the training partition is empty or the model
    /// configuration is invalid.
    pub fn from_dataset(
        dataset: &BenchmarkDataset,
        gbt_config: &GbtConfig,
    ) -> Result<Self, PredictorError> {
        let train = dataset.training();
        if train.is_empty() {
            return Err(PredictorError::EmptyDataset);
        }
        let features = BenchmarkDataset::feature_rows(train);
        let latency_targets: Vec<f64> = BenchmarkDataset::latency_targets(train)
            .into_iter()
            .map(|v| v.max(1e-9).ln())
            .collect();
        let energy_targets: Vec<f64> = BenchmarkDataset::energy_targets(train)
            .into_iter()
            .map(|v| v.max(1e-9).ln())
            .collect();
        let latency_model = GradientBoostedTrees::fit(&features, &latency_targets, gbt_config)?;
        let energy_model = GradientBoostedTrees::fit(&features, &energy_targets, gbt_config)?;

        let validation = if dataset.validation().is_empty() {
            train
        } else {
            dataset.validation()
        };
        let val_features = BenchmarkDataset::feature_rows(validation);
        let val_latency = BenchmarkDataset::latency_targets(validation);
        let val_energy = BenchmarkDataset::energy_targets(validation);
        let mut pred_latency = Vec::with_capacity(validation.len());
        let mut pred_energy = Vec::with_capacity(validation.len());
        for row in &val_features {
            pred_latency.push(latency_model.predict(row)?.exp());
            pred_energy.push(energy_model.predict(row)?.exp());
        }
        let report = ValidationReport {
            latency_mape: mean_absolute_percentage_error(&pred_latency, &val_latency),
            energy_mape: mean_absolute_percentage_error(&pred_energy, &val_energy),
            latency_r2: r_squared(&pred_latency, &val_latency),
            energy_r2: r_squared(&pred_energy, &val_energy),
            train_size: train.len(),
            validation_size: dataset.validation().len(),
        };
        Ok(PerformancePredictor {
            latency_model,
            energy_model,
            report,
        })
    }

    /// Predicts `(latency_ms, energy_mj)` for one query. Predictions are
    /// clamped to be non-negative.
    pub fn predict(&self, query: &QueryFeatures) -> (f64, f64) {
        let row = query.to_vector();
        let latency = self
            .latency_model
            .predict(&row)
            .expect("feature encoding always has the trained dimension")
            .exp();
        let energy = self
            .energy_model
            .predict(&row)
            .expect("feature encoding always has the trained dimension")
            .exp();
        (latency.max(0.0), energy.max(0.0))
    }

    /// Held-out accuracy of the surrogate.
    pub fn validation_report(&self) -> &ValidationReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnc_mpsoc::WorkloadClass;
    use mnc_nn::SliceCost;

    fn trained_predictor() -> (Platform, PerformancePredictor) {
        let platform = Platform::dual_test();
        let dataset_config = DatasetConfig {
            samples: 600,
            seed: 21,
            noise_std: 0.03,
            train_fraction: 0.8,
        };
        let predictor =
            PerformancePredictor::train(&platform, &dataset_config, &GbtConfig::fast()).unwrap();
        (platform, predictor)
    }

    #[test]
    fn surrogate_reaches_reasonable_accuracy() {
        let (_, predictor) = trained_predictor();
        let report = predictor.validation_report();
        assert!(
            report.latency_mape < 0.35,
            "latency MAPE {}",
            report.latency_mape
        );
        assert!(
            report.energy_mape < 0.35,
            "energy MAPE {}",
            report.energy_mape
        );
        assert!(report.latency_r2 > 0.7, "latency R² {}", report.latency_r2);
        assert!(report.energy_r2 > 0.7, "energy R² {}", report.energy_r2);
        assert_eq!(report.train_size, 480);
        assert_eq!(report.validation_size, 120);
    }

    #[test]
    fn predictions_track_the_analytic_model() {
        // Query the surrogate with a realistic convolution layer (the same
        // kind of record the training generator produces) and check the
        // prediction stays in the analytic model's ballpark.
        let (platform, predictor) = trained_predictor();
        let cu = &platform.compute_units()[0];
        let layer = mnc_nn::Layer::new(
            "conv",
            mnc_nn::LayerKind::ConvBlock {
                in_channels: 64,
                out_channels: 128,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        );
        let input = mnc_nn::FeatureShape::spatial(64, 16, 16);
        let cost = layer.full_cost(&input).unwrap();
        let query = QueryFeatures::new(cost, WorkloadClass::Convolution, cu, cu.max_dvfs());
        let (pred_latency, pred_energy) = predictor.predict(&query);
        let truth = cu.execute(&cost, WorkloadClass::Convolution, cu.max_dvfs());
        assert!(pred_latency > 0.0 && pred_energy > 0.0);
        assert!(
            (pred_latency - truth.latency_ms).abs() / truth.latency_ms < 0.6,
            "pred {pred_latency} vs truth {}",
            truth.latency_ms
        );
        assert!(
            (pred_energy - truth.energy_mj).abs() / truth.energy_mj < 0.6,
            "pred {pred_energy} vs truth {}",
            truth.energy_mj
        );
    }

    #[test]
    fn bigger_workloads_predict_longer_latency() {
        let (platform, predictor) = trained_predictor();
        let cu = &platform.compute_units()[0];
        let small = SliceCost {
            macs: 1e6,
            flops: 2e6,
            weight_bytes: 1e5,
            input_bytes: 1e4,
            output_bytes: 1e4,
        };
        let big = SliceCost {
            macs: 5e8,
            flops: 1e9,
            weight_bytes: 1e7,
            input_bytes: 1e6,
            output_bytes: 1e6,
        };
        let (lat_small, _) = predictor.predict(&QueryFeatures::new(
            small,
            WorkloadClass::Convolution,
            cu,
            cu.max_dvfs(),
        ));
        let (lat_big, _) = predictor.predict(&QueryFeatures::new(
            big,
            WorkloadClass::Convolution,
            cu,
            cu.max_dvfs(),
        ));
        assert!(lat_big > lat_small);
    }

    #[test]
    fn training_without_validation_split_still_reports() {
        let platform = Platform::dual_test();
        let dataset_config = DatasetConfig {
            samples: 120,
            seed: 4,
            noise_std: 0.0,
            train_fraction: 1.0,
        };
        let predictor =
            PerformancePredictor::train(&platform, &dataset_config, &GbtConfig::fast()).unwrap();
        let report = predictor.validation_report();
        assert_eq!(report.validation_size, 0);
        assert!(report.latency_r2 > 0.8);
    }
}
