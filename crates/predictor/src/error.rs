//! Error types for the surrogate predictors.

use std::error::Error;
use std::fmt;

/// Errors produced while building datasets or fitting/evaluating models.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorError {
    /// The training dataset is empty.
    EmptyDataset,
    /// Feature and target lengths disagree, or a feature vector has the
    /// wrong dimension.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// A hyper-parameter is invalid (zero trees, non-positive learning
    /// rate, ...).
    InvalidConfig {
        /// Description of the invalid setting.
        what: String,
    },
    /// The underlying hardware model reported an error while generating the
    /// benchmark dataset.
    Hardware(String),
}

impl fmt::Display for PredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorError::EmptyDataset => write!(f, "training dataset is empty"),
            PredictorError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            PredictorError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            PredictorError::Hardware(msg) => write!(f, "hardware model error: {msg}"),
        }
    }
}

impl Error for PredictorError {}

impl From<mnc_mpsoc::MpsocError> for PredictorError {
    fn from(err: mnc_mpsoc::MpsocError) -> Self {
        PredictorError::Hardware(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PredictorError::EmptyDataset.to_string().contains("empty"));
        assert!(PredictorError::DimensionMismatch {
            expected: 4,
            actual: 2
        }
        .to_string()
        .contains('4'));
    }

    #[test]
    fn converts_from_mpsoc_error() {
        let err: PredictorError = mnc_mpsoc::MpsocError::InvalidParameter {
            what: "x".to_string(),
        }
        .into();
        assert!(matches!(err, PredictorError::Hardware(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<PredictorError>();
    }
}
