//! CART-style regression trees.
//!
//! The gradient-boosting ensemble of [`crate::gbt`] is built from these
//! binary regression trees. Splits greedily minimise the weighted variance
//! of the two children, thresholds are taken from feature quantiles to keep
//! fitting fast on the benchmark datasets (10⁴–10⁵ rows).

use crate::error::PredictorError;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a single regression tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (a depth of 0 yields a single leaf).
    pub max_depth: usize,
    /// Minimum number of samples required in each child of a split.
    pub min_samples_leaf: usize,
    /// Number of candidate thresholds examined per feature.
    pub candidate_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 6,
            min_samples_leaf: 5,
            candidate_thresholds: 16,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child in the node arena.
        left: usize,
        /// Index of the right child in the node arena.
        right: usize,
    },
}

/// A fitted binary regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Fits a tree to `features` (row-major, all rows the same length) and
    /// `targets`.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::EmptyDataset`] for empty inputs and
    /// [`PredictorError::DimensionMismatch`] when row lengths disagree or
    /// the number of targets differs from the number of rows.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[f64],
        config: &TreeConfig,
    ) -> Result<Self, PredictorError> {
        if features.is_empty() || targets.is_empty() {
            return Err(PredictorError::EmptyDataset);
        }
        if features.len() != targets.len() {
            return Err(PredictorError::DimensionMismatch {
                expected: features.len(),
                actual: targets.len(),
            });
        }
        let num_features = features[0].len();
        if num_features == 0 {
            return Err(PredictorError::DimensionMismatch {
                expected: 1,
                actual: 0,
            });
        }
        for row in features {
            if row.len() != num_features {
                return Err(PredictorError::DimensionMismatch {
                    expected: num_features,
                    actual: row.len(),
                });
            }
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            num_features,
        };
        let indices: Vec<usize> = (0..features.len()).collect();
        tree.grow(features, targets, &indices, config, 0);
        Ok(tree)
    }

    /// Number of nodes (splits + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], index: usize) -> usize {
            match nodes[index] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Predicts the target for one feature row.
    ///
    /// # Errors
    ///
    /// Returns [`PredictorError::DimensionMismatch`] when the row length
    /// differs from the training data.
    pub fn predict(&self, features: &[f64]) -> Result<f64, PredictorError> {
        if features.len() != self.num_features {
            return Err(PredictorError::DimensionMismatch {
                expected: self.num_features,
                actual: features.len(),
            });
        }
        let mut index = 0usize;
        loop {
            match self.nodes[index] {
                Node::Leaf { value } => return Ok(value),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    index = if features[feature] <= threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Grows the subtree for `indices` and returns its node index.
    fn grow(
        &mut self,
        features: &[Vec<f64>],
        targets: &[f64],
        indices: &[usize],
        config: &TreeConfig,
        depth: usize,
    ) -> usize {
        let mean = mean_of(targets, indices);
        if depth >= config.max_depth
            || indices.len() < 2 * config.min_samples_leaf.max(1)
            || variance_of(targets, indices, mean) < 1e-18
        {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        let Some((feature, threshold)) = self.best_split(features, targets, indices, config) else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| features[i][feature] <= threshold);
        if left_idx.len() < config.min_samples_leaf || right_idx.len() < config.min_samples_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }
        // Reserve this node's slot before growing the children.
        let node_index = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        let left = self.grow(features, targets, &left_idx, config, depth + 1);
        let right = self.grow(features, targets, &right_idx, config, depth + 1);
        self.nodes[node_index] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_index
    }

    /// Finds the (feature, threshold) pair with the lowest weighted child
    /// variance, if any valid split exists.
    fn best_split(
        &self,
        features: &[Vec<f64>],
        targets: &[f64],
        indices: &[usize],
        config: &TreeConfig,
    ) -> Option<(usize, f64)> {
        let parent_mean = mean_of(targets, indices);
        let parent_score = variance_of(targets, indices, parent_mean) * indices.len() as f64;
        let mut best: Option<(usize, f64, f64)> = None;
        // `features` is indexed `[row][feature]`, so iterating the feature
        // axis by index is the natural shape here.
        #[allow(clippy::needless_range_loop)]
        for feature in 0..self.num_features {
            let mut values: Vec<f64> = indices.iter().map(|&i| features[i][feature]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            let step = (values.len() as f64 / (config.candidate_thresholds + 1) as f64).max(1.0);
            let mut k = step;
            while (k as usize) < values.len() {
                let threshold = (values[k as usize - 1] + values[k as usize]) / 2.0;
                k += step;
                let (left, right): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| features[i][feature] <= threshold);
                if left.len() < config.min_samples_leaf || right.len() < config.min_samples_leaf {
                    continue;
                }
                let left_mean = mean_of(targets, &left);
                let right_mean = mean_of(targets, &right);
                let score = variance_of(targets, &left, left_mean) * left.len() as f64
                    + variance_of(targets, &right, right_mean) * right.len() as f64;
                if score < parent_score - 1e-15 && best.map(|(_, _, s)| score < s).unwrap_or(true) {
                    best = Some((feature, threshold, score));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

fn mean_of(targets: &[f64], indices: &[usize]) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    indices.iter().map(|&i| targets[i]).sum::<f64>() / indices.len() as f64
}

fn variance_of(targets: &[f64], indices: &[usize], mean: f64) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    indices
        .iter()
        .map(|&i| {
            let d = targets[i] - mean;
            d * d
        })
        .sum::<f64>()
        / indices.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10 if x0 > 0.5 else 1, independent of x1.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..100 {
            let x0 = i as f64 / 100.0;
            features.push(vec![x0, (i % 7) as f64]);
            targets.push(if x0 > 0.5 { 10.0 } else { 1.0 });
        }
        (features, targets)
    }

    #[test]
    fn learns_a_step_function() {
        let (features, targets) = step_dataset();
        let tree = RegressionTree::fit(&features, &targets, &TreeConfig::default()).unwrap();
        assert!(tree.predict(&[0.1, 0.0]).unwrap() < 2.0);
        assert!(tree.predict(&[0.9, 3.0]).unwrap() > 9.0);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let features = vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let targets = vec![5.0; 4];
        let tree = RegressionTree::fit(&features, &targets, &TreeConfig::default()).unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[100.0]).unwrap(), 5.0);
    }

    #[test]
    fn depth_zero_config_gives_mean_prediction() {
        let (features, targets) = step_dataset();
        let config = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&features, &targets, &config).unwrap();
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        assert!((tree.predict(&[0.3, 1.0]).unwrap() - mean).abs() < 1e-9);
    }

    #[test]
    fn empty_and_mismatched_inputs_are_rejected() {
        assert_eq!(
            RegressionTree::fit(&[], &[], &TreeConfig::default()),
            Err(PredictorError::EmptyDataset)
        );
        let features = vec![vec![1.0], vec![2.0]];
        assert!(RegressionTree::fit(&features, &[1.0], &TreeConfig::default()).is_err());
        let ragged = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(RegressionTree::fit(&ragged, &[1.0, 2.0], &TreeConfig::default()).is_err());
    }

    #[test]
    fn predict_checks_dimension() {
        let (features, targets) = step_dataset();
        let tree = RegressionTree::fit(&features, &targets, &TreeConfig::default()).unwrap();
        assert!(tree.predict(&[1.0]).is_err());
        assert!(tree.predict(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn min_samples_leaf_limits_tree_growth() {
        let (features, targets) = step_dataset();
        let coarse = TreeConfig {
            min_samples_leaf: 60,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&features, &targets, &coarse).unwrap();
        // A split would leave fewer than 60 samples on one side, so the
        // tree must stay a single leaf.
        assert_eq!(tree.num_nodes(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_predictions_within_target_range(
            rows in proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..1.0, 0.0f64..100.0), 10..80),
            query in proptest::collection::vec(0.0f64..1.0, 2)
        ) {
            let features: Vec<Vec<f64>> = rows.iter().map(|(a, b, _)| vec![*a, *b]).collect();
            let targets: Vec<f64> = rows.iter().map(|(_, _, y)| *y).collect();
            let tree = RegressionTree::fit(&features, &targets, &TreeConfig::default()).unwrap();
            let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let pred = tree.predict(&query).unwrap();
            // Leaf values are means of training targets, so predictions can
            // never leave the observed target range.
            prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9);
        }
    }
}
