//! Regression-quality metrics used to validate the surrogate models.

/// Mean absolute percentage error between predictions and targets.
///
/// Targets with absolute value below `1e-12` are skipped to avoid division
/// by zero. Returns 0.0 for empty (or all-skipped) inputs.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn mean_absolute_percentage_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "predictions and targets must have the same length"
    );
    let mut total = 0.0;
    let mut count = 0usize;
    for (p, t) in predictions.iter().zip(targets) {
        if t.abs() < 1e-12 {
            continue;
        }
        total += ((p - t) / t).abs();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Root mean squared error between predictions and targets.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn root_mean_squared_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "predictions and targets must have the same length"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let mse: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64;
    mse.sqrt()
}

/// Coefficient of determination (R²). Returns 0.0 when the target variance
/// is zero or the input is empty.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn r_squared(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "predictions and targets must have the same length"
    );
    if targets.is_empty() {
        return 0.0;
    }
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot <= 0.0 {
        return 0.0;
    }
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (t - p) * (t - p))
        .sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_predictions_have_zero_error_and_unit_r2() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean_absolute_percentage_error(&y, &y), 0.0);
        assert_eq!(root_mean_squared_error(&y, &y), 0.0);
        assert!((r_squared(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mape_matches_hand_computation() {
        let pred = vec![1.1, 1.8];
        let target = vec![1.0, 2.0];
        let expected = (0.1 + 0.1) / 2.0;
        assert!((mean_absolute_percentage_error(&pred, &target) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_targets_are_skipped_in_mape() {
        let pred = vec![5.0, 1.1];
        let target = vec![0.0, 1.0];
        assert!((mean_absolute_percentage_error(&pred, &target) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert_eq!(mean_absolute_percentage_error(&[], &[]), 0.0);
        assert_eq!(root_mean_squared_error(&[], &[]), 0.0);
        assert_eq!(r_squared(&[], &[]), 0.0);
    }

    #[test]
    fn constant_targets_give_zero_r2() {
        let pred = vec![1.0, 2.0];
        let target = vec![3.0, 3.0];
        assert_eq!(r_squared(&pred, &target), 0.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = root_mean_squared_error(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_rmse_nonnegative(values in proptest::collection::vec((0.1f64..100.0, 0.1f64..100.0), 1..50)) {
            let (pred, target): (Vec<f64>, Vec<f64>) = values.into_iter().unzip();
            prop_assert!(root_mean_squared_error(&pred, &target) >= 0.0);
            prop_assert!(mean_absolute_percentage_error(&pred, &target) >= 0.0);
            prop_assert!(r_squared(&pred, &target) <= 1.0 + 1e-12);
        }
    }
}
