//! The JSON wire protocol of the mapping service.
//!
//! `mnc_runtime`'s request pipeline serves mapping queries in-process;
//! this crate defines how the same queries travel over a byte stream so a
//! remote client and [`MappingService::submit`](mnc_runtime::MappingService)
//! return bit-identical answers:
//!
//! * [`WireRequest`] / [`WireResponse`] — versioned envelopes around a
//!   [`WireBody`] command and a [`WireOutcome`] result. The payload types
//!   are the runtime's own serde-derived `MappingRequest` /
//!   `MappingResponse` / `RequestStats` / `BatchStats` /
//!   `PipelineStats`, so nothing is re-modelled (or silently diverges)
//!   at the protocol boundary.
//! * [`WireError`] — the structured error every failure path maps to:
//!   malformed JSON, unsupported protocol versions, unknown presets,
//!   invalid or over-budget requests, and internal failures each carry an
//!   [`ErrorCode`] plus a human-readable message. A conforming server
//!   never answers a well-framed message with a closed connection.
//! * [`frame`] — length-prefixed framing (`<decimal byte length>\n<json>`)
//!   over any `Read`/`Write` pair, so message boundaries survive partial
//!   reads and malformed payloads without ambiguity.
//!
//! The protocol is transport-agnostic; `mnc-server` drives it over
//! blocking TCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;

use mnc_runtime::{
    BatchConfig, BatchStats, CacheStats, LatencySummary, MappingRequest, MappingResponse,
    MetricsSnapshot, PipelineStats, RuntimeError,
};
use serde::{Deserialize, Serialize};

/// Current wire protocol version. A server answers a mismatched version
/// with [`ErrorCode::UnsupportedVersion`] instead of guessing at field
/// semantics.
pub const PROTOCOL_VERSION: u32 = 1;

/// One request envelope: protocol version, a client-chosen correlation id
/// (echoed verbatim in the response) and the command body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRequest {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// Client-chosen correlation id, echoed in the response. A response
    /// the server could not correlate (e.g. malformed JSON) carries id 0.
    pub id: u64,
    /// The command.
    pub body: WireBody,
}

impl WireRequest {
    /// An id-tagged request at the current protocol version.
    pub fn new(id: u64, body: WireBody) -> Self {
        WireRequest {
            version: PROTOCOL_VERSION,
            id,
            body,
        }
    }
}

/// The commands a wire client can issue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireBody {
    /// Liveness probe; answered with [`WirePayload::Pong`].
    Ping,
    /// List the registered model presets.
    ListModels,
    /// List the registered platform presets.
    ListPlatforms,
    /// Answer one mapping request with its Pareto front. Boxed so the
    /// envelope enum stays small — `MappingRequest` dominates every
    /// other variant; the JSON wire shape is unchanged.
    Submit(Box<MappingRequest>),
    /// Answer a batch through the coalescing scheduler.
    SubmitBatch(WireBatch),
    /// Snapshot the service counters (cache, pipeline stages, archive).
    Stats,
    /// Snapshot the full telemetry registry: latency histograms with
    /// quantile digests, counters, gauges and a Prometheus text
    /// rendering; answered with [`WirePayload::Metrics`].
    Metrics,
    /// Persist the elite archive to the server's archive file (requires
    /// the server to run with `--archive-dir`).
    Persist,
    /// Stop accepting connections. Shutdown does *not* persist the
    /// archive implicitly — issue [`WireBody::Persist`] first to keep
    /// warm-start knowledge across the restart.
    Shutdown,
}

/// A batched submission: the requests plus the batch thread budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBatch {
    /// The mapping requests, answered in order.
    pub requests: Vec<MappingRequest>,
    /// Scheduler thread budget (defaults split the machine's cores).
    pub config: BatchConfig,
}

/// One response envelope, correlated to its request by `id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireResponse {
    /// Protocol version of the answering server.
    pub version: u32,
    /// The request's correlation id (0 when the request could not be
    /// decoded far enough to learn it).
    pub id: u64,
    /// The result.
    pub outcome: WireOutcome,
}

impl WireResponse {
    /// A success response at the current protocol version.
    pub fn ok(id: u64, payload: WirePayload) -> Self {
        WireResponse {
            version: PROTOCOL_VERSION,
            id,
            outcome: WireOutcome::payload(payload),
        }
    }

    /// An error response at the current protocol version.
    pub fn err(id: u64, error: WireError) -> Self {
        WireResponse {
            version: PROTOCOL_VERSION,
            id,
            outcome: WireOutcome::Err(error),
        }
    }
}

/// A response's result: payload or structured error. (The vendored serde
/// has no `Result` impl, and a named enum keeps the JSON self-describing:
/// `{"Ok": ...}` / `{"Err": ...}`. The payload is boxed — it dwarfs the
/// error arm, and serde sees through the `Box`, so the JSON is
/// unaffected.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireOutcome {
    /// The command succeeded.
    Ok(Box<WirePayload>),
    /// The command failed.
    Err(WireError),
}

impl WireOutcome {
    /// Wraps a payload.
    pub fn payload(payload: WirePayload) -> Self {
        WireOutcome::Ok(Box::new(payload))
    }

    /// Converts into a standard `Result`.
    pub fn into_result(self) -> Result<WirePayload, WireError> {
        match self {
            WireOutcome::Ok(payload) => Ok(*payload),
            WireOutcome::Err(error) => Err(error),
        }
    }
}

/// Per-request result inside a batch response (requests in a batch fail
/// independently; the response arm is boxed like [`WireOutcome`]'s).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireResult {
    /// The request was answered.
    Ok(Box<MappingResponse>),
    /// The request failed.
    Err(WireError),
}

impl WireResult {
    /// Wraps a response.
    pub fn response(response: MappingResponse) -> Self {
        WireResult::Ok(Box::new(response))
    }

    /// Converts into a standard `Result`.
    pub fn into_result(self) -> Result<MappingResponse, WireError> {
        match self {
            WireResult::Ok(response) => Ok(*response),
            WireResult::Err(error) => Err(error),
        }
    }
}

/// The payload of a successful [`WireResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WirePayload {
    /// Answer to [`WireBody::Ping`].
    Pong,
    /// Registered model preset names.
    Models(Vec<String>),
    /// Registered platform preset names.
    Platforms(Vec<String>),
    /// The Pareto front for one [`WireBody::Submit`].
    Front(MappingResponse),
    /// The per-request outcomes of one [`WireBody::SubmitBatch`].
    Batch(WireBatchReport),
    /// Service counters for [`WireBody::Stats`].
    Stats(ServiceStats),
    /// Telemetry snapshot for [`WireBody::Metrics`].
    Metrics(MetricsReport),
    /// The archive was persisted.
    Persisted(PersistReport),
    /// The server acknowledged [`WireBody::Shutdown`] and will stop.
    ShuttingDown,
}

/// A batch answer: per-request results in request order plus the batch
/// accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireBatchReport {
    /// One result per submitted request, in submission order (coalesced
    /// duplicates carry clones of their group leader's response).
    pub responses: Vec<WireResult>,
    /// Input positions of the coalesced group leaders, in group order.
    pub leader_positions: Vec<usize>,
    /// Batch-level accounting. `requests` counts every submitted request
    /// (matching `responses.len()`); members rejected by the server's
    /// budget caps ran no search, so they appear in neither
    /// `unique_requests` nor `coalesced_requests`.
    pub stats: BatchStats,
}

/// Service-lifetime counters: the evaluation cache, the per-stage
/// pipeline counters and the warm-start archive size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Evaluation-cache counters.
    pub cache: CacheStats,
    /// Per-stage request-pipeline counters.
    pub pipeline: PipelineStats,
    /// Elite genomes currently archived for warm starts.
    pub archive_genomes: usize,
}

/// The full telemetry snapshot for [`WireBody::Metrics`]: the raw
/// registry (every counter, gauge and histogram), pre-digested latency
/// summaries, and the same snapshot rendered as Prometheus text so
/// scrape-style consumers need no JSON handling at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Every registered metric, in stable (sorted) order.
    pub metrics: MetricsSnapshot,
    /// Per-pipeline-stage latency digests, in stage order.
    pub stage_latency: Vec<LatencySummary>,
    /// End-to-end request latency digest.
    pub request_latency: LatencySummary,
    /// The snapshot rendered in Prometheus text exposition format.
    pub prometheus: String,
}

/// Acknowledgement of a successful [`WireBody::Persist`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistReport {
    /// The snapshot file written.
    pub path: String,
    /// Elite genomes it holds.
    pub genomes: usize,
}

/// Machine-readable failure class of a [`WireError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The frame held no decodable [`WireRequest`] (malformed JSON or a
    /// shape mismatch).
    MalformedRequest,
    /// The request's protocol version is not served by this server.
    UnsupportedVersion,
    /// The named model preset is not registered.
    UnknownModel,
    /// The named platform preset is not registered.
    UnknownPlatform,
    /// A request parameter is invalid (zero budget, bad rates, ...).
    InvalidRequest,
    /// The request exceeds the server's configured budget limits.
    OverBudget,
    /// The server shed the request under load (admission control:
    /// connection cap, queue bound or per-connection in-flight cap).
    /// Transient by construction — the client should back off and retry.
    Overloaded,
    /// The request's deadline expired before its search could start
    /// (e.g. while queued for a worker); no search ran. A deadline that
    /// expires mid-search answers successfully with a partial front
    /// (`RequestStats::partial`) instead of this error.
    DeadlineExceeded,
    /// The requesting tenant's evaluation token bucket is empty. The
    /// error's `retry_after_ms` says when the bucket refills enough to
    /// admit one more request. Transient by construction — the server
    /// answers it on a healthy connection, never by hanging up.
    BudgetExhausted,
    /// Archive persistence failed (or no archive file is configured).
    Persistence,
    /// An internal failure: the request was well-formed but the service
    /// could not answer it.
    Internal,
}

/// A structured wire-level error: every failure a conforming server can
/// produce, including malformed input, maps to one of these — never to a
/// silently closed connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// The failure class.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// For transient refusals ([`ErrorCode::BudgetExhausted`]): how long
    /// the client should wait before retrying, in milliseconds. `None`
    /// for every other code.
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// An error with the given code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// A malformed-request error.
    pub fn malformed(message: impl Into<String>) -> Self {
        WireError::new(ErrorCode::MalformedRequest, message)
    }

    /// An unsupported-version error naming both versions.
    pub fn unsupported_version(requested: u32) -> Self {
        WireError::new(
            ErrorCode::UnsupportedVersion,
            format!("protocol version {requested} is not served (this server speaks {PROTOCOL_VERSION})"),
        )
    }

    /// An over-budget error.
    pub fn over_budget(message: impl Into<String>) -> Self {
        WireError::new(ErrorCode::OverBudget, message)
    }

    /// A load-shedding error (admission control refused the request).
    pub fn overloaded(message: impl Into<String>) -> Self {
        WireError::new(ErrorCode::Overloaded, message)
    }

    /// A budget-exhaustion refusal carrying the refill hint.
    pub fn budget_exhausted(message: impl Into<String>, retry_after_ms: u64) -> Self {
        let mut error = WireError::new(ErrorCode::BudgetExhausted, message);
        error.retry_after_ms = Some(retry_after_ms);
        error
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

impl From<&RuntimeError> for WireError {
    fn from(error: &RuntimeError) -> Self {
        let code = match error {
            RuntimeError::UnknownModel { .. } => ErrorCode::UnknownModel,
            RuntimeError::UnknownPlatform { .. } => ErrorCode::UnknownPlatform,
            RuntimeError::InvalidRequest { .. } => ErrorCode::InvalidRequest,
            RuntimeError::DeadlineExceeded { .. } => ErrorCode::DeadlineExceeded,
            RuntimeError::BudgetExhausted { .. } => ErrorCode::BudgetExhausted,
            RuntimeError::Persistence { .. } => ErrorCode::Persistence,
            RuntimeError::Mpsoc(_)
            | RuntimeError::Core(_)
            | RuntimeError::Optim(_)
            | RuntimeError::Predictor(_) => ErrorCode::Internal,
        };
        let mut wire = WireError::new(code, error.to_string());
        if let RuntimeError::BudgetExhausted { retry_after_ms, .. } = error {
            wire.retry_after_ms = Some(*retry_after_ms);
        }
        wire
    }
}

impl From<RuntimeError> for WireError {
    fn from(error: RuntimeError) -> Self {
        WireError::from(&error)
    }
}

/// Encodes a request envelope as compact JSON.
///
/// # Errors
///
/// Returns an error when the value cannot be rendered (non-finite float).
pub fn encode_request(request: &WireRequest) -> Result<String, serde_json::Error> {
    serde_json::to_string(request)
}

/// Decodes a request envelope from JSON.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch (mapped to
/// [`ErrorCode::MalformedRequest`] by servers).
pub fn decode_request(text: &str) -> Result<WireRequest, serde_json::Error> {
    serde_json::from_str(text)
}

/// Encodes a response envelope as compact JSON.
///
/// # Errors
///
/// Returns an error when the value cannot be rendered (non-finite float).
pub fn encode_response(response: &WireResponse) -> Result<String, serde_json::Error> {
    serde_json::to_string(response)
}

/// Decodes a response envelope from JSON.
///
/// # Errors
///
/// Returns an error for malformed JSON or a shape mismatch.
pub fn decode_response(text: &str) -> Result<WireResponse, serde_json::Error> {
    serde_json::from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_envelopes_round_trip() {
        let request = WireRequest::new(
            7,
            WireBody::Submit(Box::new(
                MappingRequest::new("tiny_cnn_cifar10", "dual_test")
                    .validation_samples(300)
                    .generations(2)
                    .population_size(8)
                    .seed(u64::MAX - 1)
                    .tenant("acme")
                    .priority(2),
            )),
        );
        let back = decode_request(&encode_request(&request).unwrap()).unwrap();
        assert_eq!(request, back);

        let batch = WireRequest::new(
            8,
            WireBody::SubmitBatch(WireBatch {
                requests: vec![MappingRequest::new("a", "b")],
                config: BatchConfig::new().max_concurrent(2),
            }),
        );
        let back = decode_request(&encode_request(&batch).unwrap()).unwrap();
        assert_eq!(batch, back);

        for body in [
            WireBody::Ping,
            WireBody::ListModels,
            WireBody::ListPlatforms,
            WireBody::Stats,
            WireBody::Metrics,
            WireBody::Persist,
            WireBody::Shutdown,
        ] {
            let request = WireRequest::new(1, body);
            assert_eq!(
                decode_request(&encode_request(&request).unwrap()).unwrap(),
                request
            );
        }
    }

    #[test]
    fn error_responses_round_trip_with_codes() {
        for (code, message) in [
            (ErrorCode::MalformedRequest, "bad json"),
            (ErrorCode::UnsupportedVersion, "v99"),
            (ErrorCode::UnknownModel, "resnet"),
            (ErrorCode::OverBudget, "too many evaluations"),
            (ErrorCode::Internal, "boom"),
        ] {
            let response = WireResponse::err(3, WireError::new(code, message));
            let back = decode_response(&encode_response(&response).unwrap()).unwrap();
            assert_eq!(response, back);
            match back.outcome {
                WireOutcome::Err(error) => {
                    assert_eq!(error.code, code);
                    assert_eq!(error.retry_after_ms, None);
                }
                WireOutcome::Ok(_) => panic!("error outcome expected"),
            }
        }
    }

    #[test]
    fn budget_exhaustion_round_trips_with_its_retry_hint() {
        let response = WireResponse::err(4, WireError::budget_exhausted("acme is dry", 250));
        let back = decode_response(&encode_response(&response).unwrap()).unwrap();
        assert_eq!(response, back);
        match back.outcome {
            WireOutcome::Err(error) => {
                assert_eq!(error.code, ErrorCode::BudgetExhausted);
                assert_eq!(error.retry_after_ms, Some(250));
            }
            WireOutcome::Ok(_) => panic!("error outcome expected"),
        }
    }

    #[test]
    fn runtime_errors_map_to_wire_codes() {
        let unknown = RuntimeError::UnknownModel {
            name: "resnet".to_string(),
            available: "vgg".to_string(),
        };
        assert_eq!(WireError::from(&unknown).code, ErrorCode::UnknownModel);
        let invalid = RuntimeError::InvalidRequest {
            reason: "zero".to_string(),
        };
        assert_eq!(WireError::from(invalid).code, ErrorCode::InvalidRequest);
        let persistence = RuntimeError::Persistence {
            path: "/tmp/a".to_string(),
            reason: "denied".to_string(),
        };
        assert_eq!(WireError::from(persistence).code, ErrorCode::Persistence);
        let deadline = RuntimeError::DeadlineExceeded { deadline_ms: 50 };
        assert_eq!(WireError::from(&deadline).code, ErrorCode::DeadlineExceeded);
        let budget = RuntimeError::BudgetExhausted {
            tenant: "acme".to_string(),
            retry_after_ms: 120,
        };
        let wire = WireError::from(&budget);
        assert_eq!(wire.code, ErrorCode::BudgetExhausted);
        assert_eq!(wire.retry_after_ms, Some(120));
        assert!(wire.message.contains("acme"));
    }

    #[test]
    fn malformed_json_fails_to_decode() {
        assert!(decode_request("{\"version\":1,").is_err());
        assert!(decode_request("not json at all").is_err());
        assert!(decode_request("{\"version\":1,\"id\":2}").is_err());
    }
}
