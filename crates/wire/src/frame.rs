//! Length-prefixed message framing.
//!
//! Every message travels as an ASCII decimal byte length, a newline, and
//! exactly that many payload bytes:
//!
//! ```text
//! 17\n{"version":1,...}
//! ```
//!
//! The prefix makes message boundaries explicit on a byte stream: a
//! malformed JSON payload still ends where its header said, so the
//! server can answer it with a structured error and keep the connection
//! usable. Only a corrupt *header* (non-digits, overlong, or a length
//! beyond the cap) loses synchronisation — that is the one case a peer
//! must close after, and [`FrameError::is_resynchronizable`] tells the
//! two apart.

use std::io::{BufRead, Write};

/// Default cap on one frame's payload. A Pareto-front response for the
/// largest presets is well under a megabyte; the cap only exists so a
/// corrupt or hostile header cannot make the reader allocate gigabytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Maximum header length: enough digits for any permitted frame size
/// plus the newline.
const MAX_HEADER_BYTES: usize = 20;

/// Framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes a truncated payload).
    Io(std::io::Error),
    /// The length header was not a decimal number terminated by `\n`.
    BadHeader(String),
    /// The header announced a payload beyond the reader's cap.
    TooLarge {
        /// Announced payload size.
        announced: usize,
        /// The reader's cap.
        max: usize,
    },
    /// The payload was not valid UTF-8.
    NotUtf8,
}

impl FrameError {
    /// Whether the connection is still synchronised after this error.
    /// `true` for payload-level failures (the reader consumed exactly the
    /// announced bytes); `false` for header corruption, after which the
    /// stream position is meaningless and the connection must close.
    pub fn is_resynchronizable(&self) -> bool {
        matches!(self, FrameError::NotUtf8)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::BadHeader(header) => {
                write!(f, "malformed frame header {header:?}")
            }
            FrameError::TooLarge { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds the {max}-byte cap")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not valid utf-8"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// Returns an error when the underlying writer fails.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> std::io::Result<()> {
    // One write per frame: splitting header and payload across two
    // writes on an unbuffered socket interacts with Nagle + delayed ACK
    // and can stall the payload segment for tens of milliseconds.
    writer.write_all(format!("{}\n{}", payload.len(), payload).as_bytes())?;
    writer.flush()
}

/// Reads one frame's payload with the default size cap.
///
/// # Errors
///
/// See [`read_frame_with_cap`].
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>, FrameError> {
    read_frame_with_cap(reader, DEFAULT_MAX_FRAME_BYTES)
}

/// Reads one frame's payload, returning `Ok(None)` on a clean end of
/// stream (EOF before the first header byte).
///
/// # Errors
///
/// * [`FrameError::BadHeader`] — the header was not `<digits>\n` (or the
///   stream ended mid-header);
/// * [`FrameError::TooLarge`] — the announced length exceeds `max_bytes`;
/// * [`FrameError::NotUtf8`] — the payload bytes are not UTF-8 (the
///   frame was still fully consumed, so the stream stays synchronised);
/// * [`FrameError::Io`] — the stream failed or ended mid-payload.
pub fn read_frame_with_cap(
    reader: &mut impl BufRead,
    max_bytes: usize,
) -> Result<Option<String>, FrameError> {
    let mut header = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if header.is_empty() {
                    return Ok(None);
                }
                return Err(FrameError::BadHeader(
                    String::from_utf8_lossy(&header).into_owned(),
                ));
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
        if byte[0] == b'\n' {
            break;
        }
        header.push(byte[0]);
        if header.len() > MAX_HEADER_BYTES {
            return Err(FrameError::BadHeader(
                String::from_utf8_lossy(&header).into_owned(),
            ));
        }
    }
    let text = std::str::from_utf8(&header)
        .map_err(|_| FrameError::BadHeader(String::from_utf8_lossy(&header).into_owned()))?;
    let length: usize = text
        .parse()
        .map_err(|_| FrameError::BadHeader(text.to_string()))?;
    if length > max_bytes {
        return Err(FrameError::TooLarge {
            announced: length,
            max: max_bytes,
        });
    }
    let mut payload = vec![0u8; length];
    reader.read_exact(&mut payload)?;
    match String::from_utf8(payload) {
        Ok(text) => Ok(Some(text)),
        Err(_) => Err(FrameError::NotUtf8),
    }
}

/// An incremental, push-based frame decoder for non-blocking readers.
///
/// The blocking [`read_frame`] pulls bytes until a frame completes — a
/// reactor can't do that: a socket hands over whatever bytes are ready
/// (often a partial header or payload) and the loop must move on to
/// other connections. `FrameDecoder` inverts the flow: feed it whatever
/// arrived with [`FrameDecoder::extend`], then drain complete frames
/// with [`FrameDecoder::next_frame`]. Byte-at-a-time delivery, frames
/// split at any offset, and several frames arriving in one read all
/// decode identically to the blocking reader (unit-tested against it).
///
/// Error semantics mirror [`read_frame_with_cap`]: a non-UTF-8 payload
/// consumes the frame and stays synchronised; a corrupt header poisons
/// the decoder (every later call returns the error again) because the
/// stream position is meaningless after it.
#[derive(Debug)]
pub struct FrameDecoder {
    max_bytes: usize,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames (drained
    /// lazily, so hot loops don't memmove per frame).
    consumed: usize,
    poisoned: Option<String>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder with the default frame cap.
    #[must_use]
    pub fn new() -> Self {
        FrameDecoder::with_cap(DEFAULT_MAX_FRAME_BYTES)
    }

    /// A decoder capping frames at `max_bytes` payload bytes.
    #[must_use]
    pub fn with_cap(max_bytes: usize) -> Self {
        FrameDecoder {
            max_bytes,
            buf: Vec::new(),
            consumed: 0,
            poisoned: None,
        }
    }

    /// Feeds freshly read bytes into the decoder.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pops the next complete frame, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// * [`FrameError::BadHeader`] / [`FrameError::TooLarge`] — header
    ///   corruption; the decoder stays poisoned and the connection must
    ///   close;
    /// * [`FrameError::NotUtf8`] — the payload bytes are not UTF-8; the
    ///   frame was consumed and decoding can continue.
    pub fn next_frame(&mut self) -> Result<Option<String>, FrameError> {
        if let Some(header) = &self.poisoned {
            return Err(FrameError::BadHeader(header.clone()));
        }
        let pending = &self.buf[self.consumed..];
        let Some(newline) = pending
            .iter()
            .take(MAX_HEADER_BYTES + 1)
            .position(|&b| b == b'\n')
        else {
            if pending.len() > MAX_HEADER_BYTES {
                let header = pending[..=MAX_HEADER_BYTES].to_vec();
                return Err(self.poison(&header));
            }
            return Ok(None);
        };
        let header = pending[..newline].to_vec();
        let Some(length) = std::str::from_utf8(&header)
            .ok()
            .and_then(|text| text.parse::<usize>().ok())
        else {
            return Err(self.poison(&header));
        };
        if length > self.max_bytes {
            let max = self.max_bytes;
            self.poisoned = Some(format!("{length}"));
            return Err(FrameError::TooLarge {
                announced: length,
                max,
            });
        }
        if pending.len() < newline + 1 + length {
            return Ok(None);
        }
        let payload = pending[newline + 1..newline + 1 + length].to_vec();
        self.consumed += newline + 1 + length;
        match String::from_utf8(payload) {
            Ok(text) => Ok(Some(text)),
            // The frame was fully consumed, so the stream stays
            // synchronised — same contract as the blocking reader.
            Err(_) => Err(FrameError::NotUtf8),
        }
    }

    fn poison(&mut self, header: &[u8]) -> FrameError {
        let text = String::from_utf8_lossy(header).into_owned();
        self.poisoned = Some(text.clone());
        FrameError::BadHeader(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &str) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, payload).unwrap();
        bytes
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut bytes = framed("hello");
        bytes.extend(framed(""));
        bytes.extend(framed("{\"k\": \"v\\n\"}"));
        let mut reader = Cursor::new(bytes);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "hello");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "");
        assert_eq!(
            read_frame(&mut reader).unwrap().unwrap(),
            "{\"k\": \"v\\n\"}"
        );
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        for bad in [
            "abc\nxxx",
            "12 34\npayload",
            "\npayload",
            "999999999999999999999\n",
        ] {
            let mut reader = Cursor::new(bad.as_bytes().to_vec());
            let error = read_frame(&mut reader).unwrap_err();
            assert!(
                matches!(error, FrameError::BadHeader(_)),
                "{bad:?} gave {error:?}"
            );
            assert!(!error.is_resynchronizable());
        }
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut reader = Cursor::new(b"1000\nxy".to_vec());
        let error = read_frame_with_cap(&mut reader, 16).unwrap_err();
        assert!(matches!(
            error,
            FrameError::TooLarge {
                announced: 1000,
                max: 16
            }
        ));
    }

    #[test]
    fn truncated_payload_is_an_io_error() {
        let mut reader = Cursor::new(b"10\nshort".to_vec());
        assert!(matches!(
            read_frame(&mut reader).unwrap_err(),
            FrameError::Io(_)
        ));
    }

    /// A reader that delivers one byte per `read` call and injects an
    /// `Interrupted` error before every byte — the worst legal behaviour
    /// of a socket under signal delivery.
    struct ChunkedReader {
        bytes: Vec<u8>,
        position: usize,
        interrupt_next: bool,
    }

    impl ChunkedReader {
        fn new(bytes: Vec<u8>) -> Self {
            ChunkedReader {
                bytes,
                position: 0,
                interrupt_next: true,
            }
        }
    }

    impl std::io::Read for ChunkedReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.interrupt_next {
                self.interrupt_next = false;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "signal",
                ));
            }
            self.interrupt_next = true;
            if self.position >= self.bytes.len() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.position];
            self.position += 1;
            Ok(1)
        }
    }

    #[test]
    fn blocking_reader_survives_one_byte_reads_and_interrupts() {
        // The satellite regression: partial reads and Interrupted must
        // retry, not error. BufReader's internal `read` can legally
        // return one byte at a time; Interrupted arrives on signals.
        let mut bytes = framed("hello");
        bytes.extend(framed("{\"key\": \"value\"}"));
        let mut reader = std::io::BufReader::new(ChunkedReader::new(bytes));
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "hello");
        assert_eq!(
            read_frame(&mut reader).unwrap().unwrap(),
            "{\"key\": \"value\"}"
        );
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn decoder_matches_blocking_reader_byte_at_a_time() {
        let mut bytes = framed("hello");
        bytes.extend(framed(""));
        bytes.extend(framed("{\"k\": \"v\\n\"}"));
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for byte in &bytes {
            decoder.extend(std::slice::from_ref(byte));
            while let Some(frame) = decoder.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames, ["hello", "", "{\"k\": \"v\\n\"}"]);
        assert_eq!(decoder.buffered(), 0);
    }

    #[test]
    fn decoder_pops_multiple_frames_from_one_chunk() {
        let mut bytes = framed("one");
        bytes.extend(framed("two"));
        // And a trailing partial frame.
        bytes.extend(b"5\nthr");
        let mut decoder = FrameDecoder::new();
        decoder.extend(&bytes);
        assert_eq!(decoder.next_frame().unwrap().unwrap(), "one");
        assert_eq!(decoder.next_frame().unwrap().unwrap(), "two");
        assert_eq!(decoder.next_frame().unwrap(), None);
        decoder.extend(b"ee");
        assert_eq!(decoder.next_frame().unwrap().unwrap(), "three");
    }

    #[test]
    fn decoder_poisons_on_header_corruption() {
        let mut decoder = FrameDecoder::new();
        decoder.extend(b"abc\nxxx");
        let error = decoder.next_frame().unwrap_err();
        assert!(matches!(error, FrameError::BadHeader(_)));
        assert!(!error.is_resynchronizable());
        // Still poisoned on the next call — the stream cannot recover.
        assert!(decoder.next_frame().is_err());

        let mut overlong = FrameDecoder::new();
        overlong.extend(b"999999999999999999999999");
        assert!(matches!(
            overlong.next_frame().unwrap_err(),
            FrameError::BadHeader(_)
        ));

        let mut capped = FrameDecoder::with_cap(16);
        capped.extend(b"1000\nxy");
        assert!(matches!(
            capped.next_frame().unwrap_err(),
            FrameError::TooLarge {
                announced: 1000,
                max: 16
            }
        ));
    }

    #[test]
    fn decoder_skips_non_utf8_payload_and_stays_synchronised() {
        let mut bytes = b"2\n".to_vec();
        bytes.extend([0xff, 0xfe]);
        bytes.extend(framed("next"));
        let mut decoder = FrameDecoder::new();
        decoder.extend(&bytes);
        let error = decoder.next_frame().unwrap_err();
        assert!(matches!(error, FrameError::NotUtf8));
        assert!(error.is_resynchronizable());
        assert_eq!(decoder.next_frame().unwrap().unwrap(), "next");
    }

    #[test]
    fn non_utf8_payload_keeps_the_stream_synchronised() {
        let mut bytes = b"2\n".to_vec();
        bytes.extend([0xff, 0xfe]);
        bytes.extend(framed("next"));
        let mut reader = Cursor::new(bytes);
        let error = read_frame(&mut reader).unwrap_err();
        assert!(matches!(error, FrameError::NotUtf8));
        assert!(error.is_resynchronizable());
        // The bad frame was fully consumed: the next one parses.
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "next");
    }
}
