//! Length-prefixed message framing.
//!
//! Every message travels as an ASCII decimal byte length, a newline, and
//! exactly that many payload bytes:
//!
//! ```text
//! 17\n{"version":1,...}
//! ```
//!
//! The prefix makes message boundaries explicit on a byte stream: a
//! malformed JSON payload still ends where its header said, so the
//! server can answer it with a structured error and keep the connection
//! usable. Only a corrupt *header* (non-digits, overlong, or a length
//! beyond the cap) loses synchronisation — that is the one case a peer
//! must close after, and [`FrameError::is_resynchronizable`] tells the
//! two apart.

use std::io::{BufRead, Write};

/// Default cap on one frame's payload. A Pareto-front response for the
/// largest presets is well under a megabyte; the cap only exists so a
/// corrupt or hostile header cannot make the reader allocate gigabytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Maximum header length: enough digits for any permitted frame size
/// plus the newline.
const MAX_HEADER_BYTES: usize = 20;

/// Framing failures.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes a truncated payload).
    Io(std::io::Error),
    /// The length header was not a decimal number terminated by `\n`.
    BadHeader(String),
    /// The header announced a payload beyond the reader's cap.
    TooLarge {
        /// Announced payload size.
        announced: usize,
        /// The reader's cap.
        max: usize,
    },
    /// The payload was not valid UTF-8.
    NotUtf8,
}

impl FrameError {
    /// Whether the connection is still synchronised after this error.
    /// `true` for payload-level failures (the reader consumed exactly the
    /// announced bytes); `false` for header corruption, after which the
    /// stream position is meaningless and the connection must close.
    pub fn is_resynchronizable(&self) -> bool {
        matches!(self, FrameError::NotUtf8)
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::BadHeader(header) => {
                write!(f, "malformed frame header {header:?}")
            }
            FrameError::TooLarge { announced, max } => {
                write!(f, "frame of {announced} bytes exceeds the {max}-byte cap")
            }
            FrameError::NotUtf8 => write!(f, "frame payload is not valid utf-8"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header + payload) and flushes.
///
/// # Errors
///
/// Returns an error when the underlying writer fails.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> std::io::Result<()> {
    writer.write_all(format!("{}\n", payload.len()).as_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Reads one frame's payload with the default size cap.
///
/// # Errors
///
/// See [`read_frame_with_cap`].
pub fn read_frame(reader: &mut impl BufRead) -> Result<Option<String>, FrameError> {
    read_frame_with_cap(reader, DEFAULT_MAX_FRAME_BYTES)
}

/// Reads one frame's payload, returning `Ok(None)` on a clean end of
/// stream (EOF before the first header byte).
///
/// # Errors
///
/// * [`FrameError::BadHeader`] — the header was not `<digits>\n` (or the
///   stream ended mid-header);
/// * [`FrameError::TooLarge`] — the announced length exceeds `max_bytes`;
/// * [`FrameError::NotUtf8`] — the payload bytes are not UTF-8 (the
///   frame was still fully consumed, so the stream stays synchronised);
/// * [`FrameError::Io`] — the stream failed or ended mid-payload.
pub fn read_frame_with_cap(
    reader: &mut impl BufRead,
    max_bytes: usize,
) -> Result<Option<String>, FrameError> {
    let mut header = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if header.is_empty() {
                    return Ok(None);
                }
                return Err(FrameError::BadHeader(
                    String::from_utf8_lossy(&header).into_owned(),
                ));
            }
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
        if byte[0] == b'\n' {
            break;
        }
        header.push(byte[0]);
        if header.len() > MAX_HEADER_BYTES {
            return Err(FrameError::BadHeader(
                String::from_utf8_lossy(&header).into_owned(),
            ));
        }
    }
    let text = std::str::from_utf8(&header)
        .map_err(|_| FrameError::BadHeader(String::from_utf8_lossy(&header).into_owned()))?;
    let length: usize = text
        .parse()
        .map_err(|_| FrameError::BadHeader(text.to_string()))?;
    if length > max_bytes {
        return Err(FrameError::TooLarge {
            announced: length,
            max: max_bytes,
        });
    }
    let mut payload = vec![0u8; length];
    reader.read_exact(&mut payload)?;
    match String::from_utf8(payload) {
        Ok(text) => Ok(Some(text)),
        Err(_) => Err(FrameError::NotUtf8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &str) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, payload).unwrap();
        bytes
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut bytes = framed("hello");
        bytes.extend(framed(""));
        bytes.extend(framed("{\"k\": \"v\\n\"}"));
        let mut reader = Cursor::new(bytes);
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "hello");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "");
        assert_eq!(
            read_frame(&mut reader).unwrap().unwrap(),
            "{\"k\": \"v\\n\"}"
        );
        assert!(read_frame(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        for bad in [
            "abc\nxxx",
            "12 34\npayload",
            "\npayload",
            "999999999999999999999\n",
        ] {
            let mut reader = Cursor::new(bad.as_bytes().to_vec());
            let error = read_frame(&mut reader).unwrap_err();
            assert!(
                matches!(error, FrameError::BadHeader(_)),
                "{bad:?} gave {error:?}"
            );
            assert!(!error.is_resynchronizable());
        }
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let mut reader = Cursor::new(b"1000\nxy".to_vec());
        let error = read_frame_with_cap(&mut reader, 16).unwrap_err();
        assert!(matches!(
            error,
            FrameError::TooLarge {
                announced: 1000,
                max: 16
            }
        ));
    }

    #[test]
    fn truncated_payload_is_an_io_error() {
        let mut reader = Cursor::new(b"10\nshort".to_vec());
        assert!(matches!(
            read_frame(&mut reader).unwrap_err(),
            FrameError::Io(_)
        ));
    }

    #[test]
    fn non_utf8_payload_keeps_the_stream_synchronised() {
        let mut bytes = b"2\n".to_vec();
        bytes.extend([0xff, 0xfe]);
        bytes.extend(framed("next"));
        let mut reader = Cursor::new(bytes);
        let error = read_frame(&mut reader).unwrap_err();
        assert!(matches!(error, FrameError::NotUtf8));
        assert!(error.is_resynchronizable());
        // The bad frame was fully consumed: the next one parses.
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), "next");
    }
}
