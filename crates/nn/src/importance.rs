//! Channel-importance estimation and reordering (paper §V-D).
//!
//! Before a candidate configuration is evaluated, the width units of every
//! layer are reordered by decreasing importance so that the earliest
//! inference stages receive the most informative channels. The paper uses
//! Taylor-expansion importance scores from Molchanov et al. (CVPR 2019);
//! lacking trained weights, this crate generates *synthetic* importance
//! scores with the same qualitative property — a heavy-tailed distribution
//! where a minority of channels carries most of the mass — and provides the
//! exact ranking/cumulative-mass machinery the optimiser needs.

use crate::graph::Network;
use crate::layer::LayerId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Raw importance scores for the width units of one layer, indexed by the
/// original channel position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerImportance {
    scores: Vec<f64>,
}

impl LayerImportance {
    /// Wraps raw (non-negative) importance scores.
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty or contains a negative or non-finite
    /// value.
    pub fn new(scores: Vec<f64>) -> Self {
        assert!(!scores.is_empty(), "importance scores must not be empty");
        assert!(
            scores.iter().all(|s| s.is_finite() && *s >= 0.0),
            "importance scores must be finite and non-negative"
        );
        LayerImportance { scores }
    }

    /// Uniform importance over `n` channels (the no-information baseline).
    pub fn uniform(n: usize) -> Self {
        LayerImportance::new(vec![1.0; n.max(1)])
    }

    /// Number of width units scored.
    pub fn num_channels(&self) -> usize {
        self.scores.len()
    }

    /// Raw scores, by original channel index.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Scores normalised to sum to one.
    pub fn normalized(&self) -> Vec<f64> {
        let total: f64 = self.scores.iter().sum();
        if total <= 0.0 {
            let n = self.scores.len() as f64;
            return vec![1.0 / n; self.scores.len()];
        }
        self.scores.iter().map(|s| s / total).collect()
    }

    /// Ranking of channels by decreasing importance.
    pub fn ranking(&self) -> ChannelRanking {
        ChannelRanking::from_scores(&self.scores)
    }
}

/// A permutation of channel indices sorted by decreasing importance,
/// together with the cumulative (normalised) importance mass captured by
/// the top-`k` channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelRanking {
    order: Vec<usize>,
    /// `cumulative[k]` = normalised importance mass of the `k` most
    /// important channels; `cumulative[0] == 0`, `cumulative[n] == 1`.
    cumulative: Vec<f64>,
}

impl ChannelRanking {
    /// Builds a ranking from raw scores.
    pub fn from_scores(scores: &[f64]) -> Self {
        let n = scores.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let total: f64 = scores.iter().sum();
        let mut cumulative = Vec::with_capacity(n + 1);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for &idx in &order {
            acc += if total > 0.0 {
                scores[idx] / total
            } else {
                1.0 / n as f64
            };
            cumulative.push(acc);
        }
        // Guard against floating point drift: force the last entry to 1.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ChannelRanking { order, cumulative }
    }

    /// The identity ranking over `n` channels with uniform mass; used for
    /// the reordering ablation.
    pub fn identity(n: usize) -> Self {
        let n = n.max(1);
        ChannelRanking {
            order: (0..n).collect(),
            cumulative: (0..=n).map(|k| k as f64 / n as f64).collect(),
        }
    }

    /// Number of channels ranked.
    pub fn num_channels(&self) -> usize {
        self.order.len()
    }

    /// Channel indices in decreasing order of importance.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Normalised importance mass captured by the `k` most important
    /// channels.
    pub fn mass_of_top_k(&self, k: usize) -> f64 {
        let k = k.min(self.order.len());
        self.cumulative[k]
    }

    /// Normalised importance mass captured by the top `fraction` of
    /// channels (linear interpolation between integer counts).
    ///
    /// `fraction` is clamped to `[0, 1]`.
    pub fn mass_of_top_fraction(&self, fraction: f64) -> f64 {
        let fraction = fraction.clamp(0.0, 1.0);
        let n = self.order.len() as f64;
        let continuous = fraction * n;
        let low = continuous.floor() as usize;
        let high = (low + 1).min(self.order.len());
        let frac_within = continuous - low as f64;
        if low >= self.order.len() {
            return 1.0;
        }
        let low_mass = self.cumulative[low];
        let high_mass = self.cumulative[high];
        low_mass + (high_mass - low_mass) * frac_within
    }

    /// Gini-style concentration of the importance distribution: 0 for
    /// perfectly uniform importance, approaching 1 when a single channel
    /// carries everything. Useful to characterise how much a network can
    /// benefit from early exits.
    pub fn concentration(&self) -> f64 {
        let n = self.order.len();
        if n <= 1 {
            return 0.0;
        }
        // Area between the cumulative-mass curve and the uniform diagonal,
        // normalised to its maximum value (1/2 · (n-1)/n).
        let mut area = 0.0;
        for k in 0..=n {
            area += self.cumulative[k] - k as f64 / n as f64;
        }
        area /= n as f64 + 1.0;
        (2.0 * area * n as f64 / (n as f64 - 1.0)).clamp(0.0, 1.0)
    }
}

/// Importance scores for every partitionable layer of a network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceModel {
    per_layer: Vec<Option<LayerImportance>>,
    concentration: f64,
}

impl ImportanceModel {
    /// Synthesises heavy-tailed importance scores for every partitionable
    /// layer of `network`.
    ///
    /// `concentration` controls how unequal the scores are: `0.0` gives
    /// uniform importance (no benefit from reordering), values around
    /// `1.0–2.0` mimic the Taylor-score distributions reported for trained
    /// CNNs/ViTs (a minority of channels dominates). The generation is
    /// fully determined by `seed`.
    pub fn synthetic(network: &Network, seed: u64, concentration: f64) -> Self {
        let concentration = concentration.max(0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let per_layer = network
            .layers()
            .iter()
            .map(|layer| {
                if !layer.is_partitionable() {
                    return None;
                }
                let width = layer.width().max(1);
                let scores: Vec<f64> = (0..width)
                    .map(|_| {
                        let u: f64 = rng.random::<f64>().max(1e-12);
                        // (-ln u)^c : exponential-family scores; c = 0 gives
                        // all-equal scores, larger c concentrates the mass.
                        (-u.ln()).powf(concentration)
                    })
                    .collect();
                Some(LayerImportance::new(scores))
            })
            .collect();
        ImportanceModel {
            per_layer,
            concentration,
        }
    }

    /// Uniform importance for every partitionable layer (reordering
    /// ablation: ranking gives no advantage).
    pub fn uniform(network: &Network) -> Self {
        let per_layer = network
            .layers()
            .iter()
            .map(|layer| {
                if layer.is_partitionable() {
                    Some(LayerImportance::uniform(layer.width().max(1)))
                } else {
                    None
                }
            })
            .collect();
        ImportanceModel {
            per_layer,
            concentration: 0.0,
        }
    }

    /// The concentration parameter this model was generated with.
    pub fn concentration(&self) -> f64 {
        self.concentration
    }

    /// Importance scores of a layer, `None` for non-partitionable layers or
    /// out-of-range identifiers.
    pub fn layer(&self, id: LayerId) -> Option<&LayerImportance> {
        self.per_layer.get(id.0).and_then(|o| o.as_ref())
    }

    /// Ranking of a layer's channels, `None` for non-partitionable layers.
    pub fn ranking(&self, id: LayerId) -> Option<ChannelRanking> {
        self.layer(id).map(LayerImportance::ranking)
    }

    /// Rankings for every layer, indexed by [`LayerId`] (`None` for
    /// non-partitionable layers).
    ///
    /// Building a [`ChannelRanking`] sorts the layer's scores, so hot paths
    /// should call this once and index the returned table instead of
    /// calling [`ImportanceModel::ranking`] (or the per-call
    /// [`ImportanceModel::mass_of_top_fraction`]) repeatedly — the cached
    /// rankings produce exactly the same masses.
    pub fn rankings(&self) -> Vec<Option<ChannelRanking>> {
        self.per_layer
            .iter()
            .map(|imp| imp.as_ref().map(LayerImportance::ranking))
            .collect()
    }

    /// Importance mass captured when a stage owns the top `fraction` of the
    /// layer's channels after reordering. Non-partitionable layers return
    /// `fraction` unchanged (they carry no choice).
    pub fn mass_of_top_fraction(&self, id: LayerId, fraction: f64) -> f64 {
        match self.ranking(id) {
            Some(ranking) => ranking.mass_of_top_fraction(fraction),
            None => fraction.clamp(0.0, 1.0),
        }
    }

    /// Average importance mass captured by the top `fraction` of channels
    /// across all partitionable layers — a single scalar summarising how
    /// much of the network's "knowledge" a stage of this width holds.
    pub fn average_mass_of_top_fraction(&self, fraction: f64) -> f64 {
        let masses: Vec<f64> = self
            .per_layer
            .iter()
            .flatten()
            .map(|imp| imp.ranking().mass_of_top_fraction(fraction))
            .collect();
        if masses.is_empty() {
            fraction.clamp(0.0, 1.0)
        } else {
            masses.iter().sum::<f64>() / masses.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkBuilder;
    use crate::layer::{Layer, LayerKind};
    use crate::shape::FeatureShape;
    use proptest::prelude::*;

    fn small_net() -> Network {
        NetworkBuilder::new("small", FeatureShape::spatial(3, 16, 16))
            .layer(Layer::new(
                "conv1",
                LayerKind::ConvBlock {
                    in_channels: 3,
                    out_channels: 32,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ))
            .layer(Layer::new(
                "pool",
                LayerKind::Pool {
                    kernel: 2,
                    stride: 2,
                },
            ))
            .layer(Layer::new(
                "conv2",
                LayerKind::ConvBlock {
                    in_channels: 32,
                    out_channels: 64,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ))
            .layer(Layer::new("gap", LayerKind::GlobalPool))
            .layer(Layer::new(
                "head",
                LayerKind::Classifier {
                    in_features: 64,
                    classes: 10,
                },
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn ranking_orders_by_score() {
        let imp = LayerImportance::new(vec![0.1, 5.0, 2.0, 0.4]);
        let ranking = imp.ranking();
        assert_eq!(ranking.order(), &[1, 2, 3, 0]);
        assert!((ranking.mass_of_top_k(4) - 1.0).abs() < 1e-12);
        assert!(ranking.mass_of_top_k(1) > 0.6);
    }

    #[test]
    fn identity_ranking_is_linear() {
        let ranking = ChannelRanking::identity(10);
        assert!((ranking.mass_of_top_fraction(0.5) - 0.5).abs() < 1e-12);
        assert!((ranking.mass_of_top_fraction(0.25) - 0.25).abs() < 1e-12);
        assert_eq!(ranking.concentration(), 0.0);
    }

    #[test]
    fn cumulative_mass_is_concave_for_ranked_scores() {
        let imp = LayerImportance::new((0..64).map(|i| (-(i as f64) / 8.0).exp()).collect());
        let ranking = imp.ranking();
        // Top 25% of channels must capture strictly more than 25% of mass.
        assert!(ranking.mass_of_top_fraction(0.25) > 0.5);
        assert!(ranking.mass_of_top_fraction(1.0) > 0.999);
    }

    #[test]
    fn mass_of_top_fraction_clamps() {
        let ranking = ChannelRanking::identity(8);
        assert_eq!(ranking.mass_of_top_fraction(-0.5), 0.0);
        assert_eq!(ranking.mass_of_top_fraction(2.0), 1.0);
    }

    #[test]
    fn synthetic_model_skips_non_partitionable_layers() {
        let net = small_net();
        let model = ImportanceModel::synthetic(&net, 7, 1.5);
        assert!(model.layer(LayerId(0)).is_some());
        assert!(model.layer(LayerId(1)).is_none()); // pool
        assert!(model.layer(LayerId(3)).is_none()); // gap
        assert!(model.layer(LayerId(4)).is_none()); // classifier
        assert!(model.layer(LayerId(99)).is_none());
    }

    #[test]
    fn synthetic_model_is_deterministic_per_seed() {
        let net = small_net();
        let a = ImportanceModel::synthetic(&net, 42, 1.5);
        let b = ImportanceModel::synthetic(&net, 42, 1.5);
        let c = ImportanceModel::synthetic(&net, 43, 1.5);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn higher_concentration_gives_more_mass_to_top_channels() {
        let net = small_net();
        let flat = ImportanceModel::synthetic(&net, 1, 0.0);
        let peaked = ImportanceModel::synthetic(&net, 1, 3.0);
        let flat_mass = flat.average_mass_of_top_fraction(0.25);
        let peaked_mass = peaked.average_mass_of_top_fraction(0.25);
        assert!(
            peaked_mass > flat_mass,
            "expected {peaked_mass} > {flat_mass}"
        );
        // Concentration zero means all scores are exactly one.
        assert!((flat_mass - 0.25).abs() < 0.02);
    }

    #[test]
    fn uniform_model_matches_fraction() {
        let net = small_net();
        let model = ImportanceModel::uniform(&net);
        for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
            assert!((model.mass_of_top_fraction(LayerId(0), frac) - frac).abs() < 1e-9);
        }
    }

    #[test]
    fn non_partitionable_layers_pass_fraction_through() {
        let net = small_net();
        let model = ImportanceModel::synthetic(&net, 3, 2.0);
        assert!((model.mass_of_top_fraction(LayerId(1), 0.4) - 0.4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_scores_panic() {
        let _ = LayerImportance::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_scores_panic() {
        let _ = LayerImportance::new(vec![1.0, -0.5]);
    }

    proptest! {
        #[test]
        fn prop_cumulative_mass_monotone(scores in proptest::collection::vec(0.0f64..10.0, 1..64),
                                         f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
            let ranking = ChannelRanking::from_scores(&scores);
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(ranking.mass_of_top_fraction(lo) <= ranking.mass_of_top_fraction(hi) + 1e-9);
        }

        #[test]
        fn prop_ranked_mass_dominates_identity(scores in proptest::collection::vec(0.0f64..10.0, 2..64),
                                               frac in 0.0f64..1.0) {
            let ranking = ChannelRanking::from_scores(&scores);
            let identity = ChannelRanking::identity(scores.len());
            // Reordering by importance can never capture less mass than the
            // original order captures on average.
            prop_assert!(ranking.mass_of_top_fraction(frac) + 1e-9 >= identity.mass_of_top_fraction(frac) - 1e-9);
        }

        #[test]
        fn prop_order_is_a_permutation(scores in proptest::collection::vec(0.0f64..10.0, 1..64)) {
            let ranking = ChannelRanking::from_scores(&scores);
            let mut seen = vec![false; scores.len()];
            for &idx in ranking.order() {
                prop_assert!(!seen[idx]);
                seen[idx] = true;
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}
