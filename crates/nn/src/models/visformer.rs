//! Visformer-style vision transformer builder.
//!
//! The paper's ViT case study is Visformer (Chen et al., ICCV 2021) on
//! CIFAR-100. The original Visformer-S interleaves convolutional stages
//! with transformer stages; the builder here keeps the aspects that matter
//! to Map-and-Conquer — a convolutional stem, a patch embedding and a stack
//! of multi-head-attention + MLP blocks whose *heads* form the width
//! dimension to be partitioned — at a CIFAR-appropriate scale.

use super::ModelPreset;
use crate::graph::{Network, NetworkBuilder};
use crate::layer::{Layer, LayerKind};

/// Builds the Visformer-style network used in the paper's main evaluation.
///
/// Structure (for 32×32 inputs): a 3×3 convolutional stem, a patch-4
/// embedding to 192-dimensional tokens, seven transformer blocks with six
/// attention heads each (attention and MLP are separate width-partitionable
/// layers), global average pooling and a classifier.
pub fn visformer(preset: ModelPreset) -> Network {
    build_visformer("visformer", preset, 32, 192, 6, 7, 4)
}

/// A slimmer Visformer variant (96-dimensional tokens, four blocks) used by
/// fast tests and examples.
pub fn visformer_tiny(preset: ModelPreset) -> Network {
    build_visformer("visformer_tiny", preset, 16, 96, 4, 4, 4)
}

fn build_visformer(
    name: &str,
    preset: ModelPreset,
    stem_channels: usize,
    embed_dim: usize,
    heads: usize,
    depth: usize,
    patch: usize,
) -> Network {
    let (in_c, _, _) = preset.input;
    let mlp_hidden = embed_dim * 4;
    let mut builder = NetworkBuilder::new(name, preset.input_shape())
        .layer(Layer::new(
            "stem",
            LayerKind::ConvBlock {
                in_channels: in_c,
                out_channels: stem_channels,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        ))
        .layer(Layer::new(
            "patch_embed",
            LayerKind::PatchEmbed {
                in_channels: stem_channels,
                embed_dim,
                patch,
            },
        ));
    for block in 0..depth {
        builder = builder
            .layer(Layer::new(
                format!("block{block}_attn"),
                LayerKind::AttentionBlock { embed_dim, heads },
            ))
            .layer(Layer::new(
                format!("block{block}_mlp"),
                LayerKind::MlpBlock {
                    embed_dim,
                    hidden_dim: mlp_hidden,
                },
            ));
    }
    builder
        .layer(Layer::new("gap", LayerKind::GlobalPool))
        .layer(Layer::new(
            "head",
            LayerKind::Classifier {
                in_features: embed_dim,
                classes: preset.classes,
            },
        ))
        .build()
        .expect("visformer preset is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use crate::shape::FeatureShape;

    #[test]
    fn visformer_has_expected_structure() {
        let net = visformer(ModelPreset::cifar100());
        // stem + patch embed + 7*2 blocks + gap + head
        assert_eq!(net.num_layers(), 2 + 14 + 2);
        assert_eq!(net.output_shape(), FeatureShape::vector(100));
        assert_eq!(net.num_classes(), Some(100));
        let attn_layers = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::AttentionBlock { .. }))
            .count();
        assert_eq!(attn_layers, 7);
    }

    #[test]
    fn attention_width_is_head_count() {
        let net = visformer(ModelPreset::cifar100());
        let attn = net
            .layers()
            .iter()
            .find(|l| matches!(l.kind, LayerKind::AttentionBlock { .. }))
            .unwrap();
        assert_eq!(attn.width(), 6);
    }

    #[test]
    fn visformer_macs_are_in_plausible_range() {
        let net = visformer(ModelPreset::cifar100());
        let macs = net.total_cost().macs;
        // Hundreds of MMACs for a CIFAR-scale ViT.
        assert!(macs > 5e7, "macs = {macs}");
        assert!(macs < 5e9, "macs = {macs}");
    }

    #[test]
    fn tiny_variant_is_smaller() {
        let full = visformer(ModelPreset::cifar100());
        let tiny = visformer_tiny(ModelPreset::cifar100());
        assert!(tiny.total_cost().macs < full.total_cost().macs);
        assert!(tiny.num_layers() < full.num_layers());
    }

    #[test]
    fn builds_for_imagenet_resolution() {
        let net = visformer(ModelPreset::imagenet());
        assert_eq!(net.num_classes(), Some(1000));
        assert!(net.total_cost().macs > visformer(ModelPreset::cifar100()).total_cost().macs);
    }
}
