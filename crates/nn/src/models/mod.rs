//! Ready-made network builders for the architectures used in the paper's
//! evaluation (Visformer, VGG-19) plus smaller helpers for tests and
//! examples.

mod vgg;
mod visformer;

pub use vgg::{vgg11, vgg19};
pub use visformer::{visformer, visformer_tiny};

use crate::graph::{Network, NetworkBuilder};
use crate::layer::{Layer, LayerKind};
use crate::shape::FeatureShape;
use serde::{Deserialize, Serialize};

/// Dataset / deployment preset shared by the model builders: the input
/// resolution and the number of classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelPreset {
    /// Input image shape (channels, height, width).
    pub input: (usize, usize, usize),
    /// Number of output classes.
    pub classes: usize,
}

impl ModelPreset {
    /// CIFAR-100: 3×32×32 inputs, 100 classes — the dataset used in the
    /// paper's experiments.
    pub fn cifar100() -> Self {
        ModelPreset {
            input: (3, 32, 32),
            classes: 100,
        }
    }

    /// CIFAR-10: 3×32×32 inputs, 10 classes.
    pub fn cifar10() -> Self {
        ModelPreset {
            input: (3, 32, 32),
            classes: 10,
        }
    }

    /// ImageNet-style 3×224×224 inputs, 1000 classes.
    pub fn imagenet() -> Self {
        ModelPreset {
            input: (3, 224, 224),
            classes: 1000,
        }
    }

    /// The input shape as a [`FeatureShape`].
    pub fn input_shape(&self) -> FeatureShape {
        FeatureShape::spatial(self.input.0, self.input.1, self.input.2)
    }
}

impl Default for ModelPreset {
    fn default() -> Self {
        ModelPreset::cifar100()
    }
}

/// A deliberately tiny CNN used throughout the workspace's unit tests and
/// doc examples: two convolution blocks, a pooling layer, global pooling
/// and a classifier.
pub fn tiny_cnn(preset: ModelPreset) -> Network {
    let (in_c, _, _) = preset.input;
    NetworkBuilder::new("tiny_cnn", preset.input_shape())
        .layer(Layer::new(
            "conv1",
            LayerKind::ConvBlock {
                in_channels: in_c,
                out_channels: 16,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        ))
        .layer(Layer::new(
            "pool1",
            LayerKind::Pool {
                kernel: 2,
                stride: 2,
            },
        ))
        .layer(Layer::new(
            "conv2",
            LayerKind::ConvBlock {
                in_channels: 16,
                out_channels: 32,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        ))
        .layer(Layer::new("gap", LayerKind::GlobalPool))
        .layer(Layer::new(
            "head",
            LayerKind::Classifier {
                in_features: 32,
                classes: preset.classes,
            },
        ))
        .build()
        .expect("tiny_cnn preset is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shapes() {
        assert_eq!(
            ModelPreset::cifar100().input_shape(),
            FeatureShape::spatial(3, 32, 32)
        );
        assert_eq!(ModelPreset::cifar100().classes, 100);
        assert_eq!(ModelPreset::cifar10().classes, 10);
        assert_eq!(ModelPreset::imagenet().input, (3, 224, 224));
        assert_eq!(ModelPreset::default(), ModelPreset::cifar100());
    }

    #[test]
    fn tiny_cnn_builds_for_all_presets() {
        for preset in [
            ModelPreset::cifar100(),
            ModelPreset::cifar10(),
            ModelPreset::imagenet(),
        ] {
            let net = tiny_cnn(preset);
            assert_eq!(net.num_classes(), Some(preset.classes));
        }
    }
}
