//! VGG-style convolutional network builders.
//!
//! VGG-19 (Simonyan & Zisserman, ICLR 2015) is the paper's CNN case study:
//! sixteen 3×3 convolution blocks in five stages separated by max pooling,
//! followed by two fully-connected layers and a classifier. The CIFAR
//! variant keeps the standard channel plan (64-64, 128-128, 256×4, 512×4,
//! 512×4) with 32×32 inputs.

use super::ModelPreset;
use crate::graph::{Network, NetworkBuilder};
use crate::layer::{Layer, LayerKind};

/// Builds VGG-19 for the given preset.
pub fn vgg19(preset: ModelPreset) -> Network {
    build_vgg(
        "vgg19",
        preset,
        &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256, 256],
            &[512, 512, 512, 512],
            &[512, 512, 512, 512],
        ],
    )
}

/// Builds the smaller VGG-11 variant (useful for fast tests and ablations).
pub fn vgg11(preset: ModelPreset) -> Network {
    build_vgg(
        "vgg11",
        preset,
        &[&[64], &[128], &[256, 256], &[512, 512], &[512, 512]],
    )
}

fn build_vgg(name: &str, preset: ModelPreset, stages: &[&[usize]]) -> Network {
    let (mut in_c, mut size, _) = preset.input;
    let mut builder = NetworkBuilder::new(name, preset.input_shape());
    for (stage_idx, stage) in stages.iter().enumerate() {
        for (conv_idx, &out_c) in stage.iter().enumerate() {
            builder = builder.layer(Layer::new(
                format!("conv{}_{}", stage_idx + 1, conv_idx + 1),
                LayerKind::ConvBlock {
                    in_channels: in_c,
                    out_channels: out_c,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ));
            in_c = out_c;
        }
        // Only pool while the spatial size allows it; for 32x32 inputs the
        // five standard pools bring the map down to 1x1.
        if size >= 2 {
            builder = builder.layer(Layer::new(
                format!("pool{}", stage_idx + 1),
                LayerKind::Pool {
                    kernel: 2,
                    stride: 2,
                },
            ));
            size /= 2;
        }
    }
    let last_channels = in_c;
    builder
        .layer(Layer::new("gap", LayerKind::GlobalPool))
        .layer(Layer::new(
            "fc1",
            LayerKind::Dense {
                in_features: last_channels,
                out_features: 4096,
            },
        ))
        .layer(Layer::new(
            "fc2",
            LayerKind::Dense {
                in_features: 4096,
                out_features: 4096,
            },
        ))
        .layer(Layer::new(
            "head",
            LayerKind::Classifier {
                in_features: 4096,
                classes: preset.classes,
            },
        ))
        .build()
        .expect("vgg preset is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;
    use crate::shape::FeatureShape;

    #[test]
    fn vgg19_has_sixteen_conv_blocks() {
        let net = vgg19(ModelPreset::cifar100());
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::ConvBlock { .. }))
            .count();
        assert_eq!(convs, 16);
        assert_eq!(net.output_shape(), FeatureShape::vector(100));
    }

    #[test]
    fn vgg19_is_much_heavier_than_vgg11() {
        let big = vgg19(ModelPreset::cifar100()).total_cost();
        let small = vgg11(ModelPreset::cifar100()).total_cost();
        assert!(big.macs > small.macs);
        assert!(big.weight_bytes > small.weight_bytes);
    }

    #[test]
    fn vgg19_macs_in_plausible_cifar_range() {
        let macs = vgg19(ModelPreset::cifar100()).total_cost().macs;
        // CIFAR VGG-19 is ~400 MMACs; allow a generous band.
        assert!(macs > 1e8, "macs = {macs}");
        assert!(macs < 2e9, "macs = {macs}");
    }

    #[test]
    fn vgg19_has_heavier_weights_than_visformer() {
        // The paper attributes VGG-19's poor baseline efficiency to its
        // parameter count; the cost model must reflect that.
        let vgg = vgg19(ModelPreset::cifar100()).total_cost();
        let vis = super::super::visformer(ModelPreset::cifar100()).total_cost();
        assert!(vgg.weight_bytes > vis.weight_bytes);
    }

    #[test]
    fn spatial_size_never_collapses() {
        // Build succeeds (pools guarded); final spatial map is 1x1 before GAP.
        let net = vgg19(ModelPreset::cifar100());
        let gap_idx = net
            .iter()
            .find(|(_, l)| matches!(l.kind, LayerKind::GlobalPool))
            .map(|(id, _)| id)
            .unwrap();
        let before_gap = net.input_shape_of(gap_idx).unwrap();
        assert_eq!(before_gap, FeatureShape::spatial(512, 1, 1));
    }

    #[test]
    fn imagenet_resolution_builds_and_is_heavier() {
        let cifar = vgg19(ModelPreset::cifar100()).total_cost();
        let imagenet = vgg19(ModelPreset::imagenet()).total_cost();
        assert!(imagenet.macs > cifar.macs * 10.0);
    }
}
