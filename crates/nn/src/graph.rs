//! Network container and builder.
//!
//! A [`Network`] is the sequence `NN = L_n ∘ … ∘ L_1` of paper eq. 1
//! together with the input shape, with all intermediate shapes resolved and
//! validated at construction time.

use crate::cost::SliceCost;
use crate::error::NetworkError;
use crate::layer::{Layer, LayerId, LayerKind};
use crate::shape::FeatureShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated feed-forward network.
///
/// Construct one with [`NetworkBuilder`]:
///
/// ```
/// # fn main() -> Result<(), mnc_nn::NetworkError> {
/// use mnc_nn::{FeatureShape, Layer, LayerKind, NetworkBuilder};
///
/// let net = NetworkBuilder::new("tiny", FeatureShape::spatial(3, 32, 32))
///     .layer(Layer::new("conv1", LayerKind::ConvBlock {
///         in_channels: 3, out_channels: 16, kernel: 3, stride: 1, padding: 1,
///     }))
///     .layer(Layer::new("gap", LayerKind::GlobalPool))
///     .layer(Layer::new("head", LayerKind::Classifier { in_features: 16, classes: 10 }))
///     .build()?;
/// assert_eq!(net.num_layers(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    input_shape: FeatureShape,
    layers: Vec<Layer>,
    /// `shapes[j]` is the *input* shape of layer `j`; `shapes[n]` is the
    /// network output shape.
    shapes: Vec<FeatureShape>,
}

impl Network {
    /// Network name (e.g. `"visformer"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the network input (batch size 1).
    pub fn input_shape(&self) -> FeatureShape {
        self.input_shape
    }

    /// Shape of the network output.
    pub fn output_shape(&self) -> FeatureShape {
        *self
            .shapes
            .last()
            .expect("validated network always has at least one layer")
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// All layers, input to output.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The layer with the given identifier.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::LayerOutOfBounds`] for invalid identifiers.
    pub fn layer(&self, id: LayerId) -> Result<&Layer, NetworkError> {
        self.layers.get(id.0).ok_or(NetworkError::LayerOutOfBounds {
            index: id.0,
            len: self.layers.len(),
        })
    }

    /// Input shape of layer `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::LayerOutOfBounds`] for invalid identifiers.
    pub fn input_shape_of(&self, id: LayerId) -> Result<FeatureShape, NetworkError> {
        if id.0 >= self.layers.len() {
            return Err(NetworkError::LayerOutOfBounds {
                index: id.0,
                len: self.layers.len(),
            });
        }
        Ok(self.shapes[id.0])
    }

    /// Output shape of layer `id`.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::LayerOutOfBounds`] for invalid identifiers.
    pub fn output_shape_of(&self, id: LayerId) -> Result<FeatureShape, NetworkError> {
        if id.0 >= self.layers.len() {
            return Err(NetworkError::LayerOutOfBounds {
                index: id.0,
                len: self.layers.len(),
            });
        }
        Ok(self.shapes[id.0 + 1])
    }

    /// Iterator over `(LayerId, &Layer)` pairs, input to output.
    pub fn iter(&self) -> impl Iterator<Item = (LayerId, &Layer)> {
        self.layers.iter().enumerate().map(|(i, l)| (LayerId(i), l))
    }

    /// Identifiers of the layers that carry an explicit entry in the
    /// partitioning matrix `P` (see [`Layer::is_partitionable`]).
    pub fn partitionable_layers(&self) -> Vec<LayerId> {
        self.iter()
            .filter(|(_, l)| l.is_partitionable())
            .map(|(id, _)| id)
            .collect()
    }

    /// Cost of running the complete, un-partitioned network once.
    pub fn total_cost(&self) -> SliceCost {
        self.iter()
            .map(|(id, l)| {
                l.full_cost(&self.shapes[id.0])
                    .expect("shapes validated at construction")
            })
            .sum()
    }

    /// Per-layer full costs, in layer order.
    pub fn layer_costs(&self) -> Vec<SliceCost> {
        self.iter()
            .map(|(id, l)| {
                l.full_cost(&self.shapes[id.0])
                    .expect("shapes validated at construction")
            })
            .collect()
    }

    /// Total number of weight parameters (approximate, derived from the
    /// weight bytes of the cost model).
    pub fn total_params(&self) -> f64 {
        self.total_cost().weight_bytes / 4.0
    }

    /// The classifier layer of the network, if its last layer is one.
    pub fn classifier(&self) -> Option<(LayerId, &Layer)> {
        let (id, last) = self.iter().last()?;
        match last.kind {
            LayerKind::Classifier { .. } => Some((id, last)),
            _ => None,
        }
    }

    /// Number of output classes if the network ends in a classifier.
    pub fn num_classes(&self) -> Option<usize> {
        self.classifier().map(|(_, l)| match l.kind {
            LayerKind::Classifier { classes, .. } => classes,
            _ => unreachable!("classifier() only returns classifier layers"),
        })
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} layers, input {}, output {}",
            self.name,
            self.layers.len(),
            self.input_shape,
            self.output_shape()
        )?;
        for (id, layer) in self.iter() {
            writeln!(
                f,
                "  {id:>4} {:<30} {} -> {}",
                layer.to_string(),
                self.shapes[id.0],
                self.shapes[id.0 + 1]
            )?;
        }
        Ok(())
    }
}

/// Builder for [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    input_shape: FeatureShape,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a new network with the given name and input shape.
    pub fn new(name: impl Into<String>, input_shape: FeatureShape) -> Self {
        NetworkBuilder {
            name: name.into(),
            input_shape,
            layers: Vec::new(),
        }
    }

    /// Appends a layer.
    #[must_use]
    pub fn layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Appends all layers from an iterator.
    #[must_use]
    pub fn layers<I: IntoIterator<Item = Layer>>(mut self, layers: I) -> Self {
        self.layers.extend(layers);
        self
    }

    /// Number of layers queued so far.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether no layers have been queued yet.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Validates every layer, resolves all intermediate shapes and returns
    /// the finished [`Network`].
    ///
    /// # Errors
    ///
    /// Returns an error when the network is empty, a layer has invalid
    /// parameters, or consecutive layers have incompatible shapes.
    pub fn build(self) -> Result<Network, NetworkError> {
        if self.layers.is_empty() {
            return Err(NetworkError::EmptyNetwork);
        }
        let mut shapes = Vec::with_capacity(self.layers.len() + 1);
        shapes.push(self.input_shape);
        for (index, layer) in self.layers.iter().enumerate() {
            layer.validate()?;
            let input = shapes[index];
            let output = layer.output_shape(&input).map_err(|e| match e {
                NetworkError::InvalidLayer { name, reason } => NetworkError::ShapeMismatch {
                    producer: index.saturating_sub(1),
                    producer_name: if index == 0 {
                        "<input>".to_string()
                    } else {
                        self.layers[index - 1].name.clone()
                    },
                    produced: input.to_string(),
                    expected: format!("{name}: {reason}"),
                },
                other => other,
            })?;
            shapes.push(output);
        }
        Ok(Network {
            name: self.name,
            input_shape: self.input_shape,
            layers: self.layers,
            shapes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cnn() -> Network {
        NetworkBuilder::new("tiny", FeatureShape::spatial(3, 32, 32))
            .layer(Layer::new(
                "conv1",
                LayerKind::ConvBlock {
                    in_channels: 3,
                    out_channels: 16,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ))
            .layer(Layer::new(
                "pool1",
                LayerKind::Pool {
                    kernel: 2,
                    stride: 2,
                },
            ))
            .layer(Layer::new(
                "conv2",
                LayerKind::ConvBlock {
                    in_channels: 16,
                    out_channels: 32,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ))
            .layer(Layer::new("gap", LayerKind::GlobalPool))
            .layer(Layer::new(
                "head",
                LayerKind::Classifier {
                    in_features: 32,
                    classes: 10,
                },
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn shapes_are_resolved_in_order() {
        let net = tiny_cnn();
        assert_eq!(net.num_layers(), 5);
        assert_eq!(
            net.input_shape_of(LayerId(0)).unwrap(),
            FeatureShape::spatial(3, 32, 32)
        );
        assert_eq!(
            net.output_shape_of(LayerId(0)).unwrap(),
            FeatureShape::spatial(16, 32, 32)
        );
        assert_eq!(
            net.output_shape_of(LayerId(1)).unwrap(),
            FeatureShape::spatial(16, 16, 16)
        );
        assert_eq!(net.output_shape(), FeatureShape::vector(10));
    }

    #[test]
    fn empty_network_is_rejected() {
        let err = NetworkBuilder::new("empty", FeatureShape::vector(10)).build();
        assert_eq!(err.unwrap_err(), NetworkError::EmptyNetwork);
    }

    #[test]
    fn shape_mismatch_is_reported_with_producer() {
        let err = NetworkBuilder::new("bad", FeatureShape::spatial(3, 32, 32))
            .layer(Layer::new(
                "conv1",
                LayerKind::ConvBlock {
                    in_channels: 3,
                    out_channels: 16,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ))
            .layer(Layer::new(
                "conv2",
                LayerKind::ConvBlock {
                    in_channels: 99,
                    out_channels: 32,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ))
            .build()
            .unwrap_err();
        match err {
            NetworkError::ShapeMismatch { producer_name, .. } => {
                assert_eq!(producer_name, "conv1");
            }
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn invalid_layer_is_rejected_at_build() {
        let err = NetworkBuilder::new("bad", FeatureShape::spatial(3, 32, 32))
            .layer(Layer::new(
                "conv1",
                LayerKind::ConvBlock {
                    in_channels: 3,
                    out_channels: 0,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            ))
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn partitionable_layers_skip_pool_and_classifier() {
        let net = tiny_cnn();
        let ids = net.partitionable_layers();
        assert_eq!(ids, vec![LayerId(0), LayerId(2)]);
    }

    #[test]
    fn total_cost_is_sum_of_layer_costs() {
        let net = tiny_cnn();
        let per_layer: SliceCost = net.layer_costs().into_iter().sum();
        let total = net.total_cost();
        assert!((per_layer.macs - total.macs).abs() < 1e-6);
        assert!((per_layer.flops - total.flops).abs() < 1e-6);
    }

    #[test]
    fn classifier_and_classes_are_found() {
        let net = tiny_cnn();
        let (id, layer) = net.classifier().unwrap();
        assert_eq!(id, LayerId(4));
        assert_eq!(layer.name, "head");
        assert_eq!(net.num_classes(), Some(10));
    }

    #[test]
    fn layer_out_of_bounds_is_an_error() {
        let net = tiny_cnn();
        assert!(net.layer(LayerId(100)).is_err());
        assert!(net.input_shape_of(LayerId(100)).is_err());
        assert!(net.output_shape_of(LayerId(100)).is_err());
    }

    #[test]
    fn display_lists_every_layer() {
        let net = tiny_cnn();
        let text = net.to_string();
        for (_, layer) in net.iter() {
            assert!(text.contains(&layer.name));
        }
    }

    #[test]
    fn builder_len_and_layers_iter() {
        let builder = NetworkBuilder::new("x", FeatureShape::vector(8)).layers(vec![
            Layer::new(
                "d1",
                LayerKind::Dense {
                    in_features: 8,
                    out_features: 4,
                },
            ),
            Layer::new(
                "d2",
                LayerKind::Dense {
                    in_features: 4,
                    out_features: 2,
                },
            ),
        ]);
        assert_eq!(builder.len(), 2);
        assert!(!builder.is_empty());
        assert!(builder.build().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let net = tiny_cnn();
        let json = serde_json::to_string(&net).unwrap();
        let back: Network = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }
}
