//! Error types for network construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`crate::Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// Two consecutive layers have incompatible shapes.
    ShapeMismatch {
        /// Index of the producing layer.
        producer: usize,
        /// Name of the producing layer.
        producer_name: String,
        /// Shape produced by the earlier layer.
        produced: String,
        /// Shape expected by the later layer.
        expected: String,
    },
    /// A layer parameter is invalid (zero channels, zero kernel, ...).
    InvalidLayer {
        /// Name of the offending layer.
        name: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The network has no layers.
    EmptyNetwork,
    /// A layer index is out of bounds.
    LayerOutOfBounds {
        /// The requested index.
        index: usize,
        /// Number of layers in the network.
        len: usize,
    },
    /// A width fraction is outside the closed interval `[0, 1]`.
    InvalidFraction {
        /// The offending value.
        value: f64,
        /// Which quantity the fraction parameterises.
        what: &'static str,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::ShapeMismatch {
                producer,
                producer_name,
                produced,
                expected,
            } => write!(
                f,
                "shape mismatch after layer {producer} ({producer_name}): produced {produced}, next layer expects {expected}"
            ),
            NetworkError::InvalidLayer { name, reason } => {
                write!(f, "invalid layer {name}: {reason}")
            }
            NetworkError::EmptyNetwork => write!(f, "network contains no layers"),
            NetworkError::LayerOutOfBounds { index, len } => {
                write!(f, "layer index {index} out of bounds for network of {len} layers")
            }
            NetworkError::InvalidFraction { value, what } => {
                write!(f, "invalid {what} fraction {value}, expected value in [0, 1]")
            }
        }
    }
}

impl Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            NetworkError::ShapeMismatch {
                producer: 3,
                producer_name: "conv3".into(),
                produced: "64x8x8".into(),
                expected: "128x8x8".into(),
            },
            NetworkError::InvalidLayer {
                name: "conv0".into(),
                reason: "zero output channels".into(),
            },
            NetworkError::EmptyNetwork,
            NetworkError::LayerOutOfBounds { index: 9, len: 3 },
            NetworkError::InvalidFraction {
                value: 1.5,
                what: "output width",
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(
                s.chars().next().unwrap().is_lowercase() || s.chars().next().unwrap().is_numeric()
            );
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error>() {}
        assert_error::<NetworkError>();
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetworkError>();
    }
}
