//! Feature-map shapes flowing between layers.
//!
//! Map-and-Conquer handles both convolutional networks (spatial feature
//! maps) and vision transformers (token sequences), so the shape vocabulary
//! covers both, plus flat vectors for classifier heads.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Shape of the activation tensor produced by a layer, for a batch size of 1.
///
/// The *width* dimension of a shape is the one that Map-and-Conquer
/// partitions: `channels` for [`FeatureShape::Spatial`], `dim` for
/// [`FeatureShape::Tokens`] and `dim` for [`FeatureShape::Vector`].
///
/// ```
/// use mnc_nn::FeatureShape;
///
/// let s = FeatureShape::spatial(64, 16, 16);
/// assert_eq!(s.num_elements(), 64 * 16 * 16);
/// assert_eq!(s.width(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureShape {
    /// A `channels × height × width` convolutional feature map.
    Spatial {
        /// Number of channels.
        channels: usize,
        /// Spatial height.
        height: usize,
        /// Spatial width.
        width: usize,
    },
    /// A `tokens × dim` sequence as used by transformer blocks.
    Tokens {
        /// Number of tokens (sequence length, including class token if any).
        tokens: usize,
        /// Embedding dimension per token.
        dim: usize,
    },
    /// A flat feature vector of length `dim`.
    Vector {
        /// Vector length.
        dim: usize,
    },
}

impl FeatureShape {
    /// Creates a spatial (CNN) shape.
    pub fn spatial(channels: usize, height: usize, width: usize) -> Self {
        FeatureShape::Spatial {
            channels,
            height,
            width,
        }
    }

    /// Creates a token-sequence (transformer) shape.
    pub fn tokens(tokens: usize, dim: usize) -> Self {
        FeatureShape::Tokens { tokens, dim }
    }

    /// Creates a flat-vector shape.
    pub fn vector(dim: usize) -> Self {
        FeatureShape::Vector { dim }
    }

    /// Total number of scalar elements in the activation.
    pub fn num_elements(&self) -> usize {
        match *self {
            FeatureShape::Spatial {
                channels,
                height,
                width,
            } => channels * height * width,
            FeatureShape::Tokens { tokens, dim } => tokens * dim,
            FeatureShape::Vector { dim } => dim,
        }
    }

    /// Size in bytes of the activation assuming `f32` storage.
    pub fn num_bytes(&self) -> usize {
        self.num_elements() * std::mem::size_of::<f32>()
    }

    /// The size of the *width* (partitionable) dimension.
    pub fn width(&self) -> usize {
        match *self {
            FeatureShape::Spatial { channels, .. } => channels,
            FeatureShape::Tokens { dim, .. } => dim,
            FeatureShape::Vector { dim } => dim,
        }
    }

    /// Number of positions over which the width dimension is replicated
    /// (`height × width` for spatial maps, `tokens` for sequences, 1 for
    /// vectors).
    pub fn positions(&self) -> usize {
        match *self {
            FeatureShape::Spatial { height, width, .. } => height * width,
            FeatureShape::Tokens { tokens, .. } => tokens,
            FeatureShape::Vector { .. } => 1,
        }
    }

    /// Returns a copy of the shape with the width dimension scaled by
    /// `fraction`, rounded to at least one unit.
    ///
    /// This is how the partitioning matrix `P` of the paper produces the
    /// shape of a width *slice* of a layer output.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `fraction` is not in `[0, 1]`.
    pub fn scale_width(&self, fraction: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
        let scale = |w: usize| -> usize { ((w as f64 * fraction).round() as usize).max(1) };
        match *self {
            FeatureShape::Spatial {
                channels,
                height,
                width,
            } => FeatureShape::Spatial {
                channels: scale(channels),
                height,
                width,
            },
            FeatureShape::Tokens { tokens, dim } => FeatureShape::Tokens {
                tokens,
                dim: scale(dim),
            },
            FeatureShape::Vector { dim } => FeatureShape::Vector { dim: scale(dim) },
        }
    }

    /// Whether the two shapes have the same structural kind (spatial /
    /// tokens / vector), ignoring the actual sizes.
    pub fn same_kind(&self, other: &FeatureShape) -> bool {
        matches!(
            (self, other),
            (FeatureShape::Spatial { .. }, FeatureShape::Spatial { .. })
                | (FeatureShape::Tokens { .. }, FeatureShape::Tokens { .. })
                | (FeatureShape::Vector { .. }, FeatureShape::Vector { .. })
        )
    }
}

impl fmt::Display for FeatureShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FeatureShape::Spatial {
                channels,
                height,
                width,
            } => write!(f, "{channels}x{height}x{width}"),
            FeatureShape::Tokens { tokens, dim } => write!(f, "{tokens}t x {dim}d"),
            FeatureShape::Vector { dim } => write!(f, "vec({dim})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn element_counts() {
        assert_eq!(FeatureShape::spatial(3, 32, 32).num_elements(), 3 * 32 * 32);
        assert_eq!(FeatureShape::tokens(64, 192).num_elements(), 64 * 192);
        assert_eq!(FeatureShape::vector(100).num_elements(), 100);
    }

    #[test]
    fn bytes_are_four_per_element() {
        let s = FeatureShape::spatial(8, 4, 4);
        assert_eq!(s.num_bytes(), s.num_elements() * 4);
    }

    #[test]
    fn width_and_positions() {
        let s = FeatureShape::spatial(64, 8, 8);
        assert_eq!(s.width(), 64);
        assert_eq!(s.positions(), 64);
        let t = FeatureShape::tokens(49, 384);
        assert_eq!(t.width(), 384);
        assert_eq!(t.positions(), 49);
        let v = FeatureShape::vector(10);
        assert_eq!(v.width(), 10);
        assert_eq!(v.positions(), 1);
    }

    #[test]
    fn scale_width_half() {
        let s = FeatureShape::spatial(64, 8, 8).scale_width(0.5);
        assert_eq!(s, FeatureShape::spatial(32, 8, 8));
        let t = FeatureShape::tokens(49, 384).scale_width(0.25);
        assert_eq!(t, FeatureShape::tokens(49, 96));
    }

    #[test]
    fn scale_width_never_drops_to_zero() {
        let s = FeatureShape::vector(3).scale_width(0.01);
        assert_eq!(s.width(), 1);
    }

    #[test]
    fn same_kind_checks_structure_only() {
        assert!(FeatureShape::spatial(1, 1, 1).same_kind(&FeatureShape::spatial(9, 9, 9)));
        assert!(!FeatureShape::spatial(1, 1, 1).same_kind(&FeatureShape::vector(1)));
        assert!(FeatureShape::tokens(2, 2).same_kind(&FeatureShape::tokens(5, 7)));
    }

    #[test]
    fn display_round_trip_is_informative() {
        assert_eq!(FeatureShape::spatial(64, 8, 8).to_string(), "64x8x8");
        assert_eq!(FeatureShape::tokens(49, 384).to_string(), "49t x 384d");
        assert_eq!(FeatureShape::vector(100).to_string(), "vec(100)");
    }

    proptest! {
        #[test]
        fn prop_scale_width_monotone(c in 1usize..512, h in 1usize..64, w in 1usize..64,
                                     f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
            let shape = FeatureShape::spatial(c, h, w);
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(shape.scale_width(lo).width() <= shape.scale_width(hi).width());
        }

        #[test]
        fn prop_scale_full_is_identity(c in 1usize..512, h in 1usize..64, w in 1usize..64) {
            let shape = FeatureShape::spatial(c, h, w);
            prop_assert_eq!(shape.scale_width(1.0), shape);
        }

        #[test]
        fn prop_elements_equal_width_times_positions(c in 1usize..256, h in 1usize..32, w in 1usize..32) {
            let shape = FeatureShape::spatial(c, h, w);
            prop_assert_eq!(shape.num_elements(), shape.width() * shape.positions());
        }
    }
}
