//! Neural-network intermediate representation for Map-and-Conquer.
//!
//! This crate provides the *model side* of the Map-and-Conquer framework
//! (Bouzidi et al., DAC 2023): a compact intermediate representation of
//! feed-forward neural networks viewed as a sequence of computational
//! layers `NN = L_n ∘ … ∘ L_1` (paper eq. 1), each with a *width* (output
//! channels for CNN blocks, attention heads for ViT blocks) that can later
//! be partitioned across the compute units of an MPSoC.
//!
//! The crate contains:
//!
//! * [`shape`] — feature-map shapes flowing between layers,
//! * [`layer`] — the layer/block vocabulary and width semantics,
//! * [`graph`] — the [`Network`] container and its builder,
//! * [`cost`] — an analytic cost model (FLOPs, MACs, weight and activation
//!   bytes) for full layers and for *width slices* of layers,
//! * [`importance`] — per-channel importance scores and the ranking /
//!   reordering machinery of paper §V-D,
//! * [`models`] — ready-made builders for the architectures evaluated in
//!   the paper (Visformer and VGG-19) plus a few extras.
//!
//! # Example
//!
//! ```
//! use mnc_nn::models::{visformer, ModelPreset};
//!
//! let net = visformer(ModelPreset::cifar100());
//! assert!(net.num_layers() > 10);
//! // Total multiply-accumulate count of the full (un-partitioned) model.
//! let total = net.total_cost();
//! assert!(total.macs > 1_000_000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod graph;
pub mod importance;
pub mod layer;
pub mod models;
pub mod shape;

pub use cost::SliceCost;
pub use error::NetworkError;
pub use graph::{Network, NetworkBuilder};
pub use importance::{ChannelRanking, ImportanceModel, LayerImportance};
pub use layer::{Layer, LayerId, LayerKind};
pub use shape::FeatureShape;
