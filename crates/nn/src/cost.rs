//! Analytic layer cost model.
//!
//! The MPSoC performance model and the surrogate predictor both consume the
//! same per-layer workload description: multiply-accumulate count, total
//! floating-point operations, weight bytes and activation bytes. Costs are
//! available for the *full* layer and for a *width slice* of the layer,
//! which is what a partitioned stage actually executes.
//!
//! A slice is characterised by two fractions:
//!
//! * `out_frac` — the fraction of the layer's width units computed by the
//!   slice (the entry `p^j_i` of the partitioning matrix `P`),
//! * `in_frac` — the fraction of the *input* width visible to the slice,
//!   which depends on how much of the upstream feature maps the stage can
//!   reuse (its own slice plus whatever the indicator matrix `I` forwards
//!   from earlier stages).

use crate::error::NetworkError;
use crate::layer::{Layer, LayerKind};
use crate::shape::FeatureShape;
use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Bytes per scalar activation / weight (`f32` everywhere, matching the
/// FP32/FP16 TensorRT engines the paper profiles; a constant factor that
/// calibration absorbs).
const BYTES_PER_SCALAR: f64 = 4.0;

/// Workload of a layer slice.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SliceCost {
    /// Multiply-accumulate operations.
    pub macs: f64,
    /// Total floating-point operations (≈ 2·MACs plus element-wise work).
    pub flops: f64,
    /// Bytes of weights the slice must read.
    pub weight_bytes: f64,
    /// Bytes of input activations the slice must read.
    pub input_bytes: f64,
    /// Bytes of output activations the slice produces.
    pub output_bytes: f64,
}

impl SliceCost {
    /// A zero-cost slice.
    pub fn zero() -> Self {
        SliceCost::default()
    }

    /// Total bytes moved (weights + input + output activations); the
    /// memory-traffic term of the roofline latency model.
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.input_bytes + self.output_bytes
    }

    /// Arithmetic intensity in FLOPs per byte moved. Returns 0 for an
    /// empty slice.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.total_bytes();
        if bytes <= 0.0 {
            0.0
        } else {
            self.flops / bytes
        }
    }

    /// Whether every component of the cost is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        [
            self.macs,
            self.flops,
            self.weight_bytes,
            self.input_bytes,
            self.output_bytes,
        ]
        .iter()
        .all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Add for SliceCost {
    type Output = SliceCost;

    fn add(self, rhs: SliceCost) -> SliceCost {
        SliceCost {
            macs: self.macs + rhs.macs,
            flops: self.flops + rhs.flops,
            weight_bytes: self.weight_bytes + rhs.weight_bytes,
            input_bytes: self.input_bytes + rhs.input_bytes,
            output_bytes: self.output_bytes + rhs.output_bytes,
        }
    }
}

impl AddAssign for SliceCost {
    fn add_assign(&mut self, rhs: SliceCost) {
        *self = *self + rhs;
    }
}

impl Sum for SliceCost {
    fn sum<I: Iterator<Item = SliceCost>>(iter: I) -> SliceCost {
        iter.fold(SliceCost::zero(), Add::add)
    }
}

fn check_fraction(value: f64, what: &'static str) -> Result<(), NetworkError> {
    if !(0.0..=1.0).contains(&value) || !value.is_finite() {
        return Err(NetworkError::InvalidFraction { value, what });
    }
    Ok(())
}

impl Layer {
    /// Cost of executing the full layer on the given input shape.
    ///
    /// # Errors
    ///
    /// Returns an error when the input shape is incompatible with the layer.
    pub fn full_cost(&self, input: &FeatureShape) -> Result<SliceCost, NetworkError> {
        self.slice_cost(input, 1.0, 1.0)
    }

    /// Cost of executing a width slice of the layer.
    ///
    /// `out_frac` is the fraction of the layer's width units the slice
    /// computes; `in_frac` is the fraction of input width units visible to
    /// the slice. The layer's output shape must already be obtainable from
    /// `input` via [`Layer::output_shape`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidFraction`] for fractions outside
    /// `[0, 1]` and shape errors from [`Layer::output_shape`].
    pub fn slice_cost(
        &self,
        input: &FeatureShape,
        out_frac: f64,
        in_frac: f64,
    ) -> Result<SliceCost, NetworkError> {
        check_fraction(out_frac, "output width")?;
        check_fraction(in_frac, "input width")?;
        let output = self.output_shape(input)?;
        let out_positions = output.positions() as f64;
        let in_bytes = input.num_bytes() as f64 * in_frac;

        let cost = match self.kind {
            LayerKind::ConvBlock {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                let in_c = in_channels as f64 * in_frac;
                let out_c = out_channels as f64 * out_frac;
                let k2 = (kernel * kernel) as f64;
                let macs = out_c * in_c * k2 * out_positions;
                let out_elems = out_c * out_positions;
                SliceCost {
                    macs,
                    // 2 ops per MAC plus batch-norm (2 ops/elem) and activation (1 op/elem).
                    flops: 2.0 * macs + 3.0 * out_elems,
                    weight_bytes: (out_c * in_c * k2 + 2.0 * out_c) * BYTES_PER_SCALAR,
                    input_bytes: in_bytes,
                    output_bytes: out_elems * BYTES_PER_SCALAR,
                }
            }
            LayerKind::PatchEmbed {
                in_channels,
                embed_dim,
                patch,
            } => {
                let in_c = in_channels as f64 * in_frac;
                let out_d = embed_dim as f64 * out_frac;
                let k2 = (patch * patch) as f64;
                let macs = out_d * in_c * k2 * out_positions;
                let out_elems = out_d * out_positions;
                SliceCost {
                    macs,
                    flops: 2.0 * macs + 2.0 * out_elems,
                    weight_bytes: (out_d * in_c * k2 + out_d) * BYTES_PER_SCALAR,
                    input_bytes: in_bytes,
                    output_bytes: out_elems * BYTES_PER_SCALAR,
                }
            }
            LayerKind::AttentionBlock { embed_dim, heads } => {
                let tokens = output.positions() as f64;
                let head_dim = (embed_dim / heads) as f64;
                let heads_slice = (heads as f64 * out_frac).max(1.0).round();
                let d_out = heads_slice * head_dim;
                let d_in = embed_dim as f64 * in_frac;
                // QKV projections, attention score + weighted sum, output projection.
                let qkv = 3.0 * tokens * d_in * d_out;
                let attn = 2.0 * heads_slice * tokens * tokens * head_dim;
                let proj = tokens * d_out * d_out;
                let macs = qkv + attn + proj;
                let out_elems = tokens * d_out;
                SliceCost {
                    macs,
                    // 2 ops/MAC plus softmax (~5 ops per score) and layer-norm/residual.
                    flops: 2.0 * macs + 5.0 * heads_slice * tokens * tokens + 6.0 * out_elems,
                    weight_bytes: (3.0 * d_in * d_out + d_out * d_out + 4.0 * d_out)
                        * BYTES_PER_SCALAR,
                    input_bytes: in_bytes,
                    output_bytes: out_elems * BYTES_PER_SCALAR,
                }
            }
            LayerKind::MlpBlock {
                embed_dim,
                hidden_dim,
            } => {
                let tokens = output.positions() as f64;
                let d_in = embed_dim as f64 * in_frac;
                let d_out = embed_dim as f64 * out_frac;
                let hidden = hidden_dim as f64 * out_frac;
                let macs = tokens * (d_in * hidden + hidden * d_out);
                let out_elems = tokens * d_out;
                SliceCost {
                    macs,
                    flops: 2.0 * macs + tokens * hidden + 6.0 * out_elems,
                    weight_bytes: (d_in * hidden + hidden * d_out + hidden + d_out)
                        * BYTES_PER_SCALAR,
                    input_bytes: in_bytes,
                    output_bytes: out_elems * BYTES_PER_SCALAR,
                }
            }
            LayerKind::Pool { kernel, .. } => {
                let out_elems = output.num_elements() as f64 * in_frac;
                SliceCost {
                    macs: 0.0,
                    flops: out_elems * (kernel * kernel) as f64,
                    weight_bytes: 0.0,
                    input_bytes: in_bytes,
                    output_bytes: out_elems * BYTES_PER_SCALAR,
                }
            }
            LayerKind::GlobalPool => {
                let out_elems = output.num_elements() as f64 * in_frac;
                SliceCost {
                    macs: 0.0,
                    flops: input.num_elements() as f64 * in_frac,
                    weight_bytes: 0.0,
                    input_bytes: in_bytes,
                    output_bytes: out_elems * BYTES_PER_SCALAR,
                }
            }
            LayerKind::Dense {
                in_features,
                out_features,
            } => {
                let d_in = in_features as f64 * in_frac;
                let d_out = out_features as f64 * out_frac;
                let macs = d_in * d_out;
                SliceCost {
                    macs,
                    flops: 2.0 * macs + d_out,
                    weight_bytes: (d_in * d_out + d_out) * BYTES_PER_SCALAR,
                    input_bytes: in_bytes,
                    output_bytes: d_out * BYTES_PER_SCALAR,
                }
            }
            LayerKind::Classifier {
                in_features,
                classes,
            } => {
                // Early exits always produce all class logits; only the
                // input features are sliced.
                let d_in = in_features as f64 * in_frac;
                let d_out = classes as f64;
                let macs = d_in * d_out;
                SliceCost {
                    macs,
                    flops: 2.0 * macs + d_out,
                    weight_bytes: (d_in * d_out + d_out) * BYTES_PER_SCALAR,
                    input_bytes: in_bytes,
                    output_bytes: d_out * BYTES_PER_SCALAR,
                }
            }
        };
        Ok(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn conv_layer() -> Layer {
        Layer::new(
            "conv",
            LayerKind::ConvBlock {
                in_channels: 64,
                out_channels: 128,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        )
    }

    fn attn_layer() -> Layer {
        Layer::new(
            "attn",
            LayerKind::AttentionBlock {
                embed_dim: 192,
                heads: 6,
            },
        )
    }

    #[test]
    fn conv_full_cost_matches_formula() {
        let l = conv_layer();
        let input = FeatureShape::spatial(64, 16, 16);
        let c = l.full_cost(&input).unwrap();
        let expected_macs = 128.0 * 64.0 * 9.0 * 16.0 * 16.0;
        assert!((c.macs - expected_macs).abs() < 1e-6);
        assert!(c.flops > 2.0 * expected_macs);
        assert!(c.is_valid());
    }

    #[test]
    fn conv_half_slice_quarter_macs() {
        let l = conv_layer();
        let input = FeatureShape::spatial(64, 16, 16);
        let full = l.full_cost(&input).unwrap();
        let half = l.slice_cost(&input, 0.5, 0.5).unwrap();
        // Both input and output channel counts halve, so MACs drop ~4x.
        assert!((half.macs * 4.0 - full.macs).abs() / full.macs < 0.01);
    }

    #[test]
    fn attention_slice_scales_with_heads() {
        let l = attn_layer();
        let input = FeatureShape::tokens(64, 192);
        let full = l.full_cost(&input).unwrap();
        let third = l.slice_cost(&input, 1.0 / 3.0, 1.0).unwrap();
        assert!(third.macs < full.macs);
        assert!(third.macs > full.macs * 0.15);
        assert!(third.output_bytes < full.output_bytes);
    }

    #[test]
    fn classifier_keeps_all_logits() {
        let l = Layer::new(
            "head",
            LayerKind::Classifier {
                in_features: 512,
                classes: 100,
            },
        );
        let input = FeatureShape::vector(512);
        let half = l.slice_cost(&input, 0.5, 0.5).unwrap();
        assert!((half.output_bytes - 400.0).abs() < 1e-9);
    }

    #[test]
    fn pool_has_no_weights() {
        let l = Layer::new(
            "pool",
            LayerKind::Pool {
                kernel: 2,
                stride: 2,
            },
        );
        let c = l.full_cost(&FeatureShape::spatial(64, 16, 16)).unwrap();
        assert_eq!(c.weight_bytes, 0.0);
        assert_eq!(c.macs, 0.0);
        assert!(c.flops > 0.0);
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        let l = conv_layer();
        let input = FeatureShape::spatial(64, 16, 16);
        assert!(l.slice_cost(&input, 1.5, 1.0).is_err());
        assert!(l.slice_cost(&input, 0.5, -0.1).is_err());
        assert!(l.slice_cost(&input, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn cost_addition_and_sum() {
        let a = SliceCost {
            macs: 1.0,
            flops: 2.0,
            weight_bytes: 3.0,
            input_bytes: 4.0,
            output_bytes: 5.0,
        };
        let total: SliceCost = vec![a, a, a].into_iter().sum();
        assert_eq!(total.macs, 3.0);
        assert_eq!(total.total_bytes(), 3.0 * (3.0 + 4.0 + 5.0));
    }

    #[test]
    fn arithmetic_intensity_zero_for_empty() {
        assert_eq!(SliceCost::zero().arithmetic_intensity(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_cost_monotone_in_out_frac(frac_small in 0.1f64..0.9) {
            let l = conv_layer();
            let input = FeatureShape::spatial(64, 16, 16);
            let small = l.slice_cost(&input, frac_small, 1.0).unwrap();
            let big = l.slice_cost(&input, (frac_small + 0.1).min(1.0), 1.0).unwrap();
            prop_assert!(small.macs <= big.macs + 1e-9);
            prop_assert!(small.weight_bytes <= big.weight_bytes + 1e-9);
            prop_assert!(small.output_bytes <= big.output_bytes + 1e-9);
        }

        #[test]
        fn prop_slice_never_exceeds_full(out_frac in 0.05f64..1.0, in_frac in 0.05f64..1.0) {
            for layer in [conv_layer(), attn_layer()] {
                let input = match layer.kind {
                    LayerKind::ConvBlock { .. } => FeatureShape::spatial(64, 16, 16),
                    _ => FeatureShape::tokens(64, 192),
                };
                let full = layer.full_cost(&input).unwrap();
                let slice = layer.slice_cost(&input, out_frac, in_frac).unwrap();
                prop_assert!(slice.macs <= full.macs * 1.001 + 1.0);
                prop_assert!(slice.is_valid());
            }
        }
    }
}
