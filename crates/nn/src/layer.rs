//! Layer vocabulary and width semantics.
//!
//! Map-and-Conquer views a network as a sequence of computational layers
//! `L_j = {C_1, …, C_W}` (paper eq. 2) where the `C_i` are the *width
//! units* of the layer: output channels for convolutional blocks, attention
//! heads for transformer blocks, hidden units for MLP blocks. Partitioning
//! (paper §III-A) splits contiguous subsets of those units across inference
//! stages.
//!
//! Layers here are *blocks*: a [`LayerKind::ConvBlock`] bundles the
//! convolution with its batch-norm and activation, a
//! [`LayerKind::AttentionBlock`] bundles layer-norm, QKV projection,
//! attention and the output projection. This matches the granularity at
//! which the paper profiles layers on the MPSoC (TensorRT fuses exactly
//! these groups).

use crate::error::NetworkError;
use crate::shape::FeatureShape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a layer inside a [`crate::Network`]: its index in the
/// layer sequence, starting at 0 for the layer closest to the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LayerId(pub usize);

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// The kind of computation a layer performs, with its static parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution fused with batch normalisation and activation.
    ///
    /// Width units are the `out_channels`.
    ConvBlock {
        /// Input channels.
        in_channels: usize,
        /// Output channels (the width of the layer).
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding on each side.
        padding: usize,
    },
    /// Strided-convolution patch embedding turning a spatial map into a
    /// token sequence (ViT stem or stage-transition downsampling).
    ///
    /// Width units are the `embed_dim` output features.
    PatchEmbed {
        /// Input channels of the spatial map.
        in_channels: usize,
        /// Embedding dimension produced per patch.
        embed_dim: usize,
        /// Patch size (kernel == stride == patch).
        patch: usize,
    },
    /// Multi-head self-attention block (layer-norm, QKV projection,
    /// scaled-dot-product attention, output projection, residual).
    ///
    /// Width units are the attention `heads`, following MIA-Former and the
    /// paper's Visformer case study.
    AttentionBlock {
        /// Token embedding dimension (must match the incoming shape).
        embed_dim: usize,
        /// Number of attention heads.
        heads: usize,
    },
    /// Transformer feed-forward block (layer-norm, `dim → hidden → dim`
    /// MLP, residual).
    ///
    /// Width units are the `hidden_dim` units.
    MlpBlock {
        /// Token embedding dimension.
        embed_dim: usize,
        /// Hidden expansion dimension.
        hidden_dim: usize,
    },
    /// Spatial max/average pooling. Not partitionable on its own: it
    /// follows whatever slice of channels its producer assigned to a stage.
    Pool {
        /// Pooling window.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// Global average pooling collapsing spatial or token positions into a
    /// flat vector.
    GlobalPool,
    /// Fully-connected layer fused with activation.
    ///
    /// Width units are the `out_features`.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features (the width of the layer).
        out_features: usize,
    },
    /// Classification head (fully-connected to `classes` logits). Each
    /// dynamic stage receives its own classifier as an early exit, so the
    /// classifier itself is never partitioned.
    Classifier {
        /// Input features.
        in_features: usize,
        /// Number of classes.
        classes: usize,
    },
}

impl LayerKind {
    /// Short lowercase tag used in names and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            LayerKind::ConvBlock { .. } => "conv",
            LayerKind::PatchEmbed { .. } => "patch_embed",
            LayerKind::AttentionBlock { .. } => "attention",
            LayerKind::MlpBlock { .. } => "mlp",
            LayerKind::Pool { .. } => "pool",
            LayerKind::GlobalPool => "global_pool",
            LayerKind::Dense { .. } => "dense",
            LayerKind::Classifier { .. } => "classifier",
        }
    }
}

/// A single computational layer (block) of a network.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name, unique within a network by construction.
    pub name: String,
    /// The computation performed by this layer.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a layer with the given name and kind.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }

    /// The number of width units of this layer (paper eq. 2: the channel
    /// count `W` of `L_j = {C_1, …, C_W}`).
    ///
    /// Non-partitionable layers report the width of the activation they
    /// pass through (pooling) or produce (classifier).
    pub fn width(&self) -> usize {
        match self.kind {
            LayerKind::ConvBlock { out_channels, .. } => out_channels,
            LayerKind::PatchEmbed { embed_dim, .. } => embed_dim,
            LayerKind::AttentionBlock { heads, .. } => heads,
            LayerKind::MlpBlock { hidden_dim, .. } => hidden_dim,
            LayerKind::Pool { .. } | LayerKind::GlobalPool => 0,
            LayerKind::Dense { out_features, .. } => out_features,
            LayerKind::Classifier { classes, .. } => classes,
        }
    }

    /// Whether the partitioning matrix `P` carries an explicit split ratio
    /// for this layer.
    ///
    /// Pooling layers follow the split of their producer and classifiers
    /// are replicated per stage as early exits, so neither is partitionable
    /// on its own.
    pub fn is_partitionable(&self) -> bool {
        matches!(
            self.kind,
            LayerKind::ConvBlock { .. }
                | LayerKind::PatchEmbed { .. }
                | LayerKind::AttentionBlock { .. }
                | LayerKind::MlpBlock { .. }
                | LayerKind::Dense { .. }
        )
    }

    /// Whether the layer carries trainable weights.
    pub fn has_weights(&self) -> bool {
        !matches!(self.kind, LayerKind::Pool { .. } | LayerKind::GlobalPool)
    }

    /// Validates the static parameters of the layer.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidLayer`] when any structural parameter
    /// is zero or otherwise meaningless (e.g. a stride of zero).
    pub fn validate(&self) -> Result<(), NetworkError> {
        let fail = |reason: &str| {
            Err(NetworkError::InvalidLayer {
                name: self.name.clone(),
                reason: reason.to_string(),
            })
        };
        match self.kind {
            LayerKind::ConvBlock {
                in_channels,
                out_channels,
                kernel,
                stride,
                ..
            } => {
                if in_channels == 0 || out_channels == 0 {
                    return fail("zero channel count");
                }
                if kernel == 0 {
                    return fail("zero kernel size");
                }
                if stride == 0 {
                    return fail("zero stride");
                }
            }
            LayerKind::PatchEmbed {
                in_channels,
                embed_dim,
                patch,
            } => {
                if in_channels == 0 || embed_dim == 0 {
                    return fail("zero channel count");
                }
                if patch == 0 {
                    return fail("zero patch size");
                }
            }
            LayerKind::AttentionBlock { embed_dim, heads } => {
                if embed_dim == 0 || heads == 0 {
                    return fail("zero attention dimension or head count");
                }
                if embed_dim % heads != 0 {
                    return fail("embed_dim must be divisible by heads");
                }
            }
            LayerKind::MlpBlock {
                embed_dim,
                hidden_dim,
            } => {
                if embed_dim == 0 || hidden_dim == 0 {
                    return fail("zero mlp dimension");
                }
            }
            LayerKind::Pool { kernel, stride } => {
                if kernel == 0 || stride == 0 {
                    return fail("zero pooling window or stride");
                }
            }
            LayerKind::GlobalPool => {}
            LayerKind::Dense {
                in_features,
                out_features,
            } => {
                if in_features == 0 || out_features == 0 {
                    return fail("zero dense dimension");
                }
            }
            LayerKind::Classifier {
                in_features,
                classes,
            } => {
                if in_features == 0 || classes == 0 {
                    return fail("zero classifier dimension");
                }
            }
        }
        Ok(())
    }

    /// Computes the output shape of the layer given its input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::ShapeMismatch`]-style information via
    /// [`NetworkError::InvalidLayer`] when the input shape has the wrong
    /// structure (e.g. feeding a spatial map into an attention block) or
    /// incompatible sizes.
    pub fn output_shape(&self, input: &FeatureShape) -> Result<FeatureShape, NetworkError> {
        let mismatch = |expected: &str| {
            Err(NetworkError::InvalidLayer {
                name: self.name.clone(),
                reason: format!("expected {expected} input, got {input}"),
            })
        };
        match self.kind {
            LayerKind::ConvBlock {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
            } => match *input {
                FeatureShape::Spatial {
                    channels,
                    height,
                    width,
                } => {
                    if channels != in_channels {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: format!(
                                "conv expects {in_channels} input channels, got {channels}"
                            ),
                        });
                    }
                    let out_h = conv_out(height, kernel, stride, padding);
                    let out_w = conv_out(width, kernel, stride, padding);
                    if out_h == 0 || out_w == 0 {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: "convolution collapses spatial size to zero".to_string(),
                        });
                    }
                    Ok(FeatureShape::spatial(out_channels, out_h, out_w))
                }
                _ => mismatch("spatial"),
            },
            LayerKind::PatchEmbed {
                in_channels,
                embed_dim,
                patch,
            } => match *input {
                FeatureShape::Spatial {
                    channels,
                    height,
                    width,
                } => {
                    if channels != in_channels {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: format!(
                                "patch embed expects {in_channels} input channels, got {channels}"
                            ),
                        });
                    }
                    let th = height / patch;
                    let tw = width / patch;
                    if th == 0 || tw == 0 {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: "patch size larger than input".to_string(),
                        });
                    }
                    Ok(FeatureShape::tokens(th * tw, embed_dim))
                }
                _ => mismatch("spatial"),
            },
            LayerKind::AttentionBlock { embed_dim, .. } => match *input {
                FeatureShape::Tokens { tokens, dim } => {
                    if dim != embed_dim {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: format!(
                                "attention expects embedding dim {embed_dim}, got {dim}"
                            ),
                        });
                    }
                    Ok(FeatureShape::tokens(tokens, embed_dim))
                }
                _ => mismatch("token"),
            },
            LayerKind::MlpBlock { embed_dim, .. } => match *input {
                FeatureShape::Tokens { tokens, dim } => {
                    if dim != embed_dim {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: format!("mlp expects embedding dim {embed_dim}, got {dim}"),
                        });
                    }
                    Ok(FeatureShape::tokens(tokens, embed_dim))
                }
                _ => mismatch("token"),
            },
            LayerKind::Pool { kernel, stride } => match *input {
                FeatureShape::Spatial {
                    channels,
                    height,
                    width,
                } => {
                    let out_h = pool_out(height, kernel, stride);
                    let out_w = pool_out(width, kernel, stride);
                    if out_h == 0 || out_w == 0 {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: "pooling collapses spatial size to zero".to_string(),
                        });
                    }
                    Ok(FeatureShape::spatial(channels, out_h, out_w))
                }
                _ => mismatch("spatial"),
            },
            LayerKind::GlobalPool => match *input {
                FeatureShape::Spatial { channels, .. } => Ok(FeatureShape::vector(channels)),
                FeatureShape::Tokens { dim, .. } => Ok(FeatureShape::vector(dim)),
                FeatureShape::Vector { dim } => Ok(FeatureShape::vector(dim)),
            },
            LayerKind::Dense {
                in_features,
                out_features,
            } => match *input {
                FeatureShape::Vector { dim } => {
                    if dim != in_features {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: format!("dense expects {in_features} features, got {dim}"),
                        });
                    }
                    Ok(FeatureShape::vector(out_features))
                }
                _ => mismatch("vector"),
            },
            LayerKind::Classifier {
                in_features,
                classes,
            } => match *input {
                FeatureShape::Vector { dim } => {
                    if dim != in_features {
                        return Err(NetworkError::InvalidLayer {
                            name: self.name.clone(),
                            reason: format!("classifier expects {in_features} features, got {dim}"),
                        });
                    }
                    Ok(FeatureShape::vector(classes))
                }
                _ => mismatch("vector"),
            },
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind.tag())
    }
}

/// Output size of a convolution along one spatial dimension.
fn conv_out(size: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = size + 2 * padding;
    if padded < kernel {
        return 0;
    }
    (padded - kernel) / stride + 1
}

/// Output size of a pooling window along one spatial dimension.
fn pool_out(size: usize, kernel: usize, stride: usize) -> usize {
    if size < kernel {
        return 0;
    }
    (size - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(in_c: usize, out_c: usize, k: usize, s: usize, p: usize) -> Layer {
        Layer::new(
            format!("conv_{in_c}_{out_c}"),
            LayerKind::ConvBlock {
                in_channels: in_c,
                out_channels: out_c,
                kernel: k,
                stride: s,
                padding: p,
            },
        )
    }

    #[test]
    fn conv_shape_same_padding() {
        let l = conv(3, 64, 3, 1, 1);
        let out = l.output_shape(&FeatureShape::spatial(3, 32, 32)).unwrap();
        assert_eq!(out, FeatureShape::spatial(64, 32, 32));
    }

    #[test]
    fn conv_shape_stride_two() {
        let l = conv(64, 128, 3, 2, 1);
        let out = l.output_shape(&FeatureShape::spatial(64, 32, 32)).unwrap();
        assert_eq!(out, FeatureShape::spatial(128, 16, 16));
    }

    #[test]
    fn conv_rejects_wrong_channels() {
        let l = conv(3, 64, 3, 1, 1);
        assert!(l.output_shape(&FeatureShape::spatial(4, 32, 32)).is_err());
    }

    #[test]
    fn conv_rejects_token_input() {
        let l = conv(3, 64, 3, 1, 1);
        assert!(l.output_shape(&FeatureShape::tokens(8, 8)).is_err());
    }

    #[test]
    fn patch_embed_produces_tokens() {
        let l = Layer::new(
            "stem",
            LayerKind::PatchEmbed {
                in_channels: 3,
                embed_dim: 192,
                patch: 4,
            },
        );
        let out = l.output_shape(&FeatureShape::spatial(3, 32, 32)).unwrap();
        assert_eq!(out, FeatureShape::tokens(64, 192));
    }

    #[test]
    fn attention_preserves_shape_and_checks_dim() {
        let l = Layer::new(
            "attn",
            LayerKind::AttentionBlock {
                embed_dim: 192,
                heads: 6,
            },
        );
        let ok = l.output_shape(&FeatureShape::tokens(64, 192)).unwrap();
        assert_eq!(ok, FeatureShape::tokens(64, 192));
        assert!(l.output_shape(&FeatureShape::tokens(64, 100)).is_err());
    }

    #[test]
    fn attention_requires_divisible_heads() {
        let l = Layer::new(
            "attn",
            LayerKind::AttentionBlock {
                embed_dim: 100,
                heads: 6,
            },
        );
        assert!(l.validate().is_err());
    }

    #[test]
    fn pool_halves_spatial_size() {
        let l = Layer::new(
            "pool",
            LayerKind::Pool {
                kernel: 2,
                stride: 2,
            },
        );
        let out = l.output_shape(&FeatureShape::spatial(64, 32, 32)).unwrap();
        assert_eq!(out, FeatureShape::spatial(64, 16, 16));
    }

    #[test]
    fn global_pool_collapses_to_vector() {
        let l = Layer::new("gap", LayerKind::GlobalPool);
        assert_eq!(
            l.output_shape(&FeatureShape::spatial(512, 2, 2)).unwrap(),
            FeatureShape::vector(512)
        );
        assert_eq!(
            l.output_shape(&FeatureShape::tokens(49, 384)).unwrap(),
            FeatureShape::vector(384)
        );
    }

    #[test]
    fn dense_and_classifier_check_features() {
        let d = Layer::new(
            "fc1",
            LayerKind::Dense {
                in_features: 512,
                out_features: 4096,
            },
        );
        assert_eq!(
            d.output_shape(&FeatureShape::vector(512)).unwrap(),
            FeatureShape::vector(4096)
        );
        assert!(d.output_shape(&FeatureShape::vector(100)).is_err());

        let c = Layer::new(
            "head",
            LayerKind::Classifier {
                in_features: 4096,
                classes: 100,
            },
        );
        assert_eq!(
            c.output_shape(&FeatureShape::vector(4096)).unwrap(),
            FeatureShape::vector(100)
        );
    }

    #[test]
    fn width_semantics() {
        assert_eq!(conv(3, 64, 3, 1, 1).width(), 64);
        let attn = Layer::new(
            "attn",
            LayerKind::AttentionBlock {
                embed_dim: 192,
                heads: 6,
            },
        );
        assert_eq!(attn.width(), 6);
        let pool = Layer::new(
            "pool",
            LayerKind::Pool {
                kernel: 2,
                stride: 2,
            },
        );
        assert_eq!(pool.width(), 0);
        assert!(!pool.is_partitionable());
        assert!(attn.is_partitionable());
    }

    #[test]
    fn validation_rejects_zero_parameters() {
        let bad = Layer::new(
            "bad",
            LayerKind::ConvBlock {
                in_channels: 0,
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
        );
        assert!(bad.validate().is_err());
        let bad_stride = Layer::new(
            "bad_stride",
            LayerKind::ConvBlock {
                in_channels: 3,
                out_channels: 64,
                kernel: 3,
                stride: 0,
                padding: 1,
            },
        );
        assert!(bad_stride.validate().is_err());
        assert!(conv(3, 64, 3, 1, 1).validate().is_ok());
    }

    #[test]
    fn has_weights_flags() {
        assert!(conv(3, 64, 3, 1, 1).has_weights());
        assert!(!Layer::new(
            "pool",
            LayerKind::Pool {
                kernel: 2,
                stride: 2
            }
        )
        .has_weights());
        assert!(!Layer::new("gap", LayerKind::GlobalPool).has_weights());
    }

    #[test]
    fn display_contains_name_and_tag() {
        let l = conv(3, 64, 3, 1, 1);
        let s = l.to_string();
        assert!(s.contains("conv_3_64"));
        assert!(s.contains("conv"));
    }
}
