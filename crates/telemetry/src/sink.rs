//! Search-generation telemetry: the zero-cost-when-disabled hook the
//! evolutionary search emits one event per generation through.
//!
//! The search loop holds an `Option<&dyn TelemetrySink>`; with `None`
//! nothing is computed or emitted, so the uninstrumented hot path pays
//! only a branch. Sinks observe — they must never feed back into search
//! decisions, which is what keeps the bit-identity property tests valid
//! with telemetry enabled.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// What one search generation did, emitted after its evaluations are
/// archived and the stall bookkeeping has run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationEvent {
    /// Zero-based generation index.
    pub generation: usize,
    /// Candidates scheduled for evaluation this generation.
    pub scheduled: usize,
    /// Evaluations actually computed (not answered by the memo table).
    pub fresh_evaluations: usize,
    /// Evaluations answered by the within-run memo table.
    pub memo_hits: usize,
    /// Archive size after this generation (cumulative evaluations).
    pub evaluations_total: usize,
    /// Feasible configurations among this generation's evaluations.
    pub feasible: usize,
    /// Feasible evaluations of this generation left non-dominated in the
    /// objective space the search selects on (average energy, average
    /// latency, accuracy drop).
    pub front_size: usize,
    /// Best objective seen so far across the run; `None` until a
    /// feasible configuration exists (keeps JSON free of non-finite
    /// floats).
    pub best_objective: Option<f64>,
    /// Consecutive generations without improvement, after this one.
    pub stalled_generations: usize,
}

/// A consumer of per-generation search events.
pub trait TelemetrySink: Sync {
    /// Called once per generation, in generation order.
    fn on_generation(&self, event: GenerationEvent);
}

/// A sink that buffers events in memory — what the request pipeline
/// attaches to searches so traces can carry the generation stream.
#[derive(Debug, Default)]
pub struct GenerationBuffer {
    events: Mutex<Vec<GenerationEvent>>,
}

impl GenerationBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        GenerationBuffer::default()
    }

    /// Drains the buffered events in emission order.
    ///
    /// # Panics
    ///
    /// Panics when the buffer lock is poisoned.
    #[must_use]
    pub fn take(&self) -> Vec<GenerationEvent> {
        std::mem::take(&mut self.events.lock().expect("generation buffer poisoned"))
    }

    /// Number of buffered events.
    ///
    /// # Panics
    ///
    /// Panics when the buffer lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .expect("generation buffer poisoned")
            .len()
    }

    /// Whether no events have been buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for GenerationBuffer {
    fn on_generation(&self, event: GenerationEvent) {
        self.events
            .lock()
            .expect("generation buffer poisoned")
            .push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(generation: usize) -> GenerationEvent {
        GenerationEvent {
            generation,
            scheduled: 8,
            fresh_evaluations: 6,
            memo_hits: 2,
            evaluations_total: 8 * (generation + 1),
            feasible: 5,
            front_size: 3,
            best_objective: Some(0.25),
            stalled_generations: 0,
        }
    }

    #[test]
    fn buffer_preserves_emission_order_and_drains() {
        let buffer = GenerationBuffer::new();
        buffer.on_generation(event(0));
        buffer.on_generation(event(1));
        assert_eq!(buffer.len(), 2);
        let events = buffer.take();
        assert_eq!(
            events.iter().map(|e| e.generation).collect::<Vec<_>>(),
            [0, 1]
        );
        assert!(buffer.is_empty());
    }

    #[test]
    fn events_round_trip_through_serde() {
        let original = event(3);
        let json = serde_json::to_string(&original).expect("event serialises");
        let back: GenerationEvent = serde_json::from_str(&json).expect("event deserialises");
        assert_eq!(back, original);
    }
}
