//! Observability primitives for the Map-and-Conquer serving stack.
//!
//! The serving path (PR 5's staged `RequestPipeline`) needs more than
//! lifetime totals to drive the run-time management work the paper's
//! related literature builds on: tail-latency distributions, slow-request
//! forensics and per-generation search progress. This crate provides the
//! building blocks, deliberately free of any dependency on the rest of
//! the workspace so every layer (optimizer, runtime, wire, server) can
//! use them without cycles:
//!
//! * [`histogram`] — fixed-bucket log-scale latency histograms over
//!   sharded atomics: lock-free recording, mergeable snapshots, exact
//!   quantile *bounds* (the true quantile provably lies inside the
//!   returned bucket, relative error ≤ 12.5%).
//! * [`registry`] — a [`MetricsRegistry`] of named counters, gauges and
//!   histograms with deterministic, serialisable snapshots.
//! * [`span`] — per-request [`SpanRecorder`]s producing structured
//!   [`RequestTrace`]s, retained in a bounded [`TraceRing`] with a
//!   separate ring for slow outliers.
//! * [`sink`] — the zero-cost-when-disabled [`TelemetrySink`] hook the
//!   search loop emits per-generation [`GenerationEvent`]s through.
//! * [`exposition`] — Prometheus-style text rendering and a
//!   line-by-line parser used by the CI smoke to validate it.
//!
//! Everything here *observes*: nothing feeds back into fingerprints,
//! search decisions or RNG streams, so bit-identity guarantees of the
//! instrumented code are untouched.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exposition;
pub mod histogram;
pub mod registry;
pub mod sink;
pub mod span;

pub use exposition::{find_sample, parse_prometheus, render_prometheus, PromSample};
pub use histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, BucketCount, Histogram,
    HistogramSnapshot, LatencySummary, QuantileBound, BUCKET_COUNT,
};
pub use registry::{
    Counter, CounterSample, Gauge, GaugeSample, HistogramSample, Label, MetricKey, MetricsRegistry,
    MetricsSnapshot,
};
pub use sink::{GenerationBuffer, GenerationEvent, TelemetrySink};
pub use span::{saturating_nanos, RequestTrace, SpanRecorder, StageSpan, TraceEvent, TraceRing};
