//! Prometheus-style text exposition and a strict line-by-line parser.
//!
//! [`render_prometheus`] turns a [`MetricsSnapshot`] into the
//! `text/plain; version=0.0.4` format: `# TYPE` comments, one sample
//! per line, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum`/`_count`. Histogram bucket bounds are emitted in nanoseconds
//! (the unit everything in this crate records), spelled out in the
//! metric names (`*_nanos`).
//!
//! [`parse_prometheus`] is the inverse's validator: it parses every
//! line back into `(name, labels, value)` samples and rejects anything
//! malformed, which is exactly what the CI metrics smoke asserts.

use crate::histogram::bucket_upper_bound;
use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name.
    pub name: String,
    /// `key="value"` labels in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

fn write_type(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last.clear();
        last.push_str(name);
    }
}

fn render_labels(label: Option<&crate::registry::Label>, extra: Option<(&str, &str)>) -> String {
    let mut parts = Vec::new();
    if let Some(label) = label {
        parts.push(format!("{}=\"{}\"", label.key, label.value));
    }
    if let Some((key, value)) = extra {
        parts.push(format!("{key}=\"{value}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a snapshot in Prometheus text format. Deterministic: sample
/// order follows the snapshot's (sorted) order.
#[must_use]
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last = String::new();

    for sample in &snapshot.counters {
        write_type(&mut out, &mut last, &sample.key.name, "counter");
        let labels = render_labels(sample.key.label.as_ref(), None);
        let _ = writeln!(out, "{}{labels} {}", sample.key.name, sample.value);
    }
    for sample in &snapshot.gauges {
        write_type(&mut out, &mut last, &sample.key.name, "gauge");
        let labels = render_labels(sample.key.label.as_ref(), None);
        let _ = writeln!(out, "{}{labels} {}", sample.key.name, sample.value);
    }
    for sample in &snapshot.histograms {
        let name = &sample.key.name;
        write_type(&mut out, &mut last, name, "histogram");
        let mut cumulative = 0u64;
        for bucket in &sample.histogram.buckets {
            cumulative += bucket.count;
            let upper = bucket_upper_bound(bucket.index);
            if upper == u64::MAX {
                // The catch-all bucket is the +Inf line below.
                continue;
            }
            let labels = render_labels(sample.key.label.as_ref(), Some(("le", &upper.to_string())));
            let _ = writeln!(out, "{name}_bucket{labels} {cumulative}");
        }
        let labels = render_labels(sample.key.label.as_ref(), Some(("le", "+Inf")));
        let _ = writeln!(out, "{name}_bucket{labels} {}", sample.histogram.count);
        let labels = render_labels(sample.key.label.as_ref(), None);
        let _ = writeln!(out, "{name}_sum{labels} {}", sample.histogram.sum_nanos);
        let _ = writeln!(out, "{name}_count{labels} {}", sample.histogram.count);
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_label_block(block: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    for pair in block.split(',') {
        let (key, rest) = pair
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: label `{pair}` has no `=`"))?;
        if !valid_metric_name(key) {
            return Err(format!("line {line_no}: invalid label key `{key}`"));
        }
        let value = rest
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {line_no}: label value `{rest}` is not quoted"))?;
        labels.push((key.to_string(), value.to_string()));
    }
    Ok(labels)
}

fn parse_value(text: &str, line_no: usize) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: `{other}` is not a number")),
    }
}

/// Parses Prometheus text exposition line by line, returning every
/// sample or the first violation (with its 1-based line number).
///
/// # Errors
///
/// Returns a description of the first malformed line: bad comment
/// shape, invalid metric name, unbalanced label braces, unquoted label
/// values or a non-numeric sample value.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            if let Some("TYPE") = words.next() {
                let name = words
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a metric name"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: invalid metric name `{name}`"));
                }
                let kind = words
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a kind"))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {line_no}: unknown metric kind `{kind}`"));
                }
            }
            continue;
        }
        let (series, value_text) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {line_no}: no value on sample line"))?;
        let value = parse_value(value_text.trim(), line_no)?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let block = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {line_no}: unbalanced label braces"))?;
                (name.to_string(), parse_label_block(block, line_no)?)
            }
        };
        if !valid_metric_name(&name) {
            return Err(format!("line {line_no}: invalid metric name `{name}`"));
        }
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Convenience: the first sample named `name` whose labels contain all
/// of `labels`.
#[must_use]
pub fn find_sample<'a>(
    samples: &'a [PromSample],
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a PromSample> {
    samples.iter().find(|sample| {
        sample.name == name
            && labels.iter().all(|(k, v)| {
                sample
                    .labels
                    .iter()
                    .any(|(key, value)| key == k && value == v)
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::registry::{MetricKey, MetricsRegistry};

    fn sample_snapshot() -> MetricsSnapshot {
        let registry = MetricsRegistry::new();
        registry
            .counter(MetricKey::plain("mnc_requests_total"))
            .add(5);
        registry
            .counter(MetricKey::labeled(
                "mnc_pipeline_stage_errors_total",
                "stage",
                "normalize",
            ))
            .add(2);
        registry
            .gauge(MetricKey::plain("mnc_cache_entries"))
            .set(12.0);
        let histogram = registry.histogram(MetricKey::labeled(
            "mnc_stage_duration_nanos",
            "stage",
            "search",
        ));
        for value in [900, 1_500, 2_000_000, 7] {
            histogram.record(value);
        }
        registry.snapshot()
    }

    #[test]
    fn rendered_text_parses_back_with_consistent_samples() {
        let snapshot = sample_snapshot();
        let text = render_prometheus(&snapshot);
        let samples = parse_prometheus(&text).expect("rendered exposition parses");
        assert!(!samples.is_empty());

        let requests = find_sample(&samples, "mnc_requests_total", &[]).expect("counter present");
        assert_eq!(requests.value, 5.0);
        let errors = find_sample(
            &samples,
            "mnc_pipeline_stage_errors_total",
            &[("stage", "normalize")],
        )
        .expect("labelled counter present");
        assert_eq!(errors.value, 2.0);

        // The histogram's +Inf bucket and _count agree with the
        // snapshot, and cumulative bucket counts never decrease.
        let count = find_sample(
            &samples,
            "mnc_stage_duration_nanos_count",
            &[("stage", "search")],
        )
        .expect("histogram count present");
        assert_eq!(count.value, 4.0);
        let inf = find_sample(
            &samples,
            "mnc_stage_duration_nanos_bucket",
            &[("stage", "search"), ("le", "+Inf")],
        )
        .expect("+Inf bucket present");
        assert_eq!(inf.value, 4.0);
        let mut last = 0.0;
        for sample in samples
            .iter()
            .filter(|s| s.name == "mnc_stage_duration_nanos_bucket")
        {
            assert!(sample.value >= last, "cumulative buckets regressed");
            last = sample.value;
        }
    }

    #[test]
    fn renders_are_deterministic() {
        assert_eq!(
            render_prometheus(&sample_snapshot()),
            render_prometheus(&sample_snapshot())
        );
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for (text, what) in [
            ("mnc_x{stage=\"a\" 1", "unbalanced braces"),
            ("mnc_x nope", "non-numeric value"),
            ("mnc_x{stage=a} 1", "unquoted label"),
            ("1bad_name 2", "invalid name"),
            ("# TYPE mnc_x rocket", "unknown kind"),
        ] {
            assert!(parse_prometheus(text).is_err(), "accepted {what}: {text}");
        }
    }

    #[test]
    fn parser_accepts_empty_and_comment_only_input() {
        assert_eq!(parse_prometheus("").expect("empty ok"), Vec::new());
        assert_eq!(
            parse_prometheus("# HELP mnc_x whatever\n\n# TYPE mnc_x counter\n")
                .expect("comments ok"),
            Vec::new()
        );
    }

    #[test]
    fn full_range_histogram_renders_and_parses() {
        let histogram = Histogram::new();
        histogram.record(0);
        histogram.record(u64::MAX);
        let mut snapshot = MetricsSnapshot::default();
        snapshot.histograms.push(crate::registry::HistogramSample {
            key: MetricKey::plain("mnc_extreme_nanos"),
            histogram: histogram.snapshot(),
        });
        let samples = parse_prometheus(&render_prometheus(&snapshot)).expect("parses");
        let inf = find_sample(&samples, "mnc_extreme_nanos_bucket", &[("le", "+Inf")])
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
    }
}
