//! A registry of named counters, gauges and histograms with
//! deterministic, serialisable snapshots.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s handed out
//! once at wiring time; the hot path touches only their atomics — the
//! registry lock is taken on registration and snapshot, never per
//! event. Snapshot order is the `BTreeMap` order of the metric keys, so
//! snapshots (and the Prometheus text rendered from them) are stable
//! across runs.

use crate::histogram::{Histogram, HistogramSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest observation of some level (f64 bits in an
/// atomic, so `set` is lock-free).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Replaces the gauge's value.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// One `key="value"` label on a metric.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label {
    /// Label key (e.g. `stage`).
    pub key: String,
    /// Label value (e.g. `normalize`).
    pub value: String,
}

/// A metric's identity: a name plus at most one label.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricKey {
    /// Metric name (Prometheus-style, e.g. `mnc_requests_total`).
    pub name: String,
    /// Optional label distinguishing series under the same name.
    pub label: Option<Label>,
}

impl MetricKey {
    /// A label-less key.
    #[must_use]
    pub fn plain(name: &str) -> Self {
        MetricKey {
            name: name.to_string(),
            label: None,
        }
    }

    /// A key with one `key="value"` label.
    #[must_use]
    pub fn labeled(name: &str, key: &str, value: &str) -> Self {
        MetricKey {
            name: name.to_string(),
            label: Some(Label {
                key: key.to_string(),
                value: value.to_string(),
            }),
        }
    }

    /// Renders `name` or `name{key="value"}`.
    #[must_use]
    pub fn render(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some(label) => format!("{}{{{}=\"{}\"}}", self.name, label.key, label.value),
        }
    }
}

/// A counter's value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// The metric's identity.
    pub key: MetricKey,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// A gauge's value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// The metric's identity.
    pub key: MetricKey,
    /// Gauge value at snapshot time.
    pub value: f64,
}

/// A histogram's merged state in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// The metric's identity.
    pub key: MetricKey,
    /// Merged shard state at snapshot time.
    pub histogram: HistogramSnapshot,
}

/// A point-in-time view of every registered metric, ordered by key.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, ascending by key.
    pub counters: Vec<CounterSample>,
    /// All gauges, ascending by key.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, ascending by key.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Appends a counter gathered outside the registry (e.g. cache
    /// totals owned by another subsystem).
    pub fn push_counter(&mut self, key: MetricKey, value: u64) {
        self.counters.push(CounterSample { key, value });
    }

    /// Appends a gauge gathered outside the registry.
    pub fn push_gauge(&mut self, key: MetricKey, value: f64) {
        self.gauges.push(GaugeSample { key, value });
    }

    /// Value of the label-less counter `name`, when present.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|sample| sample.key.name == name && sample.key.label.is_none())
            .map(|sample| sample.value)
    }

    /// Value of the counter `name{key="value"}`, when present.
    #[must_use]
    pub fn labeled_counter_value(&self, name: &str, key: &str, value: &str) -> Option<u64> {
        let wanted = MetricKey::labeled(name, key, value);
        self.counters
            .iter()
            .find(|sample| sample.key == wanted)
            .map(|sample| sample.value)
    }

    /// The label-less histogram `name`, when present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|sample| sample.key.name == name && sample.key.label.is_none())
            .map(|sample| &sample.histogram)
    }

    /// The histogram `name{key="value"}`, when present.
    #[must_use]
    pub fn labeled_histogram(
        &self,
        name: &str,
        key: &str,
        value: &str,
    ) -> Option<&HistogramSnapshot> {
        let wanted = MetricKey::labeled(name, key, value);
        self.histograms
            .iter()
            .find(|sample| sample.key == wanted)
            .map(|sample| &sample.histogram)
    }
}

/// The registry itself: three keyed families of metric handles.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `key`, creating it on first use.
    /// Repeated calls with the same key return the same handle.
    ///
    /// # Panics
    ///
    /// Panics when the registry lock is poisoned.
    #[must_use]
    pub fn counter(&self, key: MetricKey) -> Arc<Counter> {
        let mut counters = self.counters.lock().expect("counter registry poisoned");
        Arc::clone(counters.entry(key).or_default())
    }

    /// The gauge registered under `key`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when the registry lock is poisoned.
    #[must_use]
    pub fn gauge(&self, key: MetricKey) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock().expect("gauge registry poisoned");
        Arc::clone(gauges.entry(key).or_default())
    }

    /// The histogram registered under `key`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics when the registry lock is poisoned.
    #[must_use]
    pub fn histogram(&self, key: MetricKey) -> Arc<Histogram> {
        let mut histograms = self.histograms.lock().expect("histogram registry poisoned");
        Arc::clone(histograms.entry(key).or_default())
    }

    /// Snapshots every registered metric in key order.
    ///
    /// # Panics
    ///
    /// Panics when a registry lock is poisoned.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(key, counter)| CounterSample {
                key: key.clone(),
                value: counter.value(),
            })
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(key, gauge)| GaugeSample {
                key: key.clone(),
                value: gauge.value(),
            })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(key, histogram)| HistogramSample {
                key: key.clone(),
                histogram: histogram.snapshot(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let registry = MetricsRegistry::new();
        let a = registry.counter(MetricKey::plain("mnc_requests_total"));
        let b = registry.counter(MetricKey::plain("mnc_requests_total"));
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3, "both handles hit the same counter");

        let gauge = registry.gauge(MetricKey::plain("mnc_cache_entries"));
        gauge.set(17.0);
        assert_eq!(
            registry
                .gauge(MetricKey::plain("mnc_cache_entries"))
                .value(),
            17.0
        );
    }

    #[test]
    fn snapshot_is_ordered_and_round_trips_through_serde() {
        let registry = MetricsRegistry::new();
        registry.counter(MetricKey::plain("mnc_b_total")).add(2);
        registry.counter(MetricKey::plain("mnc_a_total")).inc();
        registry
            .counter(MetricKey::labeled("mnc_a_total", "stage", "search"))
            .add(5);
        registry
            .histogram(MetricKey::labeled(
                "mnc_stage_duration_nanos",
                "stage",
                "normalize",
            ))
            .record(1_500);

        let snapshot = registry.snapshot();
        let names: Vec<String> = snapshot.counters.iter().map(|s| s.key.render()).collect();
        // BTreeMap order: plain key sorts before the labelled one (None < Some).
        assert_eq!(
            names,
            vec![
                "mnc_a_total".to_string(),
                "mnc_a_total{stage=\"search\"}".to_string(),
                "mnc_b_total".to_string(),
            ]
        );
        assert_eq!(snapshot.counter_value("mnc_a_total"), Some(1));
        assert_eq!(
            snapshot.labeled_counter_value("mnc_a_total", "stage", "search"),
            Some(5)
        );
        assert_eq!(
            snapshot
                .labeled_histogram("mnc_stage_duration_nanos", "stage", "normalize")
                .map(|h| h.count),
            Some(1)
        );

        let json = serde_json::to_string(&snapshot).expect("snapshot serialises");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("snapshot deserialises");
        assert_eq!(back, snapshot);
    }
}
