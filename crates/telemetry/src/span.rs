//! Per-request span traces and the bounded rings retaining them.
//!
//! A [`SpanRecorder`] rides along with one request through the staged
//! pipeline, collecting stage spans, decision events (cache hit or
//! build, coalescing, warm-start seeding) and the search's generation
//! stream. At the end it freezes into a [`RequestTrace`], which a
//! [`TraceRing`] retains: every trace competes for the bounded `recent`
//! ring, and traces slower than a configurable threshold are *also* kept
//! in a separate `slow` ring so outlier forensics survive a burst of
//! fast traffic.
//!
//! All durations are recorded in integer nanoseconds and conversions
//! from [`Duration`] saturate (see [`saturating_nanos`]), so
//! sub-microsecond stages are never rounded to zero and pathological
//! durations cannot wrap.

use crate::sink::GenerationEvent;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A [`Duration`] as whole nanoseconds, saturating at `u64::MAX`
/// (≈ 584 years) instead of wrapping.
#[must_use]
pub fn saturating_nanos(duration: Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// One pipeline stage's execution inside a request.
///
/// Names and labels are `Cow<'static, str>`: the recorder borrows the
/// pipeline's static stage names on the hot path, while deserialised
/// traces (read back from the wire) own theirs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Stage name (e.g. `cache_lookup`).
    pub stage: Cow<'static, str>,
    /// Offset of the stage's start from the request's start, nanoseconds.
    pub enter_nanos: u64,
    /// How long the stage ran, nanoseconds.
    pub duration_nanos: u64,
}

/// A decision the pipeline took while serving the request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Offset from the request's start, nanoseconds.
    pub at_nanos: u64,
    /// Short machine-readable label (e.g. `cache_lookup`).
    pub label: Cow<'static, str>,
    /// Human-readable detail (e.g. `evaluator pool_hit`).
    pub detail: Cow<'static, str>,
}

/// A finished request's structured trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Monotonically increasing trace id (per ring).
    pub id: u64,
    /// Model preset the request named.
    pub model: String,
    /// Platform preset the request named.
    pub platform: String,
    /// Stage spans in execution order.
    pub stages: Vec<StageSpan>,
    /// Decision events in emission order.
    pub events: Vec<TraceEvent>,
    /// The search's per-generation telemetry stream, when enabled.
    pub generations: Vec<GenerationEvent>,
    /// End-to-end duration, nanoseconds.
    pub total_nanos: u64,
    /// The error that ended the request, when it failed.
    pub error: Option<String>,
    /// Whether `total_nanos` crossed the ring's slow threshold.
    pub slow: bool,
}

impl RequestTrace {
    /// End-to-end duration in microseconds.
    #[must_use]
    pub fn total_micros(&self) -> f64 {
        self.total_nanos as f64 / 1e3
    }

    /// Total nanoseconds spent in the named stage.
    #[must_use]
    pub fn stage_nanos(&self, stage: &str) -> u64 {
        self.stages
            .iter()
            .filter(|span| span.stage == stage)
            .map(|span| span.duration_nanos)
            .fold(0, u64::saturating_add)
    }
}

/// Collects one request's spans and events; freezes into a
/// [`RequestTrace`] via [`SpanRecorder::finish`].
#[derive(Debug)]
pub struct SpanRecorder {
    id: u64,
    model: String,
    platform: String,
    started: Instant,
    stages: Vec<StageSpan>,
    events: Vec<TraceEvent>,
    generations: Vec<GenerationEvent>,
}

impl SpanRecorder {
    /// Starts recording now.
    #[must_use]
    pub fn new(id: u64, model: &str, platform: &str) -> Self {
        SpanRecorder {
            id,
            model: model.to_string(),
            platform: platform.to_string(),
            started: Instant::now(),
            // A successful request records one span per pipeline stage
            // and a handful of decision events; sizing for that up front
            // keeps the hot path free of mid-request regrowth.
            stages: Vec::with_capacity(8),
            events: Vec::with_capacity(4),
            generations: Vec::new(),
        }
    }

    /// Records a just-finished stage of the given duration.
    pub fn stage(&mut self, stage: &'static str, duration: Duration) {
        let at = saturating_nanos(self.started.elapsed());
        let duration_nanos = saturating_nanos(duration);
        self.stages.push(StageSpan {
            stage: Cow::Borrowed(stage),
            enter_nanos: at.saturating_sub(duration_nanos),
            duration_nanos,
        });
    }

    /// Records a decision event.
    pub fn event(&mut self, label: &'static str, detail: impl Into<Cow<'static, str>>) {
        self.events.push(TraceEvent {
            at_nanos: saturating_nanos(self.started.elapsed()),
            label: Cow::Borrowed(label),
            detail: detail.into(),
        });
    }

    /// Attaches the search's generation stream.
    pub fn generations(&mut self, events: Vec<GenerationEvent>) {
        self.generations.extend(events);
    }

    /// Freezes into a trace, stamping the end-to-end duration and the
    /// slow flag (`slow_threshold_nanos == 0` disables it).
    #[must_use]
    pub fn finish(self, error: Option<String>, slow_threshold_nanos: u64) -> RequestTrace {
        let total_nanos = saturating_nanos(self.started.elapsed());
        RequestTrace {
            id: self.id,
            model: self.model,
            platform: self.platform,
            stages: self.stages,
            events: self.events,
            generations: self.generations,
            total_nanos,
            error,
            slow: slow_threshold_nanos > 0 && total_nanos >= slow_threshold_nanos,
        }
    }
}

#[derive(Debug, Default)]
struct Rings {
    recent: VecDeque<Arc<RequestTrace>>,
    slow: VecDeque<Arc<RequestTrace>>,
}

/// Bounded retention for finished traces: a `recent` ring every trace
/// passes through and a `slow` ring only threshold-crossing traces
/// enter, so outliers survive longer than the traffic around them.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    slow_capacity: usize,
    slow_threshold_nanos: u64,
    next_id: AtomicU64,
    rings: Mutex<Rings>,
}

impl TraceRing {
    /// A ring retaining up to `capacity` recent traces and
    /// `slow_capacity` slow ones (`capacity == 0` disables retention).
    #[must_use]
    pub fn new(capacity: usize, slow_capacity: usize, slow_threshold_nanos: u64) -> Self {
        TraceRing {
            capacity,
            slow_capacity,
            slow_threshold_nanos,
            next_id: AtomicU64::new(0),
            rings: Mutex::new(Rings::default()),
        }
    }

    /// Whether traces are retained at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Threshold above which a trace counts as slow, nanoseconds.
    #[must_use]
    pub fn slow_threshold_nanos(&self) -> u64 {
        self.slow_threshold_nanos
    }

    /// Hands out the next trace id.
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Retains a finished trace (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics when the ring lock is poisoned.
    pub fn push(&self, trace: RequestTrace) {
        if self.capacity == 0 {
            return;
        }
        let trace = Arc::new(trace);
        let mut rings = self.rings.lock().expect("trace ring poisoned");
        rings.recent.push_back(Arc::clone(&trace));
        while rings.recent.len() > self.capacity {
            rings.recent.pop_front();
        }
        if trace.slow && self.slow_capacity > 0 {
            rings.slow.push_back(trace);
            while rings.slow.len() > self.slow_capacity {
                rings.slow.pop_front();
            }
        }
    }

    /// The retained recent traces, oldest first.
    ///
    /// # Panics
    ///
    /// Panics when the ring lock is poisoned.
    #[must_use]
    pub fn recent(&self) -> Vec<Arc<RequestTrace>> {
        let rings = self.rings.lock().expect("trace ring poisoned");
        rings.recent.iter().cloned().collect()
    }

    /// The retained slow traces, oldest first.
    ///
    /// # Panics
    ///
    /// Panics when the ring lock is poisoned.
    #[must_use]
    pub fn slow(&self) -> Vec<Arc<RequestTrace>> {
        let rings = self.rings.lock().expect("trace ring poisoned");
        rings.slow.iter().cloned().collect()
    }

    /// The slowest trace still retained in either ring.
    ///
    /// # Panics
    ///
    /// Panics when the ring lock is poisoned.
    #[must_use]
    pub fn slowest(&self) -> Option<Arc<RequestTrace>> {
        let rings = self.rings.lock().expect("trace ring poisoned");
        rings
            .recent
            .iter()
            .chain(rings.slow.iter())
            .max_by_key(|trace| trace.total_nanos)
            .cloned()
    }

    /// `(recent, slow)` retention counts.
    ///
    /// # Panics
    ///
    /// Panics when the ring lock is poisoned.
    #[must_use]
    pub fn retained(&self) -> (usize, usize) {
        let rings = self.rings.lock().expect("trace ring poisoned");
        (rings.recent.len(), rings.slow.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total_nanos: u64, slow: bool) -> RequestTrace {
        RequestTrace {
            id,
            model: "m".to_string(),
            platform: "p".to_string(),
            stages: Vec::new(),
            events: Vec::new(),
            generations: Vec::new(),
            total_nanos,
            error: None,
            slow,
        }
    }

    #[test]
    fn sub_microsecond_stages_are_not_floored_to_zero() {
        // The regression this module exists to prevent: a 250 ns stage
        // used to vanish when durations were stored as whole
        // microseconds.
        let mut recorder = SpanRecorder::new(1, "m", "p");
        recorder.stage("fingerprint", Duration::from_nanos(250));
        let trace = recorder.finish(None, 0);
        assert_eq!(trace.stage_nanos("fingerprint"), 250);
        assert!(trace.stages[0].duration_nanos > 0);
    }

    #[test]
    fn duration_conversion_saturates_instead_of_wrapping() {
        assert_eq!(saturating_nanos(Duration::MAX), u64::MAX);
        assert_eq!(saturating_nanos(Duration::from_nanos(u64::MAX)), u64::MAX);
        assert_eq!(saturating_nanos(Duration::from_nanos(7)), 7);
        // Accumulating past the ceiling stays pinned there.
        let mut recorder = SpanRecorder::new(1, "m", "p");
        recorder.stage("search", Duration::MAX);
        recorder.stage("search", Duration::from_secs(1));
        let trace = recorder.finish(None, 0);
        assert_eq!(trace.stage_nanos("search"), u64::MAX);
    }

    #[test]
    fn ring_bounds_retention_and_keeps_slow_outliers() {
        let ring = TraceRing::new(3, 2, 1_000);
        for id in 0..6 {
            // Traces 0 and 4 are slow; the rest are fast.
            let slow = id % 4 == 0;
            ring.push(trace(id, if slow { 5_000 + id } else { 10 }, slow));
        }
        let (recent, slow) = ring.retained();
        assert_eq!(recent, 3, "recent ring is bounded");
        assert_eq!(slow, 2, "slow ring keeps the outliers");
        let recent_ids: Vec<u64> = ring.recent().iter().map(|t| t.id).collect();
        assert_eq!(recent_ids, [3, 4, 5], "oldest traces evicted first");
        // Trace 0 fell out of `recent` but survives in `slow`.
        let slow_ids: Vec<u64> = ring.slow().iter().map(|t| t.id).collect();
        assert_eq!(slow_ids, [0, 4]);
        assert_eq!(ring.slowest().map(|t| t.id), Some(4));
    }

    #[test]
    fn disabled_ring_retains_nothing() {
        let ring = TraceRing::new(0, 8, 1);
        assert!(!ring.enabled());
        ring.push(trace(1, u64::MAX, true));
        assert_eq!(ring.retained(), (0, 0));
        assert!(ring.slowest().is_none());
    }

    #[test]
    fn finish_stamps_the_slow_flag_from_the_threshold() {
        let recorder = SpanRecorder::new(9, "m", "p");
        std::thread::sleep(Duration::from_millis(2));
        let trace = recorder.finish(Some("boom".to_string()), 1);
        assert!(trace.slow, "any positive total crosses a 1 ns threshold");
        assert_eq!(trace.error.as_deref(), Some("boom"));
        assert!(trace.total_micros() > 0.0);

        let recorder = SpanRecorder::new(10, "m", "p");
        let trace = recorder.finish(None, u64::MAX);
        assert!(!trace.slow);
    }

    #[test]
    fn traces_round_trip_through_serde() {
        let mut recorder = SpanRecorder::new(2, "visformer", "orin");
        recorder.stage("normalize", Duration::from_nanos(800));
        recorder.event("cache_lookup", "evaluator pool_hit");
        let original = recorder.finish(None, 0);
        let json = serde_json::to_string(&original).expect("trace serialises");
        let back: RequestTrace = serde_json::from_str(&json).expect("trace deserialises");
        assert_eq!(back, original);
    }
}
