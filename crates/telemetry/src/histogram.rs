//! Fixed-bucket log-scale latency histograms over sharded atomics.
//!
//! Values (nanoseconds) 0–15 get exact buckets; every larger value lands
//! in one of eight sub-buckets per power of two, so a bucket's width is
//! at most 1/8 of its lower bound — quantile *bounds* read back from a
//! snapshot bracket the true quantile with ≤ 12.5% relative error.
//! Recording is a handful of relaxed atomic ops on a per-thread shard;
//! snapshots merge the shards and are themselves mergeable, so
//! histograms from several services (or several snapshots over time)
//! aggregate without loss.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Values below this get one exact bucket each.
const DIRECT_BUCKETS: usize = 16;
/// Sub-buckets per power of two above the direct range.
const SUB_BUCKETS: usize = 8;
/// First octave covered by the log-scale range (2^4 = 16).
const FIRST_OCTAVE: u32 = 4;
/// Independent atomic shards recording threads spread over.
const SHARDS: usize = 8;

/// Total number of buckets: 16 exact + 8 per octave for octaves 4–63.
pub const BUCKET_COUNT: usize = DIRECT_BUCKETS + (64 - FIRST_OCTAVE as usize) * SUB_BUCKETS;

/// The bucket a value lands in. Total order: higher values never map to
/// lower buckets.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < DIRECT_BUCKETS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros();
    let sub = ((value >> (octave - 3)) & 0x7) as usize;
    DIRECT_BUCKETS + (octave - FIRST_OCTAVE) as usize * SUB_BUCKETS + sub
}

/// Smallest value mapping to `index`.
///
/// # Panics
///
/// Panics when `index >= BUCKET_COUNT`.
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(index < BUCKET_COUNT, "bucket index {index} out of range");
    if index < DIRECT_BUCKETS {
        return index as u64;
    }
    let offset = index - DIRECT_BUCKETS;
    let octave = (offset / SUB_BUCKETS) as u32 + FIRST_OCTAVE;
    let sub = (offset % SUB_BUCKETS) as u64;
    (1u64 << octave) + (sub << (octave - 3))
}

/// Largest value mapping to `index` (`u64::MAX` for the last bucket).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

/// Picks a stable per-thread shard slot so concurrent recorders rarely
/// contend on the same cache lines.
fn shard_slot() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut value = slot.get();
        if value == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            value = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(value);
        }
        value
    })
}

/// One shard's bucket counts.
#[derive(Debug)]
struct Shard {
    counts: Vec<AtomicU64>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            counts: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A concurrent fixed-bucket log-scale histogram of nanosecond values.
#[derive(Debug)]
pub struct Histogram {
    shards: Vec<Shard>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value — a handful of relaxed atomic ops on the
    /// calling thread's shard.
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_slot()];
        shard.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of recorded values (cheap — one atomic load).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (cheap — one atomic load).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Merges all shards into a serialisable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = vec![0u64; BUCKET_COUNT];
        for shard in &self.shards {
            for (slot, count) in merged.iter_mut().zip(&shard.counts) {
                *slot += count.load(Ordering::Relaxed);
            }
        }
        let buckets: Vec<BucketCount> = merged
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| BucketCount { index, count })
            .collect();
        let count: u64 = buckets.iter().map(|b| b.count).sum();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum_nanos: self.sum.load(Ordering::Relaxed),
            min_nanos: if count == 0 { 0 } else { min },
            max_nanos: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index (see [`bucket_lower_bound`] / [`bucket_upper_bound`]).
    pub index: usize,
    /// Number of recorded values in the bucket.
    pub count: u64,
}

/// Bounds bracketing a requested quantile: the true quantile of the
/// recorded values lies in `lower_nanos..=upper_nanos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileBound {
    /// Inclusive lower bound in nanoseconds.
    pub lower_nanos: u64,
    /// Inclusive upper bound in nanoseconds.
    pub upper_nanos: u64,
}

/// A merged, serialisable view of a [`Histogram`]: sparse non-empty
/// buckets plus count/sum/min/max.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values in nanoseconds.
    pub sum_nanos: u64,
    /// Smallest recorded value (0 when empty).
    pub min_nanos: u64,
    /// Largest recorded value (0 when empty).
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// Folds `other` into `self`; the result is exactly the snapshot a
    /// single histogram fed both value streams would produce.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<BucketCount> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() && j < other.buckets.len() {
            let (x, y) = (self.buckets[i], other.buckets[j]);
            if x.index == y.index {
                merged.push(BucketCount {
                    index: x.index,
                    count: x.count + y.count,
                });
                i += 1;
                j += 1;
            } else if x.index < y.index {
                merged.push(x);
                i += 1;
            } else {
                merged.push(y);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.buckets[i..]);
        merged.extend_from_slice(&other.buckets[j..]);
        if other.count > 0 {
            self.min_nanos = if self.count == 0 {
                other.min_nanos
            } else {
                self.min_nanos.min(other.min_nanos)
            };
            self.max_nanos = self.max_nanos.max(other.max_nanos);
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Bounds bracketing the `q`-quantile (nearest-rank definition) of
    /// the recorded values, tightened by the exact min/max. `None` when
    /// the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<QuantileBound> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for bucket in &self.buckets {
            seen += bucket.count;
            if seen >= rank {
                let lower = bucket_lower_bound(bucket.index).max(self.min_nanos);
                let upper = bucket_upper_bound(bucket.index).min(self.max_nanos);
                return Some(QuantileBound {
                    lower_nanos: lower.min(upper),
                    upper_nanos: upper,
                });
            }
        }
        None
    }
}

/// The quantile digest of one latency histogram in microseconds — what
/// crosses the wire and lands in JSON reports. Quantile values are the
/// *upper* bound of the bracketing bucket (a conservative estimate, ≤
/// 12.5% above the true quantile).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Metric this summarises (e.g. a pipeline stage name).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Median upper bound in microseconds.
    pub p50_micros: f64,
    /// 99th-percentile upper bound in microseconds.
    pub p99_micros: f64,
    /// 99.9th-percentile upper bound in microseconds.
    pub p999_micros: f64,
    /// Exact mean in microseconds.
    pub mean_micros: f64,
    /// Exact maximum in microseconds.
    pub max_micros: f64,
}

impl LatencySummary {
    /// Digests a snapshot. All fields are zero when it is empty.
    #[must_use]
    pub fn from_snapshot(name: &str, snapshot: &HistogramSnapshot) -> Self {
        let upper = |q: f64| {
            snapshot
                .quantile(q)
                .map_or(0.0, |bound| bound.upper_nanos as f64 / 1e3)
        };
        LatencySummary {
            name: name.to_string(),
            count: snapshot.count,
            p50_micros: upper(0.50),
            p99_micros: upper(0.99),
            p999_micros: upper(0.999),
            mean_micros: snapshot.mean_nanos() / 1e3,
            max_micros: snapshot.max_nanos as f64 / 1e3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_bounds_partition_the_value_space() {
        // Every bucket's bounds are consistent and adjacent buckets abut.
        for index in 0..BUCKET_COUNT {
            let lower = bucket_lower_bound(index);
            let upper = bucket_upper_bound(index);
            assert!(lower <= upper, "bucket {index}: {lower} > {upper}");
            assert_eq!(bucket_index(lower), index);
            assert_eq!(bucket_index(upper), index);
            if index + 1 < BUCKET_COUNT {
                assert_eq!(bucket_lower_bound(index + 1), upper + 1);
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        // Above the exact range a bucket is never wider than 1/8 of its
        // lower bound — the ≤12.5% quantile error the docs promise.
        for index in DIRECT_BUCKETS..BUCKET_COUNT - 1 {
            let lower = bucket_lower_bound(index) as f64;
            let upper = bucket_upper_bound(index) as f64;
            assert!((upper - lower) / lower <= 0.125 + 1e-12, "bucket {index}");
        }
    }

    #[test]
    fn empty_histogram_snapshot_is_empty() {
        let snapshot = Histogram::new().snapshot();
        assert_eq!(snapshot.count, 0);
        assert_eq!(snapshot.min_nanos, 0);
        assert_eq!(snapshot.max_nanos, 0);
        assert!(snapshot.quantile(0.5).is_none());
        let summary = LatencySummary::from_snapshot("empty", &snapshot);
        assert_eq!(summary.count, 0);
        assert_eq!(summary.p99_micros, 0.0);
    }

    #[test]
    fn concurrent_recording_never_loses_counts() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let histogram = Histogram::new();
        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let histogram = &histogram;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread values across the direct and log ranges.
                        histogram.record(i.wrapping_mul(2_654_435_761 + thread as u64) % (1 << 34));
                    }
                });
            }
        });
        let expected = THREADS as u64 * PER_THREAD;
        assert_eq!(histogram.count(), expected);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, expected, "merged shards lost counts");
        let bucket_total: u64 = snapshot.buckets.iter().map(|b| b.count).sum();
        assert_eq!(bucket_total, expected);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let histogram = Histogram::new();
        for value in [0, 1, 15, 16, 1_000, 123_456_789, u64::MAX] {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        let json = serde_json::to_string(&snapshot).expect("snapshot serialises");
        let back: HistogramSnapshot = serde_json::from_str(&json).expect("snapshot deserialises");
        assert_eq!(back, snapshot);
    }

    fn true_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_quantile_bounds_bracket_the_true_quantile(
            samples in proptest::collection::vec(0u64..50_000_000_000, 1..300),
            q in 0.001f64..0.9995,
        ) {
            let histogram = Histogram::new();
            for &sample in &samples {
                histogram.record(sample);
            }
            let snapshot = histogram.snapshot();
            prop_assert_eq!(snapshot.count, samples.len() as u64);
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let truth = true_quantile(&sorted, q);
            let bound = snapshot.quantile(q).expect("non-empty histogram");
            prop_assert!(
                bound.lower_nanos <= truth && truth <= bound.upper_nanos,
                "q={} truth={} outside [{}, {}]",
                q, truth, bound.lower_nanos, bound.upper_nanos
            );
        }

        #[test]
        fn prop_merged_snapshots_match_a_single_histogram(
            left in proptest::collection::vec(0u64..10_000_000_000, 0..150),
            right in proptest::collection::vec(0u64..10_000_000_000, 0..150),
        ) {
            let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
            for &v in &left {
                a.record(v);
                all.record(v);
            }
            for &v in &right {
                b.record(v);
                all.record(v);
            }
            let mut merged = a.snapshot();
            merged.merge(&b.snapshot());
            prop_assert_eq!(&merged, &all.snapshot());
            // Quantile bounds of the merged snapshot still bracket the
            // true quantile of the concatenated samples.
            if !left.is_empty() || !right.is_empty() {
                let mut sorted: Vec<u64> = left.iter().chain(&right).copied().collect();
                sorted.sort_unstable();
                for q in [0.5, 0.99, 0.999] {
                    let truth = true_quantile(&sorted, q);
                    let bound = merged.quantile(q).expect("non-empty merge");
                    prop_assert!(bound.lower_nanos <= truth && truth <= bound.upper_nanos);
                }
            }
        }
    }
}
