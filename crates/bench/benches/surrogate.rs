//! Criterion benchmarks of the surrogate predictor: benchmark-dataset
//! generation, gradient-boosted-tree training and single-query prediction
//! (the operation the search issues thousands of times per generation when
//! the surrogate estimator is selected).

use criterion::{criterion_group, criterion_main, Criterion};
use mnc_mpsoc::{Platform, WorkloadClass};
use mnc_nn::SliceCost;
use mnc_predictor::{
    BenchmarkDataset, DatasetConfig, GbtConfig, PerformancePredictor, QueryFeatures,
};
use std::hint::black_box;

fn bench_surrogate(c: &mut Criterion) {
    let platform = Platform::agx_xavier();
    let dataset_config = DatasetConfig {
        samples: 1500,
        seed: 5,
        noise_std: 0.05,
        train_fraction: 0.8,
    };

    let mut group = c.benchmark_group("surrogate");
    group.sample_size(10);
    group.bench_function("dataset_generation/1500", |b| {
        b.iter(|| {
            BenchmarkDataset::generate(black_box(&platform), black_box(&dataset_config))
                .expect("dataset generation succeeds")
        })
    });

    let dataset = BenchmarkDataset::generate(&platform, &dataset_config).expect("dataset");
    group.bench_function("gbt_training/fast", |b| {
        b.iter(|| {
            PerformancePredictor::from_dataset(black_box(&dataset), &GbtConfig::fast())
                .expect("training succeeds")
        })
    });

    let predictor =
        PerformancePredictor::from_dataset(&dataset, &GbtConfig::fast()).expect("training");
    let cu = &platform.compute_units()[0];
    let query = QueryFeatures::new(
        SliceCost {
            macs: 5e7,
            flops: 1e8,
            weight_bytes: 2e6,
            input_bytes: 4e5,
            output_bytes: 4e5,
        },
        WorkloadClass::Convolution,
        cu,
        cu.max_dvfs(),
    );
    group.bench_function("predict/single_query", |b| {
        b.iter(|| predictor.predict(black_box(&query)))
    });
    group.finish();
}

criterion_group!(benches, bench_surrogate);
criterion_main!(benches);
