//! Criterion benchmarks of the configuration evaluator: the cost of one
//! end-to-end evaluation (dynamic transformation + concurrent performance
//! model + accuracy/exit model) for the paper's two architectures, and of
//! its main sub-steps. These measure the framework itself (the paper's
//! search performs 12 000 of these evaluations).

use criterion::{criterion_group, criterion_main, Criterion};
use mnc_core::{Estimator, EvaluatorBuilder, MappingConfig};
use mnc_dynamic::DynamicNetwork;
use mnc_mpsoc::Platform;
use mnc_nn::models::{vgg19, visformer, ModelPreset};
use std::hint::black_box;

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator");
    group.sample_size(30);
    for (name, network) in [
        ("visformer", visformer(ModelPreset::cifar100())),
        ("vgg19", vgg19(ModelPreset::cifar100())),
    ] {
        let platform = Platform::agx_xavier();
        let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
            .validation_samples(2000)
            .build()
            .expect("evaluator preset is valid");
        let config = MappingConfig::uniform(&network, &platform).expect("uniform config");
        group.bench_function(format!("evaluate/{name}"), |b| {
            b.iter(|| {
                evaluator
                    .evaluate(black_box(&config))
                    .expect("evaluation succeeds")
            })
        });

        let dynamic = DynamicNetwork::transform(&network, &config.partition, &config.indicator)
            .expect("transform succeeds");
        group.bench_function(format!("transform/{name}"), |b| {
            b.iter(|| {
                DynamicNetwork::transform(
                    black_box(&network),
                    black_box(&config.partition),
                    black_box(&config.indicator),
                )
                .expect("transform succeeds")
            })
        });
        group.bench_function(format!("perf_model/{name}"), |b| {
            b.iter(|| {
                mnc_core::perf::evaluate_performance(
                    black_box(&dynamic),
                    black_box(&config),
                    black_box(&platform),
                    &Estimator::Analytic,
                )
                .expect("performance model succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluate);
criterion_main!(benches);
