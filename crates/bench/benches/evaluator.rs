//! Criterion benchmarks of the configuration evaluator: the cost of one
//! end-to-end evaluation (dynamic transformation + concurrent performance
//! model + accuracy/exit model) for the paper's two architectures, of its
//! main sub-steps, and of the fast path against the retained reference
//! pipeline (`evaluate` vs `evaluate_reference`, tabled vs dispatched
//! performance model, closed-form vs per-sample accuracy). These measure
//! the framework itself (the paper's search performs 12 000 of these
//! evaluations); `evaluator_fastpath` (a bin in this crate) records the
//! same comparison into `results/`.

use criterion::{criterion_group, criterion_main, Criterion};
use mnc_core::{CostTable, Estimator, EvaluatorBuilder, MappingConfig};
use mnc_dynamic::DynamicNetwork;
use mnc_mpsoc::Platform;
use mnc_nn::models::{vgg19, visformer, ModelPreset};
use std::hint::black_box;

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator");
    group.sample_size(30);
    for (name, network) in [
        ("visformer", visformer(ModelPreset::cifar100())),
        ("vgg19", vgg19(ModelPreset::cifar100())),
    ] {
        let platform = Platform::agx_xavier();
        let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
            .validation_samples(2000)
            .build()
            .expect("evaluator preset is valid");
        let config = MappingConfig::uniform(&network, &platform).expect("uniform config");
        group.bench_function(format!("evaluate/{name}"), |b| {
            b.iter(|| {
                evaluator
                    .evaluate(black_box(&config))
                    .expect("evaluation succeeds")
            })
        });
        group.bench_function(format!("evaluate_reference/{name}"), |b| {
            b.iter(|| {
                evaluator
                    .evaluate_reference(black_box(&config))
                    .expect("reference evaluation succeeds")
            })
        });

        let dynamic = DynamicNetwork::transform(&network, &config.partition, &config.indicator)
            .expect("transform succeeds");
        group.bench_function(format!("transform/{name}"), |b| {
            b.iter(|| {
                DynamicNetwork::transform(
                    black_box(&network),
                    black_box(&config.partition),
                    black_box(&config.indicator),
                )
                .expect("transform succeeds")
            })
        });
        group.bench_function(format!("perf_model/{name}"), |b| {
            b.iter(|| {
                mnc_core::perf::evaluate_performance(
                    black_box(&dynamic),
                    black_box(&config),
                    black_box(&platform),
                    &Estimator::Analytic,
                )
                .expect("performance model succeeds")
            })
        });
        let table = CostTable::build(&network, &platform);
        group.bench_function(format!("perf_model_tabled/{name}"), |b| {
            b.iter(|| {
                mnc_core::perf::evaluate_performance_tabled(
                    black_box(&dynamic),
                    black_box(&config),
                    black_box(&platform),
                    black_box(&table),
                )
                .expect("tabled performance model succeeds")
            })
        });

        let accuracy = evaluator.accuracy_model();
        let validation = mnc_dynamic::SyntheticValidationSet::cifar100_like(3);
        validation.difficulty_index(); // amortised once per evaluator in practice
        group.bench_function(format!("accuracy_fast/{name}"), |b| {
            b.iter(|| accuracy.evaluate(black_box(&dynamic), black_box(&validation)))
        });
        group.bench_function(format!("accuracy_reference/{name}"), |b| {
            b.iter(|| accuracy.evaluate_reference(black_box(&dynamic), black_box(&validation)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_evaluate);
criterion_main!(benches);
