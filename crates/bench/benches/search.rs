//! Criterion benchmarks of the evolutionary search: the cost of one small
//! search (a few generations) and of genome decoding, on the Visformer /
//! AGX Xavier workload used throughout the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use mnc_core::EvaluatorBuilder;
use mnc_mpsoc::Platform;
use mnc_nn::models::{visformer, ModelPreset};
use mnc_optim::{Genome, MappingSearch, SearchConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
        .validation_samples(1000)
        .build()
        .expect("evaluator preset is valid");

    let mut group = c.benchmark_group("search");
    group.sample_size(10);

    group.bench_function("genome_decode/visformer", |b| {
        let mut rng = StdRng::seed_from_u64(11);
        let genome = Genome::random(&network, &platform, &mut rng);
        b.iter(|| {
            genome
                .decode(black_box(&network), black_box(&platform))
                .expect("decodes")
        })
    });

    group.bench_function("evolution/3gen_x_12", |b| {
        let config = SearchConfig {
            generations: 3,
            population_size: 12,
            parallel: false,
            seed: 3,
            ..SearchConfig::fast()
        };
        b.iter(|| {
            MappingSearch::new(black_box(&evaluator), config)
                .run()
                .expect("search succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
