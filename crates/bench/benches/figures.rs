//! Criterion benchmarks of the per-figure building blocks: the single-CU
//! baselines of Fig. 1 / Table II and the execution-trace simulation used
//! to validate the concurrent performance model.

use criterion::{criterion_group, criterion_main, Criterion};
use mnc_core::{Estimator, EvaluatorBuilder, ExecutionTrace, MappingConfig};
use mnc_dynamic::DynamicNetwork;
use mnc_mpsoc::{CuId, Platform};
use mnc_nn::models::{vgg19, visformer, ModelPreset};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let platform = Platform::agx_xavier();
    let mut group = c.benchmark_group("figures");
    group.sample_size(30);

    for (name, network) in [
        ("visformer", visformer(ModelPreset::cifar100())),
        ("vgg19", vgg19(ModelPreset::cifar100())),
    ] {
        group.bench_function(format!("single_cu_baseline/{name}"), |b| {
            b.iter(|| {
                platform
                    .single_cu_baseline(black_box(&network), CuId(0))
                    .expect("baseline succeeds")
            })
        });

        let evaluator = EvaluatorBuilder::new(network.clone(), platform.clone())
            .validation_samples(1000)
            .build()
            .expect("evaluator preset is valid");
        let config = MappingConfig::uniform(&network, &platform).expect("uniform config");
        let dynamic = DynamicNetwork::transform(&network, &config.partition, &config.indicator)
            .expect("transform succeeds");
        group.bench_function(format!("execution_trace/{name}"), |b| {
            b.iter(|| {
                ExecutionTrace::simulate(
                    black_box(&dynamic),
                    black_box(&config),
                    black_box(&platform),
                    &Estimator::Analytic,
                )
                .expect("simulation succeeds")
            })
        });
        group.bench_function(format!("static_distributed_baseline/{name}"), |b| {
            b.iter(|| {
                evaluator
                    .baseline_static_distributed(black_box(&config))
                    .expect("baseline succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
