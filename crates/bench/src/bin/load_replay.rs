//! Load replay against the reactor front-end.
//!
//! Boots a real `ReactorServer` on an ephemeral port and replays
//! synthetic arrival traces through it over the wire, reporting
//! end-to-end latency percentiles (p50/p99/p99.9) and the shed rate per
//! scenario to `results/load_replay.json`:
//!
//! - **arrival models** — `closed` (a fixed pool of connections, each
//!   sending its next request the moment the previous answer lands) and
//!   `open` (requests fired on a fixed schedule regardless of
//!   completions, one connection per arrival — the model that actually
//!   exposes queueing collapse);
//! - **request mixes** — `cold` (every request unique: all of them
//!   search), `hot` (one request repeated: after priming, every answer
//!   is a fast-path response-cache replay), `mixed` (70 % from a small
//!   hot set, 30 % unique cold);
//! - **overload** — a deliberately starved server (`queue_depth 0`)
//!   flooded with cold requests, measuring that shedding is structured;
//! - **multi-tenant** — a metered noisy neighbor flooding chunky
//!   searches next to two equal-weight well-behaved tenants, open-loop
//!   on a two-worker reactor: per-tenant p50/p99 and Jain's fairness
//!   index across the equal-weight tenants land in the JSON report, and
//!   the noisy tenant's budget refusals are structured `BudgetExhausted`
//!   answers, never dropped connections.
//!
//! ```text
//! cargo run --release -p mnc-bench --bin load_replay
//! cargo run --release -p mnc-bench --bin load_replay -- --smoke --json results/load_replay_ci.json
//! ```
//!
//! `--smoke` is the CI mode: small request counts plus hard assertions —
//! fast-path answers never reach the search pool (the hot scenario's
//! `searches_run` delta is zero while `fast_path_answered` counts every
//! request), every shed response is a structured `Overloaded` error (not
//! a dropped connection), and the hot-scenario p99 stays bounded. The
//! process exits non-zero on any violation.

use mnc_runtime::MappingRequest;
use mnc_server::{
    ClientError, ReactorConfig, ReactorHandle, ReactorServer, RequestLimits, ServerConfig,
    WireClient,
};
use mnc_wire::ErrorCode;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How one replayed request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Answered with a Pareto front.
    Answered,
    /// Shed with a structured `Overloaded` error.
    Shed,
    /// Refused with a structured `BudgetExhausted` error — the tenant's
    /// token bucket ran dry. A policy outcome, not a failure.
    BudgetExhausted,
    /// Any other failure — a protocol error, an unstructured disconnect.
    Failed,
}

/// One request's measurement.
#[derive(Debug, Clone, Copy)]
struct Sample {
    latency_us: f64,
    outcome: Outcome,
}

/// Latency percentiles over a scenario's answered requests.
#[derive(Debug, Clone, Copy, Serialize)]
struct Percentiles {
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    max_us: f64,
}

fn percentiles(samples: &mut [f64]) -> Percentiles {
    if samples.is_empty() {
        return Percentiles {
            p50_us: 0.0,
            p99_us: 0.0,
            p999_us: 0.0,
            max_us: 0.0,
        };
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let at = |q: f64| {
        let index = ((samples.len() as f64 - 1.0) * q).round() as usize;
        samples[index.min(samples.len() - 1)]
    };
    Percentiles {
        p50_us: at(0.50),
        p99_us: at(0.99),
        p999_us: at(0.999),
        max_us: *samples.last().expect("non-empty"),
    }
}

/// The per-scenario entry of the JSON report.
#[derive(Debug, Serialize)]
struct ScenarioMetrics {
    scenario: String,
    arrivals: String,
    mix: String,
    requests: usize,
    answered: usize,
    shed: usize,
    failed: usize,
    shed_rate: f64,
    elapsed_ms: f64,
    requests_per_s: f64,
    latency: Percentiles,
    /// Pipeline searches this scenario ran (delta over the scenario).
    searches_run: u64,
    /// Fast-path response-cache replays this scenario produced (delta).
    fast_path_answered: u64,
}

/// One tenant's slice of the multi-tenant scenario.
#[derive(Debug, Serialize)]
struct TenantLaneMetrics {
    tenant: String,
    requests: usize,
    answered: usize,
    shed: usize,
    budget_exhausted: usize,
    failed: usize,
    latency: Percentiles,
}

/// The multi-tenant scenario's entry of the JSON report.
#[derive(Debug, Serialize)]
struct MultiTenantMetrics {
    scenario: String,
    arrivals: String,
    requests: usize,
    elapsed_ms: f64,
    /// Jain's fairness index over the equal-weight well-behaved
    /// tenants' mean answered latencies: 1.0 = perfectly even service,
    /// 1/n = one tenant hogging it all.
    jain_fairness: f64,
    lanes: Vec<TenantLaneMetrics>,
}

/// The `--json` report tracked under `results/`.
#[derive(Debug, Serialize)]
struct ReplayReport {
    bench: String,
    smoke: bool,
    scenarios: Vec<ScenarioMetrics>,
    multi_tenant: MultiTenantMetrics,
}

fn base_request(seed: u64) -> MappingRequest {
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(300)
        .generations(2)
        .population_size(8)
        .seed(seed)
}

/// Which request the `i`-th arrival of a mix sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mix {
    Cold,
    Hot,
    Mixed,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Cold => "cold",
            Mix::Hot => "hot",
            Mix::Mixed => "mixed",
        }
    }

    /// Seeds below this bound form the hot set the server is primed with.
    const HOT_SEEDS: u64 = 4;

    fn request(self, index: usize) -> MappingRequest {
        match self {
            Mix::Cold => base_request(10_000 + index as u64),
            Mix::Hot => base_request(1),
            // 70 % hot-set replays, 30 % unique cold — deterministic, no
            // RNG needed: position in each block of 10 decides.
            Mix::Mixed => {
                if index % 10 < 7 {
                    base_request(1 + (index as u64 % Self::HOT_SEEDS))
                } else {
                    base_request(20_000 + index as u64)
                }
            }
        }
    }

    /// Primes the response cache so replays measure the fast path.
    fn prime(self, addr: SocketAddr) {
        let seeds: Vec<u64> = match self {
            Mix::Cold => return,
            Mix::Hot => vec![1],
            Mix::Mixed => (1..=Self::HOT_SEEDS).collect(),
        };
        let mut client = WireClient::connect(addr).expect("prime connect");
        for seed in seeds {
            client.submit(&base_request(seed)).expect("prime submit");
        }
    }
}

fn classify(result: Result<mnc_runtime::MappingResponse, ClientError>) -> Outcome {
    match result {
        Ok(_) => Outcome::Answered,
        Err(ClientError::Server(error)) if error.code == ErrorCode::Overloaded => Outcome::Shed,
        Err(ClientError::Server(error)) if error.code == ErrorCode::BudgetExhausted => {
            Outcome::BudgetExhausted
        }
        Err(_) => Outcome::Failed,
    }
}

/// Closed loop: `connections` clients, each sending back-to-back.
fn run_closed_loop(addr: SocketAddr, mix: Mix, requests: usize, connections: usize) -> Vec<Sample> {
    let cursor = Arc::new(AtomicUsize::new(0));
    let samples = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    std::thread::scope(|scope| {
        for _ in 0..connections {
            let cursor = Arc::clone(&cursor);
            let samples = Arc::clone(&samples);
            scope.spawn(move || {
                let mut client = match WireClient::connect(addr) {
                    Ok(client) => client,
                    Err(_) => return,
                };
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= requests {
                        return;
                    }
                    let request = mix.request(index);
                    let started = Instant::now();
                    let outcome = classify(client.submit(&request));
                    let sample = Sample {
                        latency_us: started.elapsed().as_secs_f64() * 1e6,
                        outcome,
                    };
                    samples.lock().expect("sample lock").push(sample);
                }
            });
        }
    });
    Arc::try_unwrap(samples)
        .expect("scenario threads joined")
        .into_inner()
        .expect("sample lock")
}

/// Open loop: arrivals on a fixed schedule, one connection per arrival.
/// Latency includes the connect, as a real one-shot client would see it.
fn run_open_loop(addr: SocketAddr, mix: Mix, requests: usize, rate_per_s: f64) -> Vec<Sample> {
    let interval = Duration::from_secs_f64(1.0 / rate_per_s);
    let samples = Arc::new(Mutex::new(Vec::with_capacity(requests)));
    let start = Instant::now() + Duration::from_millis(5);
    std::thread::scope(|scope| {
        for index in 0..requests {
            let samples = Arc::clone(&samples);
            scope.spawn(move || {
                let due = start + interval * index as u32;
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let request = mix.request(index);
                let started = Instant::now();
                let outcome = match WireClient::connect(addr) {
                    Ok(mut client) => classify(client.submit(&request)),
                    Err(_) => Outcome::Failed,
                };
                let sample = Sample {
                    latency_us: started.elapsed().as_secs_f64() * 1e6,
                    outcome,
                };
                samples.lock().expect("sample lock").push(sample);
            });
        }
    });
    Arc::try_unwrap(samples)
        .expect("scenario threads joined")
        .into_inner()
        .expect("sample lock")
}

/// Reads the lifetime pipeline counters the scenario deltas come from.
fn pipeline_counters(addr: SocketAddr) -> (u64, u64) {
    let mut client = WireClient::connect(addr).expect("stats connect");
    let stats = client.stats().expect("stats");
    (
        stats.pipeline.searches_run,
        stats.pipeline.fast_path_answered,
    )
}

struct Scenario {
    name: &'static str,
    arrivals: &'static str,
    mix: Mix,
    requests: usize,
    /// Closed-loop connection count, or open-loop arrival rate.
    connections: usize,
    rate_per_s: f64,
}

fn run_scenario(addr: SocketAddr, scenario: &Scenario) -> ScenarioMetrics {
    scenario.mix.prime(addr);
    let (searches_before, fast_before) = pipeline_counters(addr);
    let started = Instant::now();
    let samples = match scenario.arrivals {
        "closed" => run_closed_loop(addr, scenario.mix, scenario.requests, scenario.connections),
        "open" => run_open_loop(addr, scenario.mix, scenario.requests, scenario.rate_per_s),
        other => panic!("unknown arrival model {other}"),
    };
    let elapsed = started.elapsed();
    let (searches_after, fast_after) = pipeline_counters(addr);

    let answered = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Answered)
        .count();
    let shed = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Shed)
        .count();
    let failed = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Failed)
        .count();
    let mut answered_latencies: Vec<f64> = samples
        .iter()
        .filter(|s| s.outcome == Outcome::Answered)
        .map(|s| s.latency_us)
        .collect();
    let latency = percentiles(&mut answered_latencies);

    let metrics = ScenarioMetrics {
        scenario: scenario.name.to_string(),
        arrivals: scenario.arrivals.to_string(),
        mix: scenario.mix.name().to_string(),
        requests: samples.len(),
        answered,
        shed,
        failed,
        shed_rate: shed as f64 / samples.len().max(1) as f64,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        requests_per_s: samples.len() as f64 / elapsed.as_secs_f64(),
        latency,
        searches_run: searches_after - searches_before,
        fast_path_answered: fast_after - fast_before,
    };
    println!(
        "load_replay: {:<16} {:>4} reqs  {:>4} answered  {:>4} shed  p50 {:>9.1}us  p99 {:>9.1}us  p99.9 {:>9.1}us  ({:.1} req/s)",
        metrics.scenario,
        metrics.requests,
        metrics.answered,
        metrics.shed,
        metrics.latency.p50_us,
        metrics.latency.p99_us,
        metrics.latency.p999_us,
        metrics.requests_per_s,
    );
    metrics
}

/// One tenant's open-loop traffic in the multi-tenant scenario.
struct TenantTraffic {
    tenant: &'static str,
    /// Whether this lane counts toward the Jain fairness index (the
    /// equal-weight well-behaved tenants do; the noisy neighbor does
    /// not — its policy *intends* unequal service).
    equal_weight: bool,
    requests: usize,
    rate_per_s: f64,
    /// Seed base; globally unique per lane so no request coalesces or
    /// replays across tenants (tenancy is normalized out of cache keys).
    seed_base: u64,
    build: fn(u64) -> MappingRequest,
}

/// Jain's fairness index: (Σx)² / (n·Σx²), 1.0 = perfectly fair.
fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let squares: f64 = values.iter().map(|v| v * v).sum();
    if squares == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * squares)
}

/// The multi-tenant open-loop scenario: every lane fires on its own
/// schedule against one shared server; samples are tagged by lane.
fn run_multi_tenant(addr: SocketAddr, lanes: &[TenantTraffic]) -> (Vec<Vec<Sample>>, Duration) {
    let samples: Vec<Mutex<Vec<Sample>>> = lanes.iter().map(|_| Mutex::new(Vec::new())).collect();
    let start = Instant::now() + Duration::from_millis(5);
    std::thread::scope(|scope| {
        for (lane_index, lane) in lanes.iter().enumerate() {
            let interval = Duration::from_secs_f64(1.0 / lane.rate_per_s);
            for index in 0..lane.requests {
                let samples = &samples[lane_index];
                scope.spawn(move || {
                    let due = start + interval * index as u32;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let request = (lane.build)(lane.seed_base + index as u64).tenant(lane.tenant);
                    let started = Instant::now();
                    let outcome = match WireClient::connect(addr) {
                        Ok(mut client) => classify(client.submit(&request)),
                        Err(_) => Outcome::Failed,
                    };
                    let sample = Sample {
                        latency_us: started.elapsed().as_secs_f64() * 1e6,
                        outcome,
                    };
                    samples.lock().expect("sample lock").push(sample);
                });
            }
        }
    });
    let elapsed = start.elapsed();
    let samples = samples
        .into_iter()
        .map(|lane| lane.into_inner().expect("sample lock"))
        .collect();
    (samples, elapsed)
}

/// Runs the noisy-neighbor scenario on its own two-worker reactor with
/// a tenant policy table and folds the lanes into report metrics.
fn run_multi_tenant_scenario(scale: usize) -> MultiTenantMetrics {
    // The noisy neighbor floods chunky searches under a weight-1 lane
    // and a metered budget; the two well-behaved tenants send small
    // searches under equal weight-4 lanes. Two workers keep the pool
    // contended enough that scheduling, not idle capacity, decides who
    // waits.
    let tenants = mnc_runtime::TenantPolicyTable::from_json(
        r#"{
            "tenants": {
                "noisy": { "weight": 1, "evals_per_sec": 512, "burst": 2048 },
                "tenant_a": { "weight": 4 },
                "tenant_b": { "weight": 4 }
            }
        }"#,
    )
    .expect("tenant config parses");
    let handle = ReactorServer::bind(
        ServerConfig::default(),
        ReactorConfig {
            search_workers: 2,
            tenants,
            ..ReactorConfig::default()
        },
    )
    .expect("multi-tenant reactor binds")
    .spawn()
    .expect("multi-tenant reactor spawns");
    let addr = handle.addr();

    fn chunky(seed: u64) -> MappingRequest {
        // Estimated cost 8 × 64 = 512 evaluations: two weight-1 quanta,
        // so the noisy backlog cannot be drained inside one DRR visit.
        MappingRequest::new("tiny_cnn_cifar10", "dual_test")
            .validation_samples(300)
            .generations(63)
            .population_size(8)
            .seed(seed)
    }
    let lanes = [
        TenantTraffic {
            tenant: "noisy",
            equal_weight: false,
            requests: 30 * scale,
            rate_per_s: 100.0,
            seed_base: 50_000,
            build: chunky,
        },
        TenantTraffic {
            tenant: "tenant_a",
            equal_weight: true,
            requests: 10 * scale,
            rate_per_s: 25.0,
            seed_base: 60_000,
            build: base_request,
        },
        TenantTraffic {
            tenant: "tenant_b",
            equal_weight: true,
            requests: 10 * scale,
            rate_per_s: 25.0,
            seed_base: 70_000,
            build: base_request,
        },
    ];
    let (samples, elapsed) = run_multi_tenant(addr, &lanes);
    shutdown(handle);

    let mut rows = Vec::new();
    let mut equal_weight_means = Vec::new();
    for (lane, samples) in lanes.iter().zip(&samples) {
        let count = |outcome: Outcome| samples.iter().filter(|s| s.outcome == outcome).count();
        let mut answered_latencies: Vec<f64> = samples
            .iter()
            .filter(|s| s.outcome == Outcome::Answered)
            .map(|s| s.latency_us)
            .collect();
        if lane.equal_weight && !answered_latencies.is_empty() {
            equal_weight_means
                .push(answered_latencies.iter().sum::<f64>() / answered_latencies.len() as f64);
        }
        rows.push(TenantLaneMetrics {
            tenant: lane.tenant.to_string(),
            requests: samples.len(),
            answered: count(Outcome::Answered),
            shed: count(Outcome::Shed),
            budget_exhausted: count(Outcome::BudgetExhausted),
            failed: count(Outcome::Failed),
            latency: percentiles(&mut answered_latencies),
        });
    }
    let metrics = MultiTenantMetrics {
        scenario: "multi_tenant_noisy_neighbor".to_string(),
        arrivals: "open".to_string(),
        requests: rows.iter().map(|row| row.requests).sum(),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        jain_fairness: jain_index(&equal_weight_means),
        lanes: rows,
    };
    for row in &metrics.lanes {
        println!(
            "load_replay: tenant {:<9} {:>4} reqs  {:>4} answered  {:>4} budget-refused  {:>4} shed  p50 {:>9.1}us  p99 {:>9.1}us",
            row.tenant,
            row.requests,
            row.answered,
            row.budget_exhausted,
            row.shed,
            row.latency.p50_us,
            row.latency.p99_us,
        );
    }
    println!(
        "load_replay: jain fairness over equal-weight tenants: {:.4}",
        metrics.jain_fairness
    );
    metrics
}

fn spawn_server(reactor: ReactorConfig) -> ReactorHandle {
    ReactorServer::bind(
        ServerConfig {
            limits: RequestLimits::default(),
            ..ServerConfig::default()
        },
        reactor,
    )
    .expect("reactor binds")
    .spawn()
    .expect("reactor spawns")
}

fn shutdown(handle: ReactorHandle) {
    let mut client = WireClient::connect(handle.addr()).expect("shutdown connect");
    client.shutdown().expect("shutdown command");
    handle.join().expect("reactor stopped cleanly");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let json_path = args
        .iter()
        .position(|arg| arg == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| (!smoke).then(|| "results/load_replay.json".to_string()));

    let scale = if smoke { 1 } else { 4 };
    let scenarios = [
        Scenario {
            name: "closed_cold",
            arrivals: "closed",
            mix: Mix::Cold,
            requests: 24 * scale,
            connections: 4,
            rate_per_s: 0.0,
        },
        Scenario {
            name: "closed_hot",
            arrivals: "closed",
            mix: Mix::Hot,
            requests: 64 * scale,
            connections: 4,
            rate_per_s: 0.0,
        },
        Scenario {
            name: "closed_mixed",
            arrivals: "closed",
            mix: Mix::Mixed,
            requests: 40 * scale,
            connections: 4,
            rate_per_s: 0.0,
        },
        Scenario {
            name: "open_mixed",
            arrivals: "open",
            mix: Mix::Mixed,
            requests: 40 * scale,
            connections: 0,
            rate_per_s: 100.0,
        },
    ];

    // --- healthy server: latency percentiles per arrival model × mix ---
    let handle = spawn_server(ReactorConfig::default());
    let addr = handle.addr();
    println!(
        "load_replay: reactor on {addr} ({} scenarios)",
        scenarios.len() + 1
    );
    let mut results: Vec<ScenarioMetrics> = Vec::new();
    for scenario in &scenarios {
        results.push(run_scenario(addr, scenario));
    }
    shutdown(handle);

    // --- starved server: every search is shed, structurally -------------
    let handle = spawn_server(ReactorConfig {
        queue_depth: 0,
        ..ReactorConfig::default()
    });
    let overload = run_scenario(
        handle.addr(),
        &Scenario {
            name: "overload_cold",
            arrivals: "closed",
            mix: Mix::Cold,
            requests: 16 * scale,
            connections: 4,
            rate_per_s: 0.0,
        },
    );
    shutdown(handle);
    results.push(overload);

    // --- multi-tenant: noisy neighbor vs equal-weight tenants ------------
    let multi_tenant = run_multi_tenant_scenario(scale);

    // --- smoke assertions -------------------------------------------------
    let hot = results
        .iter()
        .find(|m| m.scenario == "closed_hot")
        .expect("hot scenario ran");
    let overload = results
        .iter()
        .find(|m| m.scenario == "overload_cold")
        .expect("overload scenario ran");
    // Fast-path answers never reach the search pool: the hot scenario
    // (fully primed) runs zero searches and replays every request.
    assert_eq!(
        hot.searches_run, 0,
        "a fast-path replay was enqueued to the search pool"
    );
    assert_eq!(
        hot.fast_path_answered, hot.answered as u64,
        "every hot answer came from the response cache"
    );
    assert_eq!(hot.shed + hot.failed, 0, "hot scenario was shed or failed");
    // Overload is shed structurally: every cold request on the starved
    // server got a parseable Overloaded error, none just lost its
    // connection.
    assert_eq!(overload.shed, overload.requests, "starved server shed all");
    assert_eq!(overload.failed, 0, "sheds were structured, not disconnects");
    if smoke {
        // Bounded fast-path tail. The bound is deliberately loose — it
        // catches the fast path regressing into the search path (three
        // orders of magnitude), not scheduler jitter.
        assert!(
            hot.latency.p99_us < 250_000.0,
            "hot p99 {}us blew the smoke bound",
            hot.latency.p99_us
        );
        // QoS keeps the well-behaved tenants whole next to the noisy
        // neighbor: everything they sent is answered, their tails stay
        // bounded (a starved lane would wait out the whole noisy
        // backlog), and service between the equal-weight tenants is
        // even. The noisy tenant's refusals are structured policy
        // answers, never dropped connections.
        for lane in &multi_tenant.lanes {
            assert_eq!(
                lane.failed, 0,
                "tenant {} saw unstructured failures",
                lane.tenant
            );
            if lane.tenant != "noisy" {
                assert_eq!(
                    lane.answered, lane.requests,
                    "well-behaved tenant {} lost requests to the noisy neighbor",
                    lane.tenant
                );
                assert!(
                    lane.latency.p99_us < 2_000_000.0,
                    "tenant {} p99 {}us blew the smoke bound",
                    lane.tenant,
                    lane.latency.p99_us
                );
            }
        }
        let noisy = multi_tenant
            .lanes
            .iter()
            .find(|lane| lane.tenant == "noisy")
            .expect("noisy lane ran");
        assert!(
            noisy.budget_exhausted >= 1,
            "the metered noisy neighbor was never budget-refused"
        );
        assert!(
            multi_tenant.jain_fairness >= 0.9,
            "jain fairness {:.4} below the 0.9 smoke floor",
            multi_tenant.jain_fairness
        );
        println!(
            "load_replay: smoke assertions held (fast path never searched, sheds structured, \
             p99 bounded, jain {:.4} >= 0.9, budget refusals structured)",
            multi_tenant.jain_fairness
        );
    }

    if let Some(path) = json_path {
        let report = ReplayReport {
            bench: "load_replay".to_string(),
            smoke,
            scenarios: results,
            multi_tenant,
        };
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(&path, json).expect("write report");
        println!("load_replay: report written to {path}");
    }
    println!("load_replay: done");
}
