//! Reproduces §VI-D: generalisation to the VGG-19 CNN — up to ~4.6x energy
//! gain and ~4.4x latency speedup over the single-CU baselines, with more
//! than 80% of the validation samples classified at earlier stages.
//!
//! ```text
//! MNC_BUDGET=ci cargo run -p mnc-bench --bin vgg19_generalization
//! ```

use mnc_bench::{
    format_factor, format_percent, pick_energy_oriented, print_table, run_search,
    single_cu_baselines, write_json, Budget, Workload,
};
use serde::Serialize;

#[derive(Serialize)]
struct GeneralizationSummary {
    strategy: String,
    accuracy: f64,
    average_energy_mj: f64,
    average_latency_ms: f64,
    energy_gain_vs_gpu: f64,
    speedup_vs_dla: f64,
    early_exit_fraction: f64,
    average_stages_executed: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let mut rows = Vec::new();

    for (strategy, limit, seed) in [
        ("no-constraint", None, 401u64),
        ("reuse<=75%", Some(0.75), 402),
        ("reuse<=50%", Some(0.50), 403),
    ] {
        let (evaluator, outcome) = run_search(Workload::Vgg19, limit, budget, seed)?;
        let (gpu, dla) = single_cu_baselines(&evaluator)?;
        if let Some(best) = pick_energy_oriented(&outcome) {
            rows.push(GeneralizationSummary {
                strategy: strategy.to_string(),
                accuracy: best.result.accuracy,
                average_energy_mj: best.result.average_energy_mj,
                average_latency_ms: best.result.average_latency_ms,
                energy_gain_vs_gpu: gpu.energy_mj / best.result.average_energy_mj,
                speedup_vs_dla: dla.latency_ms / best.result.average_latency_ms,
                early_exit_fraction: best.result.early_exit_fraction(),
                average_stages_executed: best.result.average_stages_executed,
            });
        }
    }

    print_table(
        "§VI-D — VGG-19 generalisation (energy-oriented picks, AGX Xavier)",
        &[
            "strategy",
            "top-1",
            "avg energy [mJ]",
            "avg latency [ms]",
            "energy gain vs GPU",
            "speedup vs DLA",
            "early exits",
            "avg stages",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.strategy.clone(),
                    format_percent(r.accuracy),
                    format!("{:.2}", r.average_energy_mj),
                    format!("{:.2}", r.average_latency_ms),
                    format_factor(r.energy_gain_vs_gpu),
                    format_factor(r.speedup_vs_dla),
                    format_percent(r.early_exit_fraction),
                    format!("{:.2}", r.average_stages_executed),
                ]
            })
            .collect::<Vec<_>>(),
    );

    println!("\nPaper reference (§VI-D): VGG-19's weight redundancy and large feature maps let Map-and-Conquer reach");
    println!("up to ~4.62x energy gain and ~4.44x latency speedup, with more than 80% of samples correctly classified");
    println!("at earlier stages; the dynamic VGG-19 even exceeds its static baseline accuracy (84.8% vs 80.55%).");

    write_json("vgg19_generalization", &rows);
    Ok(())
}
