//! Search-loop fast path vs the pre-fast-path loop, plus the surrogate
//! warm start.
//!
//! Two measurements, both on the acceptance workload (visformer on
//! `agx_xavier`, full 10 000-sample validation set):
//!
//! 1. **Loop speedup** — `MappingSearch::run` (within-run memoization,
//!    per-structure transform sharing, `Arc`-backed archive, skyline
//!    Pareto extraction) against `MappingSearch::run_reference` (every
//!    candidate evaluated afresh, deep-copied archive) with the pre-PR
//!    quadratic front extraction, at the **default** `SearchConfig`
//!    (the paper's 200 × 60 budget). Archives are asserted bit-identical
//!    before anything is timed; "end-to-end" covers what every consumer
//!    does with a search — run it, extract the feasible Pareto front,
//!    pick the best-by-objective configuration.
//!
//! 2. **Warm-start evaluations-to-front** — a cold search (seed B) is the
//!    baseline; a warm search with the same seed B but seeded from a
//!    prior seed-A search's Pareto elites (surrogate-ranked, exactly what
//!    `MappingService` does for `warm_start` requests) must reach the
//!    cold search's final best objective in strictly fewer evaluations
//!    and end with a best objective no worse. A service-level replay of
//!    the same shape records the request counters.
//!
//! ```text
//! cargo run --release -p mnc-bench --bin search_fastpath
//! cargo run --release -p mnc-bench --bin search_fastpath -- --smoke --json results/search_fastpath_ci.json
//! ```
//!
//! `--smoke` additionally asserts the acceptance bounds (bit-identity,
//! ≥3× end-to-end speedup, warm-start strictly-fewer-evaluations) for
//! CI. It keeps the full iteration count: the assertion rides on a
//! wall-clock ratio, and the interleaved min-of-N is what keeps it
//! stable on noisy shared runners (the whole bench costs a few seconds).

use mnc_core::{Evaluator, EvaluatorBuilder};
use mnc_mpsoc::Platform;
use mnc_nn::models::{visformer, ModelPreset};
use mnc_optim::{
    pareto_front_indices_reference, Genome, MappingSearch, SearchConfig, SearchOutcome,
};
use mnc_runtime::{MappingRequest, MappingService, SurrogateRanker};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

const MODEL: &str = "visformer_cifar100";
const PLATFORM: &str = "agx_xavier";
const VALIDATION_SAMPLES: usize = 10_000;

#[derive(Debug, Serialize)]
struct LoopReport {
    generations: usize,
    population_size: usize,
    evaluations_scheduled: usize,
    evaluations_performed: usize,
    memo_hits: usize,
    memo_hit_ratio: f64,
    timed_iterations: usize,
    reference_run_ms: f64,
    fast_run_ms: f64,
    run_speedup: f64,
    reference_end_to_end_ms: f64,
    fast_end_to_end_ms: f64,
    end_to_end_speedup: f64,
    bit_identical: bool,
}

#[derive(Debug, Serialize)]
struct WarmStartReport {
    generations: usize,
    population_size: usize,
    cold_evaluations: usize,
    cold_best_objective: f64,
    cold_evaluations_to_best: usize,
    warm_seeds: usize,
    warm_evaluations: usize,
    warm_best_objective: f64,
    warm_evaluations_to_cold_best: usize,
    service_cold_evaluations: usize,
    service_warm_evaluations: usize,
    service_warm_seeds: usize,
    service_warm_best_no_worse: bool,
}

#[derive(Debug, Serialize)]
struct SearchFastPathReport {
    bench: String,
    model: String,
    platform: String,
    validation_samples: usize,
    search_loop: LoopReport,
    warm_start: WarmStartReport,
    smoke: bool,
}

/// The pre-fast-path front extraction: feasible filter, per-point
/// `Vec<f64>` objective rows, quadratic dominance rescan — what
/// `SearchOutcome::pareto_front` did before the skyline sweep. Retained
/// here so the end-to-end baseline pays what the pre-PR consumer paid.
fn pareto_front_reference(outcome: &SearchOutcome) -> Vec<usize> {
    let feasible: Vec<_> = outcome
        .archive()
        .iter()
        .filter(|c| c.result.feasible)
        .collect();
    let points: Vec<Vec<f64>> = feasible
        .iter()
        .map(|c| vec![c.result.average_energy_mj, c.result.average_latency_ms])
        .collect();
    pareto_front_indices_reference(&points)
}

fn best_by_objective_reference(outcome: &SearchOutcome) -> Option<f64> {
    outcome
        .archive()
        .iter()
        .filter(|c| c.result.feasible)
        .map(|c| c.result.objective)
        .min_by(f64::total_cmp)
}

fn measure_loop(evaluator: &Evaluator, iterations: usize) -> LoopReport {
    let config = SearchConfig::default();

    // Bit-identity gate before timing anything.
    let fast = MappingSearch::new(evaluator, config).run().expect("fast");
    let reference = MappingSearch::new(evaluator, config)
        .run_reference()
        .expect("reference");
    assert_eq!(
        fast.archive().len(),
        reference.archive().len(),
        "archive lengths diverged"
    );
    for (a, b) in fast.archive().iter().zip(reference.archive()) {
        assert_eq!(a.genome, b.genome, "genome diverged");
        assert_eq!(a.config, b.config, "config diverged");
        assert_eq!(a.generation, b.generation, "generation diverged");
        assert_eq!(
            a.result.objective.to_bits(),
            b.result.objective.to_bits(),
            "objective bits diverged"
        );
        assert_eq!(
            a.result.average_energy_mj.to_bits(),
            b.result.average_energy_mj.to_bits()
        );
        assert_eq!(
            a.result.average_latency_ms.to_bits(),
            b.result.average_latency_ms.to_bits()
        );
    }
    // The skyline front must pick exactly the points the quadratic
    // rescan picks.
    let fast_front = fast.pareto_front();
    let reference_front = pareto_front_reference(&reference);
    assert_eq!(
        fast_front.len(),
        reference_front.len(),
        "front size diverged"
    );
    assert_eq!(
        fast.best_by_objective().map(|c| c.result.objective),
        best_by_objective_reference(&reference),
        "best-by-objective diverged"
    );

    // Interleave the two loops and keep each side's fastest iteration:
    // the run is deterministic, so iteration-to-iteration variance is
    // scheduler/throttling noise and the minimum is the honest cost on
    // the machine (the same methodology as taking the best of several
    // criterion samples). The gate above already warmed both paths.
    let mut reference_run_ms = f64::INFINITY;
    let mut reference_end_to_end_ms = f64::INFINITY;
    let mut fast_run_ms = f64::INFINITY;
    let mut fast_end_to_end_ms = f64::INFINITY;
    for _ in 0..iterations {
        let started = Instant::now();
        let outcome = MappingSearch::new(evaluator, config)
            .run_reference()
            .expect("reference");
        reference_run_ms = reference_run_ms.min(started.elapsed().as_secs_f64() * 1e3);
        let front = pareto_front_reference(&outcome);
        let best = best_by_objective_reference(&outcome);
        std::hint::black_box((front, best));
        reference_end_to_end_ms =
            reference_end_to_end_ms.min(started.elapsed().as_secs_f64() * 1e3);
        drop(outcome);

        let started = Instant::now();
        let outcome = MappingSearch::new(evaluator, config).run().expect("fast");
        fast_run_ms = fast_run_ms.min(started.elapsed().as_secs_f64() * 1e3);
        let front: Vec<_> = outcome.pareto_front();
        let best = outcome.best_by_objective().map(|c| c.result.objective);
        std::hint::black_box((front.len(), best));
        fast_end_to_end_ms = fast_end_to_end_ms.min(started.elapsed().as_secs_f64() * 1e3);
    }

    LoopReport {
        generations: config.generations,
        population_size: config.population_size,
        evaluations_scheduled: fast.evaluations(),
        evaluations_performed: fast.evaluations_performed(),
        memo_hits: fast.memo_hits(),
        memo_hit_ratio: fast.memo_hits() as f64 / fast.evaluations().max(1) as f64,
        timed_iterations: iterations,
        reference_run_ms,
        fast_run_ms,
        run_speedup: reference_run_ms / fast_run_ms.max(1e-9),
        reference_end_to_end_ms,
        fast_end_to_end_ms,
        end_to_end_speedup: reference_end_to_end_ms / fast_end_to_end_ms.max(1e-9),
        bit_identical: true,
    }
}

fn measure_warm_start(evaluator: &Evaluator, platform: &Platform) -> WarmStartReport {
    let base = SearchConfig {
        generations: 20,
        population_size: 24,
        seed: 1001,
        ..SearchConfig::default()
    };

    // A prior request's search (seed A) supplies the elites.
    let prior = MappingSearch::new(evaluator, base).run().expect("prior");
    let mut seeds: Vec<Arc<Genome>> = prior
        .pareto_front()
        .into_iter()
        .map(|c| Arc::clone(&c.genome))
        .collect();
    if let Some(best) = prior.best_by_objective() {
        seeds.push(Arc::clone(&best.genome));
    }
    // Surrogate-rank the seeds for the target platform, exactly as the
    // service's warm-start path does.
    let ranker = SurrogateRanker::train(platform).expect("ranker trains");
    ranker.rank(&mut seeds, evaluator.network(), platform);
    seeds.truncate(base.population_size / 2);

    // Cold baseline: seed B, no seeds.
    let cold_config = SearchConfig { seed: 2002, ..base };
    let cold = MappingSearch::new(evaluator, cold_config)
        .run()
        .expect("cold");
    let cold_best = cold
        .best_by_objective()
        .expect("cold search finds a feasible config")
        .result
        .objective;
    let cold_to_best = cold
        .evaluations_to_objective(cold_best)
        .expect("cold search reached its own best");

    // Warm: same seed B, same budget, seeded initial population.
    let warm_config = SearchConfig {
        warm_start: true,
        ..cold_config
    };
    let warm = MappingSearch::new(evaluator, warm_config)
        .with_seeds(seeds.clone())
        .run()
        .expect("warm");
    let warm_best = warm
        .best_by_objective()
        .expect("warm search finds a feasible config")
        .result
        .objective;
    let warm_to_cold_best = warm
        .evaluations_to_objective(cold_best)
        .expect("warm search reaches the cold best");

    // Service-level replay of the same shape: a prior request fills the
    // elite archive, a warm request with a third of the budget still ends
    // no worse than the cold full-budget baseline.
    let request = MappingRequest::new("visformer_tiny_cifar100", "dual_test")
        .validation_samples(1000)
        .generations(12)
        .population_size(12)
        .stall_generations(3)
        .seed(11);
    let service_cold = MappingService::new()
        .submit(&request)
        .expect("cold request");
    let service = MappingService::new();
    service
        .submit(&request.clone().seed(77))
        .expect("archive-filling request");
    let service_warm = service
        .submit(&request.clone().generations(4).warm_start(true))
        .expect("warm request");
    let service_warm_best_no_worse = match (
        &service_warm.best_by_objective,
        &service_cold.best_by_objective,
    ) {
        (Some(warm), Some(cold)) => warm.result.objective <= cold.result.objective,
        _ => false,
    };

    WarmStartReport {
        generations: base.generations,
        population_size: base.population_size,
        cold_evaluations: cold.evaluations(),
        cold_best_objective: cold_best,
        cold_evaluations_to_best: cold_to_best,
        warm_seeds: warm.warm_start_seeds(),
        warm_evaluations: warm.evaluations(),
        warm_best_objective: warm_best,
        warm_evaluations_to_cold_best: warm_to_cold_best,
        service_cold_evaluations: service_cold.stats.evaluations,
        service_warm_evaluations: service_warm.stats.evaluations,
        service_warm_seeds: service_warm.stats.warm_start_seeds,
        service_warm_best_no_worse,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/search_fastpath.json".to_string());

    let network = visformer(ModelPreset::cifar100());
    let platform = Platform::agx_xavier();
    let evaluator = EvaluatorBuilder::new(network, platform.clone())
        .validation_samples(VALIDATION_SAMPLES)
        .build()
        .expect("evaluator preset is valid");

    let iterations = 7;
    println!(
        "search fast path — {MODEL} on {PLATFORM}, {VALIDATION_SAMPLES} samples, default SearchConfig"
    );
    let search_loop = measure_loop(&evaluator, iterations);
    println!(
        "  budget             : {} generations x {} candidates = {} scheduled evaluations",
        search_loop.generations, search_loop.population_size, search_loop.evaluations_scheduled
    );
    println!(
        "  memoization        : {} performed, {} memo hits ({:.1}%)",
        search_loop.evaluations_performed,
        search_loop.memo_hits,
        search_loop.memo_hit_ratio * 100.0
    );
    println!(
        "  reference loop     : {:>8.1} ms run, {:>8.1} ms with front extraction",
        search_loop.reference_run_ms, search_loop.reference_end_to_end_ms
    );
    println!(
        "  fast loop          : {:>8.1} ms run ({:.2}x), {:>8.1} ms end-to-end ({:.2}x)",
        search_loop.fast_run_ms,
        search_loop.run_speedup,
        search_loop.fast_end_to_end_ms,
        search_loop.end_to_end_speedup
    );

    let warm_start = measure_warm_start(&evaluator, &platform);
    println!(
        "  warm start         : cold best {:.4} after {} of {} evaluations",
        warm_start.cold_best_objective,
        warm_start.cold_evaluations_to_best,
        warm_start.cold_evaluations
    );
    println!(
        "                       warm ({} seeds) reaches it after {} evaluations, best {:.4}",
        warm_start.warm_seeds,
        warm_start.warm_evaluations_to_cold_best,
        warm_start.warm_best_objective
    );
    println!(
        "                       service: warm {} evals vs cold {} (front no worse: {})",
        warm_start.service_warm_evaluations,
        warm_start.service_cold_evaluations,
        warm_start.service_warm_best_no_worse
    );

    let report = SearchFastPathReport {
        bench: "search_fastpath".to_string(),
        model: MODEL.to_string(),
        platform: PLATFORM.to_string(),
        validation_samples: VALIDATION_SAMPLES,
        search_loop,
        warm_start,
        smoke,
    };
    mnc_bench::write_json_report(&json_path, &report);

    if smoke {
        assert!(
            report.search_loop.end_to_end_speedup >= 3.0,
            "end-to-end search speedup {:.2}x below the 3x acceptance threshold",
            report.search_loop.end_to_end_speedup
        );
        assert!(
            report.warm_start.warm_evaluations_to_cold_best
                < report.warm_start.cold_evaluations_to_best,
            "warm start did not reach the cold best in fewer evaluations"
        );
        assert!(
            report.warm_start.warm_best_objective <= report.warm_start.cold_best_objective,
            "warm-started front worse than cold"
        );
        assert!(
            report.warm_start.service_warm_evaluations < report.warm_start.service_cold_evaluations
                && report.warm_start.service_warm_best_no_worse,
            "service warm start regressed"
        );
        println!("smoke: bit-identity, >=3x end-to-end speedup and warm-start bounds verified");
    }
}
