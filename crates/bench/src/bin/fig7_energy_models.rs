//! Reproduces Fig. 7: the most energy-oriented Pareto models from each
//! search strategy compared against the Visformer-on-DLA baseline — up to
//! ~1.83x speedup, ~14.4% energy gain, and ~40% less feature-map reuse than
//! the static distributed mapping — plus the reuse/accuracy correlation.
//!
//! ```text
//! MNC_BUDGET=ci cargo run -p mnc-bench --bin fig7_energy_models
//! ```

use mnc_bench::{
    format_factor, format_percent, pick_energy_oriented, print_table, run_search,
    single_cu_baselines, write_json, Budget, Workload,
};
use mnc_core::MappingConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig7Row {
    strategy: String,
    accuracy: f64,
    average_energy_mj: f64,
    average_latency_ms: f64,
    speedup_vs_dla: f64,
    energy_gain_vs_dla: f64,
    fmap_reuse: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = Budget::from_env();
    let mut rows: Vec<Fig7Row> = Vec::new();
    let mut static_reuse_reference: Option<f64> = None;

    for (strategy, limit, seed) in [
        ("no-constraint", None, 301u64),
        ("reuse<=75%", Some(0.75), 302),
        ("reuse<=50%", Some(0.50), 303),
    ] {
        let (evaluator, outcome) = run_search(Workload::Visformer, limit, budget, seed)?;
        let (_gpu, dla) = single_cu_baselines(&evaluator)?;

        if static_reuse_reference.is_none() {
            // The static distributed mapping forwards every feature map.
            let config = MappingConfig::uniform(evaluator.network(), evaluator.platform())?;
            let static_baseline = evaluator.baseline_static_distributed(&config)?;
            static_reuse_reference = static_baseline.fmap_reuse;
        }

        if let Some(best) = pick_energy_oriented(&outcome) {
            rows.push(Fig7Row {
                strategy: strategy.to_string(),
                accuracy: best.result.accuracy,
                average_energy_mj: best.result.average_energy_mj,
                average_latency_ms: best.result.average_latency_ms,
                speedup_vs_dla: dla.latency_ms / best.result.average_latency_ms,
                energy_gain_vs_dla: 1.0 - best.result.average_energy_mj / dla.energy_mj,
                fmap_reuse: best.result.fmap_reuse,
            });
        }
    }

    print_table(
        "Fig. 7 — most energy-oriented models vs the DLA-only baseline (Visformer)",
        &[
            "strategy",
            "top-1",
            "avg energy [mJ]",
            "avg latency [ms]",
            "speedup vs DLA",
            "energy gain vs DLA",
            "fmap reuse",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.strategy.clone(),
                    format_percent(r.accuracy),
                    format!("{:.2}", r.average_energy_mj),
                    format!("{:.2}", r.average_latency_ms),
                    format_factor(r.speedup_vs_dla),
                    format_percent(r.energy_gain_vs_dla),
                    format_percent(r.fmap_reuse),
                ]
            })
            .collect::<Vec<_>>(),
    );

    if let Some(static_reuse) = static_reuse_reference {
        if !rows.is_empty() {
            let mean_dynamic_reuse =
                rows.iter().map(|r| r.fmap_reuse).sum::<f64>() / rows.len() as f64;
            println!(
                "\nMean feature-map reuse of the selected dynamic models vs the static mapping: {} vs {} ({} less)",
                format_percent(mean_dynamic_reuse),
                format_percent(static_reuse),
                format_percent(1.0 - mean_dynamic_reuse / static_reuse.max(1e-9))
            );
        }
    }
    println!("\nPaper reference (Fig. 7): up to 1.83x speedup and up to 14.4% energy gain over the DLA baseline;");
    println!("the selected dynamic models reuse ~40% fewer feature maps than the static mapping, and pushing the");
    println!("reuse constraint to 50% lowers accuracy while further reducing inter-CU traffic.");

    write_json("fig7_energy_models", &rows);
    Ok(())
}
