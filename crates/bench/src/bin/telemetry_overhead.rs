//! Overhead of the always-on telemetry layer.
//!
//! Times the same traffic against two long-lived services — one with the
//! default [`TelemetryConfig`] (histograms, traces, generation events),
//! one with [`TelemetryConfig::minimal`] (counters only, no traces, no
//! search telemetry) — and reports the cost ratio. Two request classes
//! are mixed, because telemetry is a different fraction of each:
//!
//! - **memoised repeats**: the evaluator's memo tables answer most of
//!   the search, so the per-request wrapper (histograms, span trace,
//!   ring push) and per-generation events are proportionally at their
//!   largest;
//! - **fresh searches**: full NSGA-II runs with fresh evaluations.
//!
//! Getting a trustworthy ratio on a shared machine is the hard part:
//! wall-clock comparisons at the few-percent level are dominated by
//! neighbour steal, preemption, frequency epochs and cache cross-talk.
//! The bench therefore asserts on **paired slices**: each iteration runs
//! one multi-request slice on each service back to back, so both sides
//! share the same frequency epoch and neighbour conditions, and the
//! per-pair wall ratio is meaningful where the absolute times are not.
//! The within-pair order alternates every iteration (`AB`, `BA`, …) so
//! whatever the second slice systematically inherits from the first
//! (warmed predictors, evicted cache lines) biases both directions
//! equally, and the asserted figure is the geometric mean of the two
//! order-bucket medians — medians shrug off interference spikes, the
//! geometric mean cancels the order bias. An untimed warm-up runs first,
//! because the process speeds up substantially over its first seconds of
//! serving; accumulated per-side process CPU (`utime + stime` from
//! `/proc/self/stat`) is reported alongside as a steal-free diagnostic.
//!
//! ```text
//! cargo run --release -p mnc-bench --bin telemetry_overhead -- --smoke --json results/telemetry_overhead.json
//! ```
//!
//! `--smoke` is the CI mode: a bit-identity check between the two
//! services' fronts (telemetry must never change what the search
//! returns) and a hard assertion that full telemetry costs at most 2%
//! over the minimal configuration end to end.

use mnc_bench::Budget;
use mnc_runtime::{MappingRequest, MappingService, TelemetryConfig};
use serde::Serialize;
use std::time::{Duration, Instant};

/// Telemetry must stay under this fraction of end-to-end service time.
const OVERHEAD_LIMIT_PCT: f64 = 2.0;

/// The `--json` report tracked under `results/`.
#[derive(Debug, Serialize)]
struct OverheadReport {
    bench: String,
    budget: String,
    smoke: bool,
    slices_per_side: u32,
    hits_per_slice: u32,
    searches_per_slice: u32,
    /// The asserted ratio comes from order-balanced paired-slice wall
    /// medians; the per-side process CPU totals are diagnostics.
    estimator: String,
    enabled_cpu_s: f64,
    disabled_cpu_s: f64,
    enabled_hit_wall_us: f64,
    disabled_hit_wall_us: f64,
    enabled_search_wall_us: f64,
    disabled_search_wall_us: f64,
    overhead_pct: f64,
    limit_pct: f64,
    fronts_bit_identical: bool,
}

fn base_request(budget: Budget) -> MappingRequest {
    // Search depth matches deployment-planning traffic (the paper's runs
    // use tens of generations); sub-millisecond toy searches would only
    // measure timer jitter.
    let (samples, generations, population) = match budget {
        Budget::Ci => (1000, 8, 24),
        Budget::Default => (1000, 10, 24),
        Budget::Paper => (2000, 16, 32),
    };
    MappingRequest::new("tiny_cnn_cifar10", "dual_test")
        .validation_samples(samples)
        .generations(generations)
        .population_size(population)
        .seed(1)
}

/// Cumulative user+system CPU of this process in clock ticks, from
/// `/proc/self/stat` (fields 14 and 15, counting from 1 after the
/// parenthesised command — which may itself contain spaces).
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let after_comm = &stat[stat.rfind(')')? + 1..];
    let mut fields = after_comm.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(utime + stime)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|arg| arg == "--smoke");
    let json_path = args
        .iter()
        .position(|arg| arg == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let budget = if smoke {
        Budget::Ci
    } else {
        Budget::from_env()
    };
    let request = base_request(budget);
    // Short slices keep the two halves of a pair close in time (same
    // frequency epoch, same neighbours); many pairs give the medians a
    // deep sample to reject interference from.
    let (slices_per_side, hits_per_slice, searches_per_slice) = if smoke {
        (240u32, 20u32, 2u32)
    } else {
        (400, 20, 2)
    };

    let enabled = MappingService::with_telemetry_config(TelemetryConfig::default());
    let disabled = MappingService::with_telemetry_config(TelemetryConfig::minimal());

    // Telemetry is observe-only: both configurations must return the
    // exact same front for the same request. This submit also warms each
    // service's evaluator pool and memo tables for the timed loops.
    let enabled_front = enabled.submit(&request).expect("probe request valid");
    let disabled_front = disabled.submit(&request).expect("probe request valid");
    assert_eq!(
        enabled_front.pareto_front, disabled_front.pareto_front,
        "telemetry changed the search result"
    );
    for (a, b) in enabled_front
        .pareto_front
        .iter()
        .zip(&disabled_front.pareto_front)
    {
        assert_eq!(a.result.objective.to_bits(), b.result.objective.to_bits());
        assert_eq!(
            a.result.average_energy_mj.to_bits(),
            b.result.average_energy_mj.to_bits()
        );
    }
    println!("telemetry_overhead: fronts bit-identical with telemetry on and off");

    let services = [&enabled, &disabled];
    let mut side_seed = [1_000_000u64; 2];

    // The process speeds up substantially over its first seconds of
    // serving (allocator, page cache, frequency governor all settling),
    // so anything measured early looks slow. Burn that transient on BOTH
    // services with untimed traffic before a single timed slice runs.
    let warmup = Instant::now();
    while warmup.elapsed() < Duration::from_millis(4000) {
        for side in [0, 1] {
            for _ in 0..20 {
                services[side].submit(&request).expect("warm request valid");
            }
            side_seed[side] += 1;
            services[side]
                .submit(&request.clone().seed(side_seed[side]))
                .expect("warm request valid");
        }
    }
    println!(
        "telemetry_overhead, budget {budget:?}{}: {slices_per_side} paired slices of {hits_per_slice} repeats + {searches_per_slice} fresh searches per side, alternating order",
        if smoke { " (smoke)" } else { "" },
    );

    let mut cpu_ticks = [0u64; 2];
    let mut cpu_available = true;
    let mut hit_min = [Duration::MAX; 2];
    let mut search_min = [Duration::MAX; 2];
    // One ratio bucket per within-pair order (enabled-first, minimal-first).
    let mut ratios: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for pair in 0..slices_per_side {
        let leader = (pair % 2) as usize;
        let mut slice_wall = [Duration::ZERO; 2];
        for side in [leader, 1 - leader] {
            let service = services[side];
            let slice_cpu = process_cpu_ticks();
            let started = Instant::now();
            for _ in 0..hits_per_slice {
                service.submit(&request).expect("repeat request valid");
            }
            let hits_elapsed = started.elapsed();
            hit_min[side] = hit_min[side].min(hits_elapsed / hits_per_slice);

            let started = Instant::now();
            for _ in 0..searches_per_slice {
                side_seed[side] += 1;
                service
                    .submit(&request.clone().seed(side_seed[side]))
                    .expect("fresh request valid");
            }
            let searches_elapsed = started.elapsed();
            search_min[side] = search_min[side].min(searches_elapsed / searches_per_slice);
            slice_wall[side] = hits_elapsed + searches_elapsed;
            match (slice_cpu, process_cpu_ticks()) {
                (Some(before), Some(after)) => cpu_ticks[side] += after - before,
                _ => cpu_available = false,
            }
        }
        ratios[leader].push(slice_wall[0].as_secs_f64() / slice_wall[1].as_secs_f64());
    }

    // Median per order bucket, then the geometric mean of the two: the
    // enabled-first and minimal-first medians carry equal and opposite
    // follow-the-leader bias, which the geometric mean cancels.
    let median = |values: &mut Vec<f64>| -> f64 {
        values.sort_by(f64::total_cmp);
        values[values.len() / 2]
    };
    let enabled_first = median(&mut ratios[0]);
    let minimal_first = median(&mut ratios[1]);
    let overhead_pct = ((enabled_first * minimal_first).sqrt() - 1.0) * 100.0;
    let cpu_s = [cpu_ticks[0] as f64 / 100.0, cpu_ticks[1] as f64 / 100.0];
    println!(
        "repeats:        enabled {:>9.2?}/req vs minimal {:>9.2?}/req (wall min)",
        hit_min[0], hit_min[1]
    );
    println!(
        "fresh searches: enabled {:>9.2?}/req vs minimal {:>9.2?}/req (wall min)",
        search_min[0], search_min[1]
    );
    println!(
        "paired slices: median ratio {enabled_first:.4} enabled-first, {minimal_first:.4} minimal-first"
    );
    if cpu_available {
        println!(
            "process CPU: enabled {:.2} s vs minimal {:.2} s over identical work (diagnostic)",
            cpu_s[0], cpu_s[1]
        );
    }
    println!("telemetry_overhead: {overhead_pct:+.2}% end to end (limit {OVERHEAD_LIMIT_PCT:.1}%)");
    if smoke {
        assert!(
            overhead_pct <= OVERHEAD_LIMIT_PCT,
            "telemetry overhead {overhead_pct:.2}% exceeds the {OVERHEAD_LIMIT_PCT:.1}% budget"
        );
    }

    if let Some(path) = json_path {
        let report = OverheadReport {
            bench: "telemetry_overhead".to_string(),
            budget: format!("{budget:?}").to_lowercase(),
            smoke,
            slices_per_side,
            hits_per_slice,
            searches_per_slice,
            estimator: "paired_slice_wall_median".to_string(),
            enabled_cpu_s: cpu_s[0],
            disabled_cpu_s: cpu_s[1],
            enabled_hit_wall_us: hit_min[0].as_secs_f64() * 1e6,
            disabled_hit_wall_us: hit_min[1].as_secs_f64() * 1e6,
            enabled_search_wall_us: search_min[0].as_secs_f64() * 1e6,
            disabled_search_wall_us: search_min[1].as_secs_f64() * 1e6,
            overhead_pct,
            limit_pct: OVERHEAD_LIMIT_PCT,
            fronts_bit_identical: true,
        };
        mnc_bench::write_json_report(&path, &report);
    }
    println!("telemetry_overhead: done");
}
